#!/usr/bin/env python
"""Tuning merge-and-download: how many IPFS providers per aggregator?

Reproduces the Fig. 1 trade-off interactively: sweeps |P_ij| for a
16-trainer task with 1.3 MB gradient partitions at 10 Mbps and compares
the simulated optimum with the paper's closed form

    |P_ij|* = sqrt(b * |T_ij| / d)  (= sqrt(16) = 4 at equal bandwidths).

Run:  python examples/merge_and_download_tuning.py
"""

import numpy as np

from repro.analysis import (
    aggregation_time_model,
    format_table,
    optimal_providers,
)
from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ml import Dataset, SyntheticModel
from repro.net import mbps, megabytes

NUM_TRAINERS = 16
PARTITION_PARAMS = 162_500  # ~1.3 MB of float64
BANDWIDTH_MBPS = 10.0
PROVIDER_COUNTS = [1, 2, 4, 8, 16]


def delay_shards():
    """Distinct dummy shards (delay experiment: no real learning)."""
    return [Dataset(np.full((1, 1), float(i + 1)), np.zeros(1))
            for i in range(NUM_TRAINERS)]


def run_once(providers: int):
    config = ProtocolConfig(
        num_partitions=1,
        t_train=600.0,
        t_sync=1200.0,
        merge_and_download=True,
        providers_per_aggregator=providers,
        update_mode="gradient",
        poll_interval=0.25,
    )
    session = FLSession(
        config,
        model_factory=lambda: SyntheticModel(PARTITION_PARAMS),
        datasets=delay_shards(),
        network=NetworkProfile(num_ipfs_nodes=max(PROVIDER_COUNTS),
                               bandwidth_mbps=BANDWIDTH_MBPS),
    )
    return session.run_iteration()


def main():
    bandwidth = mbps(BANDWIDTH_MBPS)
    rows = []
    for providers in PROVIDER_COUNTS:
        metrics = run_once(providers)
        analytic = aggregation_time_model(
            NUM_TRAINERS, megabytes(1.3), providers, bandwidth, bandwidth
        )
        rows.append([
            providers,
            metrics.mean_upload_delay,
            metrics.aggregation_delay,
            metrics.end_to_end_delay,
            analytic,
        ])
    print(format_table(
        ["providers", "upload (s)", "aggregation (s)",
         "end-to-end (s)", "analytic tau (s)"],
        rows,
        title="merge-and-download provider sweep "
              f"({NUM_TRAINERS} trainers, 1.3MB, {BANDWIDTH_MBPS} Mbps)",
    ))
    best = min(rows, key=lambda row: row[3])[0]
    p_star = optimal_providers(NUM_TRAINERS, node_bandwidth=bandwidth,
                               aggregator_bandwidth=bandwidth)
    print()
    print(f"simulated optimum : {best} providers")
    print(f"analytic optimum  : sqrt(b*T/d) = {p_star:.1f} providers")


if __name__ == "__main__":
    main()
