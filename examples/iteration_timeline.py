#!/usr/bin/env python
"""Anatomy of one training iteration: a flow-level timeline.

Attaches a transfer trace to the emulated network, runs a single
verifiable merge-and-download round, and prints the phases of Algorithm 1
as they appear on the wire — upload wave, merge-and-download wave, update
distribution — plus the traffic matrix by host role.

A span collector rides along on the same bus and reconstructs the causal
span tree of the round, from which the example prints the per-node phase
windows, the critical path through the aggregation delay, and the
straggler ranking.  (``python -m repro.cli timeline`` exports the same
tree as a Perfetto trace.)

Run:  python examples/iteration_timeline.py
"""

from collections import defaultdict

from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.net import TransferTrace
from repro.obs import CriticalPathAnalyzer, SpanCollector


def role(host: str) -> str:
    return host.split("-")[0] if "-" in host else host


def main():
    data = make_classification(num_samples=640, num_features=64,
                               class_separation=2.5, seed=13)
    shards = split_iid(data, 8, seed=13)
    config = ProtocolConfig(
        num_partitions=2,
        t_train=300.0,
        t_sync=600.0,
        merge_and_download=True,
        providers_per_aggregator=2,
        verifiable=True,
    )
    session = FLSession(
        config,
        model_factory=lambda: LogisticRegression(num_features=64, seed=0),
        datasets=shards,
        network=NetworkProfile(num_ipfs_nodes=4, bandwidth_mbps=10.0),
    )
    trace = TransferTrace(session.testbed.network)
    spans = SpanCollector(session.sim.bus)
    metrics = session.run_iteration()

    print(f"one iteration, {len(trace)} transfers, "
          f"{trace.total_bytes() / 1e3:.1f} kB on the wire")
    print()

    print("phase markers (simulated seconds):")
    print(f"  first gradient registered : {metrics.first_gradient_at:.4f}")
    for name, at in sorted(metrics.gradients_aggregated_at.items()):
        print(f"  {name} aggregated         : {at:.4f}")
    for name, at in sorted(metrics.update_registered_at.items()):
        print(f"  update registered ({name}): {at:.4f}")
    print(f"  iteration finished        : {metrics.finished_at:.4f}")
    print()

    print("traffic matrix by role (kB):")
    matrix = defaultdict(float)
    for record in trace.records:
        matrix[(role(record.src), role(record.dst))] += record.size
    width = max(len(f"{src} -> {dst}") for src, dst in matrix)
    for (src, dst), size in sorted(matrix.items(),
                                   key=lambda kv: -kv[1]):
        print(f"  {f'{src} -> {dst}':<{width}}  {size / 1e3:10.2f}")
    print()

    busiest = trace.busiest_host()
    by_host = trace.bytes_by_host()[busiest]
    print(f"busiest host: {busiest} "
          f"(in {by_host['in'] / 1e3:.1f} kB, "
          f"out {by_host['out'] / 1e3:.1f} kB)")
    merges = sum(node.merges_served for node in session.nodes)
    print(f"merge-and-download requests served by storage nodes: {merges}")
    print(f"commitment work at trainers: "
          f"{sum(metrics.commit_seconds.values()):.3f}s wall-clock")
    print()

    tree = spans.latest()
    print(f"span tree: {len(tree)} spans across {len(tree.nodes())} nodes")
    for node, node_spans in sorted(tree.by_node().items()):
        phases = [span for span in node_spans if not span.is_instant]
        if not phases:
            continue
        windows = ", ".join(
            f"{span.name} [{span.start:.3f}, {span.end:.3f}]"
            for span in sorted(phases, key=lambda span: span.start)
        )
        print(f"  {node:<14} {windows}")
    print()

    analyzer = CriticalPathAnalyzer(spans)
    path = analyzer.analyze(tree.iteration)
    print(path.format())
    print()
    print(analyzer.straggler_report(tree.iteration, threshold=0.05)
          .format())


if __name__ == "__main__":
    main()
