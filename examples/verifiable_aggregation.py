#!/usr/bin/env python
"""Verifiable aggregation vs malicious aggregators (paper Sec. IV).

Three scenarios on the same task:

1. an honest run with Pedersen commitments — everything verifies,
2. a *model-poisoning* aggregator without verification — the attack
   silently lands in everyone's model,
3. the same attacker under verifiable aggregation — the directory
   rejects the forged update because it does not open the accumulated
   commitment, and the poisoned model is never served.

Run:  python examples/verifiable_aggregation.py
"""

import numpy as np

from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.core import AlterUpdateBehavior
from repro.ml import LogisticRegression, make_classification, split_iid

NUM_TRAINERS = 8
NUM_FEATURES = 12


def build_session(verifiable: bool, malicious: bool):
    data = make_classification(num_samples=400, num_features=NUM_FEATURES,
                               class_separation=3.0, seed=3)
    shards = split_iid(data, NUM_TRAINERS, seed=3)
    config = ProtocolConfig(
        num_partitions=2,
        t_train=120.0,
        t_sync=240.0,
        verifiable=verifiable,
        curve="secp256k1",
        fractional_bits=16,
    )
    behaviors = {}
    if malicious:
        behaviors["aggregator-0"] = AlterUpdateBehavior(offset=5.0)
    return FLSession(
        config,
        model_factory=lambda: LogisticRegression(
            num_features=NUM_FEATURES, num_classes=2, seed=0),
        datasets=shards,
        network=NetworkProfile(num_ipfs_nodes=4, bandwidth_mbps=10.0),
        behaviors=behaviors,
    )


def main():
    print("=== 1. honest run, verifiable aggregation on ===")
    honest = build_session(verifiable=True, malicious=False)
    metrics = honest.run_iteration()
    honest_params = honest.consensus_params()
    print(f"trainers completed: {len(metrics.trainers_completed)}"
          f"/{NUM_TRAINERS}")
    print(f"verification failures: {metrics.verification_failures}")
    print(f"commit wall-clock: "
          f"{sum(metrics.commit_seconds.values()):.3f}s across trainers")

    print()
    print("=== 2. poisoning aggregator, NO verification ===")
    attacked = build_session(verifiable=False, malicious=True)
    metrics = attacked.run_iteration()
    poisoned_params = attacked.consensus_params()
    drift = float(np.max(np.abs(poisoned_params - honest_params)))
    print(f"trainers completed: {len(metrics.trainers_completed)}"
          f"/{NUM_TRAINERS}  (the attack went unnoticed)")
    print(f"max parameter drift vs honest model: {drift:.3f} "
          f"(the poison landed)")

    print()
    print("=== 3. same attacker, verifiable aggregation ON ===")
    defended = build_session(verifiable=True, malicious=True)
    metrics = defended.run_iteration()
    print(f"trainers completed: {len(metrics.trainers_completed)}"
          f"/{NUM_TRAINERS}  (poisoned update never served)")
    print("directory rejections:")
    for rejection in defended.directory.rejections:
        print(f"  - {rejection.address}: {rejection.reason}")


if __name__ == "__main__":
    main()
