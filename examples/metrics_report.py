#!/usr/bin/env python
"""The metrics layer end to end: sketches, sampling, manifest diffs.

Runs a short merge-and-download session with a ``MetricsRegistry`` and
a ``ResourceSampler`` attached, prints the interesting part of the
OpenMetrics exposition, then reruns the same scenario with one extra
provider per aggregator and diffs the two run manifests — the same
machinery ``python -m repro.cli metrics`` / ``compare`` exposes, and
the extra provider shows up as an *improvement* in the transfer and
upload distributions (the Fig. 1 effect).

Histograms are backed by a mergeable quantile sketch (exact below a
configurable threshold, bounded relative error above it — see
``docs/OBSERVABILITY.md``, "Observability at scale"); the registry is
built with a deliberately tiny threshold here so the sketch crossover,
the cross-cohort merge, and the deterministic memory accounting are
all visible in one short run.

Run:  python examples/metrics_report.py
"""

import numpy as np

from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ml import Dataset, SyntheticModel
from repro.obs import (
    Histogram,
    MetricsRegistry,
    ResourceSampler,
    RunManifest,
    compare_manifests,
    render_openmetrics,
)

NUM_TRAINERS = 8
PARTITION_PARAMS = 40_000  # ~320 kB of float64 per partition


def run_session(providers_per_aggregator: int) -> RunManifest:
    """One observed round; returns its manifest."""
    config = ProtocolConfig(
        num_partitions=1,
        t_train=3600.0,
        t_sync=7200.0,
        update_mode="gradient",
        poll_interval=0.25,
        merge_and_download=True,
        providers_per_aggregator=providers_per_aggregator,
    )
    shards = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(NUM_TRAINERS)
    ]
    session = FLSession(
        config,
        model_factory=lambda: SyntheticModel(PARTITION_PARAMS),
        datasets=shards,
        network=NetworkProfile(num_ipfs_nodes=8, bandwidth_mbps=10.0),
    )
    # A 16-observation exactness threshold forces the busy histograms
    # into sketch mode within one round; production registries keep the
    # default (4096), where figure-scale runs never spill at all.
    registry = MetricsRegistry(session.sim.bus, histogram_max_exact=16)
    sampler = ResourceSampler.for_session(session, registry, interval=0.25)
    session.run(rounds=1)
    sampler.stop()
    registry.close()

    if providers_per_aggregator == 1:  # print the baseline's exposition
        print(f"baseline run ({providers_per_aggregator} provider, "
              f"{NUM_TRAINERS} trainers, {sampler.samples_taken} resource "
              f"samples) — OpenMetrics excerpt:")
        for line in render_openmetrics(registry).splitlines():
            if line.startswith(("net_transfer_duration",
                                "# TYPE net_transfer_duration",
                                "net_flows_active",
                                "ipfs_blockstore_bytes")):
                print(f"  {line}")
        print()
        duration = registry.histogram("net.transfer.duration")
        mode = "exact" if duration.exact else \
            f"sketch (±{duration.sketch.relative_error:.0%}, " \
            f"{duration.sketch.bucket_count} buckets)"
        print(f"transfer durations [{mode}]: n={duration.count} "
              f"mean={duration.mean:.3f}s p95={duration.percentile(95):.3f}s "
              f"max={duration.maximum:.3f}s")
        print(f"telemetry cost: {registry.events_observed} events folded, "
              f"{registry.sketch_histograms()} sketch histogram(s), "
              f"peak {registry.peak_telemetry_bytes / 1024:.1f} KiB "
              f"(deterministic memory model)")
        print()

    return RunManifest.collect(registry, session.fingerprint())


def merge_demo():
    """Cross-cohort aggregation without raw-value exchange: shard
    histograms merge order-independently via their sketches."""
    shards = []
    rng = np.random.default_rng(7)
    for shard_index in range(3):
        histogram = Histogram("net.transfer.duration", unit="seconds",
                              lo=1e-3, hi=10.0, growth=4.0, max_exact=8)
        for value in rng.lognormal(mean=-1.0, sigma=1.0, size=64):
            histogram.observe(float(value))
        shards.append(histogram)
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    print(f"merged 3 cohort shards: n={merged.count} "
          f"p50={merged.percentile(50):.3f}s "
          f"p99={merged.percentile(99):.3f}s "
          f"({merged.sketch.bucket_count} buckets, "
          f"{merged.footprint_bytes()} modelled bytes)")
    print()


def main():
    baseline = run_session(providers_per_aggregator=1)
    merge_demo()
    wider = run_session(providers_per_aggregator=2)

    print("rerun with one extra provider per aggregator, manifest diff")
    print("(higher is worse; negative changes are improvements):")
    print()
    diff = compare_manifests(baseline, wider, threshold=0.10)
    print(diff.format())
    print()
    improved = {entry.metric for entry in diff.improvements}
    if "protocol.upload.delay.mean" in improved or \
            "net.transfer.duration.p95" in improved:
        print("the extra provider spreads the upload wave: "
              "the distribution tails shrink, exactly Fig. 1's claim")
    if not diff.fingerprint_matches:
        print("(the fingerprints differ, as they must: the scenario "
              "changed, so compare warns before diffing)")


if __name__ == "__main__":
    main()
