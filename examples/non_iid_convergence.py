#!/usr/bin/env python
"""Non-IID convergence: decentralized protocol vs centralized FedAvg.

The paper argues convergence "will be exactly the same as that of
traditional FL" because partitioned sum-and-average commutes with
whole-vector averaging.  This example makes the claim concrete on a
*heterogeneous* workload — every trainer's shard is drawn from a
Dirichlet(0.3) class mixture, the standard hard case for decentralized
schemes — and tracks both systems round by round.

Run:  python examples/non_iid_convergence.py
"""

import numpy as np

from repro.baselines import CentralizedSession
from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ml import (
    MLPClassifier,
    TrainConfig,
    accuracy,
    make_classification,
    split_dirichlet,
    train_test_split,
)

NUM_TRAINERS = 8
NUM_FEATURES = 12
ROUNDS = 5


def build_config():
    config = ProtocolConfig(
        num_partitions=4,
        t_train=300.0,
        t_sync=600.0,
        merge_and_download=True,
    )
    config.train = TrainConfig(epochs=2, learning_rate=0.3, batch_size=32)
    return config


def main():
    data = make_classification(num_samples=1_600, num_features=NUM_FEATURES,
                               num_classes=4, class_separation=2.5, seed=11)
    train, test = train_test_split(data, seed=11)
    shards = split_dirichlet(train, NUM_TRAINERS, alpha=0.3, seed=11)
    print("per-trainer class histograms (non-IID, Dirichlet alpha=0.3):")
    for index, shard in enumerate(shards):
        _, counts = np.unique(shard.y, return_counts=True)
        print(f"  trainer-{index}: {counts.tolist()}")

    def factory():
        return MLPClassifier(num_features=NUM_FEATURES, hidden=24,
                             num_classes=4, seed=0)

    ours = FLSession(build_config(), factory, shards,
                     network=NetworkProfile(num_ipfs_nodes=8,
                                            bandwidth_mbps=20.0))
    central = CentralizedSession(build_config(), factory, shards,
                                 bandwidth_mbps=20.0)

    print()
    print("round  ours-acc  central-acc  max |params diff|")
    for round_index in range(ROUNDS):
        ours.run_iteration()
        central.run_iteration()
        ours_acc = accuracy(ours.model_of(0), test)
        central_acc = accuracy(
            central.models[central.trainer_names[0]], test
        )
        drift = float(np.max(np.abs(
            ours.consensus_params() - central.consensus_params()
        )))
        print(f"{round_index:>5}  {ours_acc:>8.3f}  {central_acc:>11.3f}"
              f"  {drift:.2e}")

    print()
    print("identical trajectories: the decentralized protocol IS FedAvg,")
    print("with no central server to trust.")


if __name__ == "__main__":
    main()
