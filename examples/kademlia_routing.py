#!/usr/bin/env python
"""Content routing under the hood: table DHT vs Kademlia.

The paper treats IPFS content routing as a black box; this example opens
it.  We run the same training round over (a) the abstract provider-table
DHT and (b) Kademlia routing — XOR metric, k-buckets, iterative lookups
whose per-hop RPCs ride the emulated network — and show the routing
traffic and the O(log n) lookup paths.

Run:  python examples/kademlia_routing.py
"""

import numpy as np

from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ipfs import KademliaDHT, compute_cid, node_key, xor_distance
from repro.ipfs.kademlia import content_key
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.sim import Simulator


def routing_demo():
    print("=== iterative lookup paths on a 64-node overlay ===")
    sim = Simulator()
    dht = KademliaDHT(sim, k=8)
    for index in range(64):
        dht.join(f"ipfs-{index}")
    for content in ("model-partition-0", "gradient-42", "update-7"):
        target = content_key(compute_cid(content.encode()))
        path = dht.lookup_path("ipfs-0", target)
        distances = [
            xor_distance(node_key(hop), target).bit_length()
            for hop in path
        ]
        print(f"  {content:>18}: {' -> '.join(path)}")
        print(f"  {'':>18}  distance bit-length per hop: {distances}")
    print("  (expected: a handful of hops for 64 nodes — log2(64) = 6)")


def protocol_demo():
    print()
    print("=== same training round, both routing modes ===")
    data = make_classification(num_samples=320, num_features=10,
                               class_separation=3.0, seed=2)
    shards = split_iid(data, 8, seed=2)
    config = ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0)

    for mode in ("table", "kademlia"):
        session = FLSession(
            config,
            model_factory=lambda: LogisticRegression(num_features=10,
                                                     seed=0),
            datasets=shards,
            network=NetworkProfile(num_ipfs_nodes=16, dht_mode=mode),
        )
        metrics = session.run_iteration()
        rpcs = getattr(session.dht, "rpcs", 0)
        print(f"  {mode:>9}: {len(metrics.trainers_completed)}/8 trainers, "
              f"end-to-end {metrics.end_to_end_delay:.3f}s, "
              f"{session.dht.lookups} lookups, {rpcs} routing RPCs")
    print()
    print("Kademlia pays per-hop RPC traffic for every provider lookup —")
    print("the cost the abstract table hides, now on the wire.")


def main():
    routing_demo()
    protocol_demo()


if __name__ == "__main__":
    main()
