#!/usr/bin/env python
"""Quickstart: decentralized federated learning over simulated IPFS.

Builds the paper's deployment in a few lines — trainers, aggregators, a
storage network and the directory service — runs three training rounds,
and prints the telemetry the paper's evaluation reports.

Run:  python examples/quickstart.py
"""

from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ml import (
    LogisticRegression,
    TrainConfig,
    accuracy,
    make_classification,
    split_iid,
    train_test_split,
)


def main():
    # A synthetic classification task, split IID over 8 trainers.
    data = make_classification(num_samples=1_000, num_features=16,
                               num_classes=2, class_separation=2.0, seed=7)
    train, test = train_test_split(data, test_fraction=0.2, seed=7)
    shards = split_iid(train, num_clients=8, seed=7)

    # Protocol parameters: 4 model partitions, one aggregator each,
    # generous deadlines, merge-and-download on.
    config = ProtocolConfig(
        num_partitions=4,
        aggregators_per_partition=1,
        t_train=300.0,
        t_sync=600.0,
        merge_and_download=True,
        providers_per_aggregator=0,  # auto: sqrt(|T_ij|)
    )
    config.train = TrainConfig(epochs=2, learning_rate=0.5, batch_size=32)

    session = FLSession(
        config,
        model_factory=lambda: LogisticRegression(num_features=16,
                                                 num_classes=2, seed=0),
        datasets=shards,
        network=NetworkProfile(num_ipfs_nodes=8, bandwidth_mbps=10.0),
    )

    print(f"deployment: {len(shards)} trainers, "
          f"{config.num_partitions} partitions, 8 IPFS nodes @ 10 Mbps")
    print(f"initial accuracy: {accuracy(session.model_of(0), test):.3f}")
    print()
    print("round  sim-time(s)  agg-delay(s)  upload(s)  accuracy")
    for round_index in range(3):
        metrics = session.run_iteration()
        test_accuracy = accuracy(session.model_of(0), test)
        print(f"{round_index:>5}  {metrics.duration:>11.2f}  "
              f"{metrics.aggregation_delay:>12.3f}  "
              f"{metrics.mean_upload_delay:>9.3f}  {test_accuracy:.3f}")

    # Every trainer holds the identical global model.
    session.consensus_params()
    print()
    print("all trainers agree on the global model ✓")
    print(f"final accuracy: {accuracy(session.model_of(0), test):.3f}")


if __name__ == "__main__":
    main()
