#!/usr/bin/env python
"""A realistic cross-device deployment, everything turned on.

The paper's motivating scenario: a small enterprise launches an FL task
over its customers' devices — no direct links, heterogeneous bandwidth,
devices coming and going.  This example combines the full feature set:

- 16 trainers with heterogeneous bandwidths and arrival jitter,
- non-IID local data (Dirichlet alpha = 0.5),
- 2 aggregators per partition with one dropping out mid-task,
- merge-and-download, batched registration, Kademlia routing,
- verifiable aggregation with one *malicious* aggregator,
- storage replication and per-round garbage collection.

Run:  python examples/cross_device_deployment.py
"""

import numpy as np

from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.core import AlterUpdateBehavior
from repro.ml import (
    LogisticRegression,
    TrainConfig,
    accuracy,
    make_classification,
    split_dirichlet,
    train_test_split,
)

NUM_TRAINERS = 16
NUM_FEATURES = 20
ROUNDS = 3


def main():
    data = make_classification(num_samples=2400, num_features=NUM_FEATURES,
                               num_classes=4, class_separation=2.5, seed=21)
    train, test = train_test_split(data, seed=21)
    shards = split_dirichlet(train, NUM_TRAINERS, alpha=0.5, seed=21)

    rng = np.random.default_rng(21)
    bandwidths = rng.choice([5.0, 10.0, 20.0], size=NUM_TRAINERS).tolist()

    config = ProtocolConfig(
        num_partitions=2,
        aggregators_per_partition=2,
        t_train=120.0,
        t_sync=400.0,
        takeover_grace=20.0,
        merge_and_download=True,
        providers_per_aggregator=0,    # sqrt optimum
        verifiable=True,
        batch_registration=True,
        trainer_jitter=10.0,
    )
    config.train = TrainConfig(epochs=2, learning_rate=0.4, batch_size=32)

    session = FLSession(
        config,
        model_factory=lambda: LogisticRegression(
            num_features=NUM_FEATURES, num_classes=4, seed=0),
        datasets=shards,
        network=NetworkProfile(
            num_ipfs_nodes=8,
            bandwidth_mbps=10.0,
            trainer_bandwidths_mbps=bandwidths,
            dht_mode="kademlia",
            replication_factor=2,
        ),
        behaviors={"aggregator-1": AlterUpdateBehavior(offset=2.0)},
    )

    # One honest aggregator drops out before round 1.
    dead = session.aggregators.pop(2)
    print(f"deployment: {NUM_TRAINERS} heterogeneous trainers "
          f"(5-20 Mbps), Dirichlet(0.5) data, Kademlia routing")
    print(f"adversary : aggregator-1 poisons its uploads")
    print(f"dropout   : {dead.name} never shows up")
    print()
    print("round  done/16  takeovers  rejected  acc     storage kB")
    for round_index in range(ROUNDS):
        metrics = session.run_iteration()
        reclaimed = session.collect_garbage(keep_iterations=1)
        test_accuracy = accuracy(session.model_of(0), test)
        rejected = len([f for f in metrics.verification_failures])
        print(f"{round_index:>5}  {len(metrics.trainers_completed):>7}"
              f"  {len(metrics.takeovers):>9}  {rejected:>8}"
              f"  {test_accuracy:.3f}  {session.storage_bytes / 1e3:>9.1f}")

    session.consensus_params()
    print()
    print("despite jitter, heterogeneity, a poisoner and a dropout:")
    print("  - every completed round installed a verified update,")
    print("  - all online trainers share one model,")
    print(f"  - Kademlia routing RPCs: {session.dht.rpcs}, "
          f"replications: {session.cluster.replications}")


if __name__ == "__main__":
    main()
