#!/usr/bin/env python
"""Aggregator dropout and peer takeover (robustness of |A_i| > 1).

The paper assigns multiple aggregators per partition for "efficiency and
robustness": "whenever an aggregator from A_i does not respond, another
aggregator downloads his gradients on his behalf".  This example runs a
round with two aggregators per partition, silences one of them entirely,
and shows the surviving peer covering its trainer set after the grace
period — no trainer data is lost and every trainer finishes with the
complete 8-trainer average.

Run:  python examples/aggregator_dropout.py
"""

import numpy as np

from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ml import (
    LogisticRegression,
    local_update,
    make_classification,
    split_iid,
)

NUM_TRAINERS = 8
NUM_FEATURES = 10


def main():
    data = make_classification(num_samples=400, num_features=NUM_FEATURES,
                               class_separation=3.0, seed=5)
    shards = split_iid(data, NUM_TRAINERS, seed=5)
    config = ProtocolConfig(
        num_partitions=2,
        aggregators_per_partition=2,
        t_train=60.0,
        t_sync=300.0,
        takeover_grace=15.0,
    )

    def factory():
        return LogisticRegression(num_features=NUM_FEATURES,
                                  num_classes=2, seed=0)

    session = FLSession(config, factory, shards,
                        network=NetworkProfile(num_ipfs_nodes=4,
                                               bandwidth_mbps=10.0))

    dead = session.aggregators.pop(0)  # this aggregator never shows up
    partition = session.assignment.partition_of[dead.name]
    orphans = session.assignment.trainers_of[(partition, dead.name)]
    print(f"silenced {dead.name} (partition {partition}); its trainers: "
          f"{orphans}")

    metrics = session.run_iteration()
    print()
    print(f"takeovers performed: {metrics.takeovers}")
    print(f"trainers completed:  {len(metrics.trainers_completed)}"
          f"/{NUM_TRAINERS}")
    print(f"iteration duration:  {metrics.duration:.1f}s "
          f"(includes the {config.takeover_grace:.0f}s grace period)")

    # Verify no trainer's contribution was dropped: the installed model
    # equals the average over ALL 8 locally trained models.
    template = factory()
    locals_ = []
    for index in range(NUM_TRAINERS):
        delta = local_update(template, shards[index], config.train,
                             seed=config.seed + index)
        locals_.append(template.get_params() + delta)
    expected = np.mean(locals_, axis=0)
    drift = float(np.max(np.abs(session.consensus_params() - expected)))
    print(f"max diff vs full 8-trainer average: {drift:.2e} "
          f"(no contribution lost)")


if __name__ == "__main__":
    main()
