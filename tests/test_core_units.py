"""Unit tests for the core protocol's small building blocks:
addressing, partitioning, schedules, config, assignment, adversaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Address,
    AlterUpdateBehavior,
    DropGradientsBehavior,
    GRADIENT,
    HonestBehavior,
    IterationSchedule,
    LazyBehavior,
    ModelPartitioner,
    PARTIAL_UPDATE,
    ProtocolConfig,
    UPDATE,
    build_assignment,
    decode_partition,
    encode_partition,
    optimal_provider_count,
    sum_encoded_partitions,
)


# -- addressing --------------------------------------------------------------------


def test_address_fields():
    addr = Address("trainer-3", 2, 7, GRADIENT)
    assert addr.uploader_id == "trainer-3"
    assert "gradient/p2/i7/trainer-3" == str(addr)


def test_address_validation():
    with pytest.raises(ValueError):
        Address("t", 0, 0, "bogus-kind")
    with pytest.raises(ValueError):
        Address("t", -1, 0, GRADIENT)
    with pytest.raises(ValueError):
        Address("t", 0, -1, UPDATE)


def test_address_hashable_and_frozen():
    a = Address("t", 0, 0, GRADIENT)
    b = Address("t", 0, 0, GRADIENT)
    assert a == b and hash(a) == hash(b)
    assert a != Address("t", 0, 0, PARTIAL_UPDATE)


# -- partitioning ---------------------------------------------------------------------


def test_partitioner_even_split():
    partitioner = ModelPartitioner(num_params=12, num_partitions=4)
    assert [partitioner.partition_size(i) for i in range(4)] == [3, 3, 3, 3]


def test_partitioner_uneven_split():
    partitioner = ModelPartitioner(num_params=10, num_partitions=3)
    assert [partitioner.partition_size(i) for i in range(3)] == [4, 3, 3]
    assert partitioner.bounds(0) == (0, 4)
    assert partitioner.bounds(2) == (7, 10)


def test_partitioner_split_join_roundtrip():
    partitioner = ModelPartitioner(num_params=11, num_partitions=3)
    vector = np.arange(11, dtype=np.float64)
    parts = partitioner.split(vector)
    np.testing.assert_array_equal(partitioner.join(parts), vector)


def test_partitioner_validation():
    with pytest.raises(ValueError):
        ModelPartitioner(0, 1)
    with pytest.raises(ValueError):
        ModelPartitioner(5, 6)
    partitioner = ModelPartitioner(10, 2)
    with pytest.raises(ValueError):
        partitioner.split(np.zeros(9))
    with pytest.raises(ValueError):
        partitioner.join([np.zeros(5)])
    with pytest.raises(ValueError):
        partitioner.join([np.zeros(4), np.zeros(6)])


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=20))
def test_partitioner_property(num_params, num_partitions):
    num_partitions = min(num_partitions, num_params)
    partitioner = ModelPartitioner(num_params, num_partitions)
    sizes = [partitioner.partition_size(i) for i in range(num_partitions)]
    assert sum(sizes) == num_params
    assert max(sizes) - min(sizes) <= 1
    vector = np.random.default_rng(0).normal(size=num_params)
    np.testing.assert_array_equal(
        partitioner.join(partitioner.split(vector)), vector
    )


def test_encode_decode_partition():
    values = np.array([1.5, -2.5, 3.0])
    blob = encode_partition(values, counter=1.0)
    assert len(blob) == 4 * 8
    decoded, counter = decode_partition(blob)
    np.testing.assert_array_equal(decoded, values)
    assert counter == 1.0


def test_decode_partition_validation():
    with pytest.raises(ValueError):
        decode_partition(b"short")
    with pytest.raises(ValueError):
        decode_partition(bytes(8))  # only one float64: no counter


def test_sum_encoded_partitions_sums_values_and_counters():
    a = encode_partition(np.array([1.0, 2.0]), counter=1.0)
    b = encode_partition(np.array([10.0, 20.0]), counter=1.0)
    values, counter = decode_partition(sum_encoded_partitions([a, b]))
    np.testing.assert_array_equal(values, [11.0, 22.0])
    assert counter == 2.0


def test_sum_encoded_partitions_validation():
    with pytest.raises(ValueError):
        sum_encoded_partitions([])
    a = encode_partition(np.zeros(2))
    b = encode_partition(np.zeros(3))
    with pytest.raises(ValueError):
        sum_encoded_partitions([a, b])


# -- schedules -----------------------------------------------------------------------


def test_schedule_from_durations():
    schedule = IterationSchedule.from_durations(
        iteration=3, start=100.0, train_duration=60.0, sync_duration=300.0
    )
    assert schedule.t_train == 160.0
    assert schedule.t_sync == 400.0
    assert schedule.remaining_train(130.0) == 30.0
    assert schedule.remaining_train(200.0) == 0.0
    assert schedule.remaining_sync(150.0) == 250.0


def test_schedule_validation():
    with pytest.raises(ValueError):
        IterationSchedule(iteration=0, start=10.0, t_train=5.0, t_sync=20.0)
    with pytest.raises(ValueError):
        IterationSchedule(iteration=0, start=0.0, t_train=10.0, t_sync=10.0)


# -- config ---------------------------------------------------------------------------


def test_config_defaults_valid():
    config = ProtocolConfig()
    assert config.num_partitions == 4
    assert not config.verifiable


@pytest.mark.parametrize("kwargs", [
    {"num_partitions": 0},
    {"aggregators_per_partition": 0},
    {"t_train": 0.0},
    {"t_train": 100.0, "t_sync": 100.0},
    {"poll_interval": 0.0},
    {"providers_per_aggregator": -1},
    {"update_mode": "weights"},
    {"curve": "curve25519"},
])
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        ProtocolConfig(**kwargs)


# -- optimal providers (Sec. III-E closed form) ----------------------------------------


def test_optimal_provider_count_sqrt():
    assert optimal_provider_count(16) == 4
    assert optimal_provider_count(1) == 1
    assert optimal_provider_count(100) == 10


def test_optimal_provider_count_bandwidth_ratio():
    # b/d = 4 -> sqrt(4*16) = 8.
    assert optimal_provider_count(16, aggregator_bandwidth=4.0,
                                  node_bandwidth=1.0) == 8


def test_optimal_provider_count_validation():
    with pytest.raises(ValueError):
        optimal_provider_count(0)
    with pytest.raises(ValueError):
        optimal_provider_count(4, aggregator_bandwidth=0.0)


# -- assignment -------------------------------------------------------------------------


def make_names(trainers=8, aggregators=4, nodes=4):
    return (
        [f"trainer-{i}" for i in range(trainers)],
        [f"aggregator-{i}" for i in range(aggregators)],
        [f"ipfs-{i}" for i in range(nodes)],
    )


def test_assignment_partitions_aggregators():
    trainers, aggregators, nodes = make_names(aggregators=4)
    config = ProtocolConfig(num_partitions=2, aggregators_per_partition=2)
    assignment = build_assignment(config, trainers, aggregators, nodes)
    assert assignment.num_partitions == 2
    for partition in range(2):
        assert len(assignment.aggregators_for[partition]) == 2
    for name in aggregators:
        assert assignment.partition_of[name] in (0, 1)


def test_assignment_trainer_sets_partition_all_trainers():
    """For every partition: T = union of T_ij, and the T_ij are disjoint."""
    trainers, aggregators, nodes = make_names(trainers=10, aggregators=4)
    config = ProtocolConfig(num_partitions=2, aggregators_per_partition=2)
    assignment = build_assignment(config, trainers, aggregators, nodes)
    for partition in range(2):
        union = []
        for owner in assignment.aggregators_for[partition]:
            union.extend(assignment.trainers_of[(partition, owner)])
        assert sorted(union) == sorted(trainers)  # union = T, no overlap


def test_assignment_aggregator_of_consistent():
    trainers, aggregators, nodes = make_names()
    config = ProtocolConfig(num_partitions=4, aggregators_per_partition=1)
    assignment = build_assignment(config, trainers, aggregators, nodes)
    for trainer in trainers:
        for partition in range(4):
            owner = assignment.aggregator_of[(trainer, partition)]
            assert trainer in assignment.trainers_of[(partition, owner)]


def test_assignment_provider_counts():
    trainers, aggregators, nodes = make_names(trainers=16, aggregators=1,
                                              nodes=8)
    config = ProtocolConfig(num_partitions=1, aggregators_per_partition=1,
                            providers_per_aggregator=0,
                            merge_and_download=True)
    assignment = build_assignment(config, trainers, aggregators, nodes)
    # auto: sqrt(16) = 4 providers
    assert len(assignment.providers_of["aggregator-0"]) == 4


def test_assignment_explicit_provider_count_capped():
    trainers, aggregators, nodes = make_names(nodes=3)
    config = ProtocolConfig(num_partitions=4, providers_per_aggregator=8)
    assignment = build_assignment(config, trainers, aggregators, nodes)
    for name in aggregators:
        assert len(assignment.providers_of[name]) == 3


def test_assignment_upload_nodes_in_providers_when_merging():
    trainers, aggregators, nodes = make_names(trainers=16, aggregators=1,
                                              nodes=8)
    config = ProtocolConfig(num_partitions=1, merge_and_download=True,
                            providers_per_aggregator=4)
    assignment = build_assignment(config, trainers, aggregators, nodes)
    providers = set(assignment.providers_of["aggregator-0"])
    for trainer in trainers:
        assert assignment.upload_node[(trainer, 0)] in providers


def test_assignment_wrong_aggregator_count():
    trainers, aggregators, nodes = make_names(aggregators=3)
    config = ProtocolConfig(num_partitions=2, aggregators_per_partition=2)
    with pytest.raises(ValueError, match="exactly 4 aggregators"):
        build_assignment(config, trainers, aggregators, nodes)


def test_assignment_needs_participants():
    config = ProtocolConfig(num_partitions=1, aggregators_per_partition=1)
    with pytest.raises(ValueError):
        build_assignment(config, [], ["aggregator-0"], ["ipfs-0"])
    with pytest.raises(ValueError):
        build_assignment(config, ["t"], ["aggregator-0"], [])


def test_assignment_peers_of():
    trainers, aggregators, nodes = make_names(aggregators=4)
    config = ProtocolConfig(num_partitions=2, aggregators_per_partition=2)
    assignment = build_assignment(config, trainers, aggregators, nodes)
    partition = assignment.partition_of["aggregator-0"]
    peers = assignment.peers_of("aggregator-0")
    assert len(peers) == 1
    assert assignment.partition_of[peers[0]] == partition


# -- adversary behaviours ---------------------------------------------------------------


def blob_of(values, counter=1.0):
    return encode_partition(np.array(values, dtype=float), counter)


def test_honest_behavior_passthrough():
    behavior = HonestBehavior()
    blobs = {"a": blob_of([1.0]), "b": blob_of([2.0])}
    assert behavior.select_gradients(blobs) == blobs
    blob = blob_of([3.0])
    assert behavior.tamper_update(blob) == blob


def test_drop_behavior_drops():
    behavior = DropGradientsBehavior(keep_fraction=0.5)
    blobs = {f"t{i}": blob_of([float(i)]) for i in range(4)}
    kept = behavior.select_gradients(blobs)
    assert len(kept) == 2
    assert set(kept) < set(blobs)


def test_drop_behavior_validation():
    with pytest.raises(ValueError):
        DropGradientsBehavior(keep_fraction=1.0)


def test_alter_behavior_changes_values_keeps_counter():
    behavior = AlterUpdateBehavior(offset=5.0)
    tampered = behavior.tamper_update(blob_of([1.0, 2.0], counter=3.0))
    values, counter = decode_partition(tampered)
    np.testing.assert_array_equal(values, [6.0, 7.0])
    assert counter == 3.0


def test_lazy_behavior_keeps_first_k():
    behavior = LazyBehavior(max_gradients=2)
    blobs = {f"t{i}": blob_of([float(i)]) for i in range(5)}
    assert len(behavior.select_gradients(blobs)) == 2
    with pytest.raises(ValueError):
        LazyBehavior(max_gradients=0)
