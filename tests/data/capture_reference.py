"""Regenerate the legacy-metrics golden file.

Run from the repo root::

    PYTHONPATH=src python tests/data/capture_reference.py

The captured values pin the paper-facing metrics of a set of reference
configurations.  The file checked in was produced by the pre-refactor
(mutate-in-place) telemetry implementation; the event-bus telemetry must
reproduce every value exactly (see tests/test_obs_equivalence.py).
"""

import json
import os
import sys

from repro.baselines import DirectIPLSSession
from repro import FLSession, NetworkProfile, ProtocolConfig
from repro.ml import (LogisticRegression, SyntheticModel,
                      make_classification, split_iid)

HERE = os.path.dirname(os.path.abspath(__file__))
OUT = os.path.join(HERE, "legacy_metrics_reference.json")

METRIC_NAMES = [
    "aggregation_delay", "total_aggregation_delay", "sync_delay",
    "mean_upload_delay", "mean_bytes_received", "collection_time",
    "end_to_end_delay", "duration", "first_gradient_at",
]


def snapshot(metrics) -> dict:
    snap = {name: getattr(metrics, name) for name in METRIC_NAMES}
    snap["trainers_completed"] = sorted(metrics.trainers_completed)
    snap["verification_failures"] = sorted(metrics.verification_failures)
    snap["takeovers"] = sorted(metrics.takeovers)
    snap["upload_delays"] = dict(sorted(metrics.upload_delays.items()))
    snap["gradients_aggregated_at"] = dict(
        sorted(metrics.gradients_aggregated_at.items()))
    snap["update_registered_at"] = dict(
        sorted(metrics.update_registered_at.items()))
    snap["bytes_received"] = dict(sorted(metrics.bytes_received.items()))
    snap["sync_delays"] = dict(sorted(metrics.sync_delays.items()))
    return snap


def dummy_datasets(count):
    import numpy as np
    from repro.ml import Dataset
    return [Dataset(np.full((1, 1), float(i + 1)), np.zeros(1))
            for i in range(count)]


def fig1_like(providers):
    """Scaled-down Fig. 1 point: merge-and-download provider sweep."""
    config = ProtocolConfig(
        num_partitions=1, t_train=600.0, t_sync=1200.0,
        update_mode="gradient", poll_interval=0.25,
        merge_and_download=True, providers_per_aggregator=providers,
    )
    session = FLSession(
        config, lambda: SyntheticModel(20_000), dummy_datasets(16),
        network=NetworkProfile(num_ipfs_nodes=16, bandwidth_mbps=10.0),
    )
    return snapshot(session.run_iteration())


def fig2_like(aggregators_per_partition):
    """Scaled-down Fig. 2 point: multi-aggregator sync sweep."""
    config = ProtocolConfig(
        num_partitions=4,
        aggregators_per_partition=aggregators_per_partition,
        t_train=600.0, t_sync=1200.0, takeover_grace=60.0,
        merge_and_download=False, update_mode="gradient",
        poll_interval=0.25,
    )
    session = FLSession(
        config, lambda: SyntheticModel(17_500 * 4), dummy_datasets(16),
        network=NetworkProfile(num_ipfs_nodes=8, bandwidth_mbps=20.0),
    )
    return snapshot(session.run_iteration())


def verifiable_run():
    """Two verifiable-mode ML rounds (commitments, real training)."""
    data = make_classification(num_samples=160, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    session = FLSession(
        ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0,
                       verifiable=True),
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, network=NetworkProfile(num_ipfs_nodes=4),
    )
    session.run(rounds=2)
    return [snapshot(m) for m in session.metrics.iterations]


def direct_baseline():
    config = ProtocolConfig(
        num_partitions=1, t_train=600.0, t_sync=1200.0,
        update_mode="gradient", poll_interval=0.25,
    )
    session = DirectIPLSSession(
        config, lambda: SyntheticModel(20_000), dummy_datasets(16),
        bandwidth_mbps=10.0,
    )
    return snapshot(session.run_iteration())


def main():
    reference = {
        "fig1_like": {str(p): fig1_like(p) for p in (1, 4)},
        "fig2_like": {str(a): fig2_like(a) for a in (1, 2)},
        "verifiable": verifiable_run(),
        "direct_baseline": direct_baseline(),
    }
    with open(OUT, "w") as handle:
        json.dump(reference, handle, indent=2, sort_keys=True)
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
