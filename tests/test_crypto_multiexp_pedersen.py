"""Tests for multi-exponentiation, hash-to-curve, Pedersen commitments
and the fixed-point codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    Commitment,
    FixedPointCodec,
    PedersenParams,
    Point,
    SECP256K1,
    SECP256R1,
    derive_generators,
    generator,
    hash_to_curve,
    multi_scalar_mult,
    pippenger,
    scalar_mult,
    sha256,
    straus,
)
from repro.crypto.multiexp import pippenger_window


def reference_msm(scalars, points):
    result = Point.identity(points[0].curve)
    for scalar, point in zip(scalars, points):
        result = result + scalar_mult(scalar, point)
    return result


# -- multiexp ----------------------------------------------------------------------


def test_straus_matches_reference():
    g = generator(SECP256K1)
    points = [scalar_mult(i + 1, g) for i in range(5)]
    scalars = [3, 1, 4, 1, 5]
    assert straus(scalars, points) == reference_msm(scalars, points)


def test_pippenger_matches_reference():
    g = generator(SECP256K1)
    points = [scalar_mult(i + 1, g) for i in range(30)]
    scalars = [(7 * i + 13) % 1000 + 1 for i in range(30)]
    assert pippenger(scalars, points) == reference_msm(scalars, points)


def test_pippenger_large_scalars():
    g = generator(SECP256R1)
    points = [scalar_mult(i + 2, g) for i in range(20)]
    scalars = [SECP256R1.n - i - 1 for i in range(20)]
    assert pippenger(scalars, points) == reference_msm(scalars, points)


def test_multiexp_with_zero_scalars():
    g = generator(SECP256K1)
    points = [g, g.double(), scalar_mult(5, g)]
    assert multi_scalar_mult([0, 0, 0], points).is_identity
    assert multi_scalar_mult([0, 1, 0], points) == g.double()


def test_multiexp_with_identity_points():
    g = generator(SECP256K1)
    identity = Point.identity(SECP256K1)
    assert multi_scalar_mult([5, 7], [identity, g]) == scalar_mult(7, g)


def test_multiexp_single_term():
    g = generator(SECP256K1)
    assert multi_scalar_mult([42], [g]) == scalar_mult(42, g)


def test_multiexp_validation():
    g = generator(SECP256K1)
    with pytest.raises(ValueError):
        multi_scalar_mult([1, 2], [g])
    with pytest.raises(ValueError):
        multi_scalar_mult([], [])
    with pytest.raises(ValueError):
        straus([1, 2], [generator(SECP256K1), generator(SECP256R1)])


def test_dispatch_small_vs_large_agree():
    g = generator(SECP256K1)
    points = [scalar_mult(i + 1, g) for i in range(40)]
    scalars = [i * i + 1 for i in range(40)]
    assert (straus(scalars[:8], points[:8])
            == pippenger(scalars[:8], points[:8]))
    assert (multi_scalar_mult(scalars, points)
            == reference_msm(scalars, points))


def test_pippenger_window_monotone():
    assert pippenger_window(2) == 1
    assert pippenger_window(100) >= pippenger_window(10)
    assert pippenger_window(10**7) <= 16


@settings(max_examples=5, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**128),
                min_size=2, max_size=6))
def test_multiexp_property(scalars):
    g = generator(SECP256K1)
    points = [scalar_mult(i + 3, g) for i in range(len(scalars))]
    assert multi_scalar_mult(scalars, points) == reference_msm(scalars, points)


# -- hash-to-curve / generators ----------------------------------------------------------


def test_hash_to_curve_on_curve():
    for curve in (SECP256K1, SECP256R1):
        point = hash_to_curve(curve, b"seed")
        assert curve.is_on_curve(point.x, point.y)


def test_hash_to_curve_deterministic():
    assert hash_to_curve(SECP256K1, b"a") == hash_to_curve(SECP256K1, b"a")
    assert hash_to_curve(SECP256K1, b"a") != hash_to_curve(SECP256K1, b"b")


def test_derive_generators_distinct():
    gens = derive_generators(SECP256K1, 20)
    assert len({g.to_bytes() for g in gens}) == 20


def test_derive_generators_deterministic_prefix():
    first = derive_generators(SECP256K1, 5)
    longer = derive_generators(SECP256K1, 10)
    assert longer[:5] == first


def test_derive_generators_validation():
    with pytest.raises(ValueError):
        derive_generators(SECP256K1, -1)


def test_sha256_wrapper():
    import hashlib
    assert sha256(b"x") == hashlib.sha256(b"x").digest()


# -- Pedersen ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def params():
    return PedersenParams.setup(SECP256K1, 8)


def test_commit_deterministic(params):
    assert params.commit([1, 2, 3]) == params.commit([1, 2, 3])


def test_commit_binds_vector(params):
    assert params.commit([1, 2, 3]) != params.commit([1, 2, 4])
    assert params.commit([1, 2, 3]) != params.commit([2, 1, 3])


def test_verify_accepts_opening(params):
    vector = [5, 0, 7, 9]
    assert params.verify(params.commit(vector), vector)


def test_verify_rejects_wrong_opening(params):
    commitment = params.commit([5, 0, 7, 9])
    assert not params.verify(commitment, [5, 0, 7, 8])


def test_homomorphic_addition(params):
    v1 = [1, 2, 3, 4]
    v2 = [10, 20, 30, 40]
    combined = params.commit(v1) * params.commit(v2)
    assert combined == params.commit([a + b for a, b in zip(v1, v2)])


def test_homomorphic_many_parties(params):
    vectors = [[i + j for j in range(4)] for i in range(6)]
    product = Commitment.product(
        [params.commit(v) for v in vectors], SECP256K1
    )
    total = [sum(col) for col in zip(*vectors)]
    assert params.verify(product, total)


def test_commitment_identity(params):
    identity = Commitment.identity(SECP256K1)
    c = params.commit([1, 2])
    assert identity * c == c
    assert params.commit([0, 0, 0]) == identity


def test_commit_zero_padding(params):
    assert params.commit([1, 2]) == params.commit([1, 2, 0, 0])


def test_commit_oversized_vector_raises(params):
    with pytest.raises(ValueError):
        params.commit(list(range(9)))


def test_commit_negative_values_mod_order(params):
    negative = params.commit([-1])
    wrapped = params.commit([SECP256K1.n - 1])
    assert negative == wrapped


def test_blinded_commitment_differs(params):
    plain = params.commit([1, 2, 3])
    blinded = params.commit([1, 2, 3], randomness=99)
    assert plain != blinded
    assert params.verify(blinded, [1, 2, 3], randomness=99)
    assert not params.verify(blinded, [1, 2, 3])


def test_commitment_serialization(params):
    c = params.commit([7, 8, 9])
    assert Commitment.from_bytes(SECP256K1, c.to_bytes()) == c


def test_params_size_validation():
    with pytest.raises(ValueError):
        PedersenParams.setup(SECP256K1, 0)


def test_generator_cache_shared():
    small = PedersenParams.setup(SECP256R1, 3)
    large = PedersenParams.setup(SECP256R1, 6)
    assert large.generators[:3] == small.generators


@settings(max_examples=5, deadline=None)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000),
             min_size=1, max_size=8),
    st.lists(st.integers(min_value=-1000, max_value=1000),
             min_size=1, max_size=8),
)
def test_homomorphism_property(v1, v2):
    params = PedersenParams.setup(SECP256K1, 8)
    length = max(len(v1), len(v2))
    v1 = v1 + [0] * (length - len(v1))
    v2 = v2 + [0] * (length - len(v2))
    assert (params.commit(v1) * params.commit(v2)
            == params.commit([a + b for a, b in zip(v1, v2)]))


# -- fixed-point codec ------------------------------------------------------------


def test_codec_roundtrip_exact():
    codec = FixedPointCodec(order=SECP256K1.n, fractional_bits=16)
    values = np.array([0.5, -0.25, 1.0, 0.0, -3.75])
    decoded = codec.decode(codec.encode(values))
    np.testing.assert_allclose(decoded, values)


def test_codec_quantization_error_bounded():
    codec = FixedPointCodec(order=SECP256K1.n, fractional_bits=24)
    rng = np.random.default_rng(3)
    values = rng.normal(size=100)
    decoded = codec.decode(codec.encode(values))
    assert np.max(np.abs(decoded - values)) <= 2.0 ** -24


def test_codec_additive_homomorphism():
    """Sum of encodings decodes to the sum of quantized values."""
    codec = FixedPointCodec(order=SECP256K1.n, fractional_bits=20)
    a = np.array([0.1, -0.2, 0.3])
    b = np.array([-0.4, 0.5, -0.6])
    ea, eb = codec.encode(a), codec.encode(b)
    summed = [(x + y) % codec.order for x, y in zip(ea, eb)]
    decoded = codec.decode(summed)
    np.testing.assert_allclose(
        decoded, codec.quantize(a) + codec.quantize(b), atol=0
    )


def test_codec_quantize_matches_encode_decode():
    codec = FixedPointCodec(order=SECP256K1.n, fractional_bits=12)
    values = np.array([0.123456, -9.87654])
    np.testing.assert_allclose(
        codec.quantize(values), codec.decode(codec.encode(values))
    )


def test_codec_validation():
    with pytest.raises(ValueError):
        FixedPointCodec(order=2)
    with pytest.raises(ValueError):
        FixedPointCodec(order=SECP256K1.n, fractional_bits=0)
    with pytest.raises(ValueError):
        FixedPointCodec(order=SECP256K1.n, fractional_bits=64)


def test_codec_negative_wraparound():
    codec = FixedPointCodec(order=SECP256K1.n, fractional_bits=8)
    scalar = codec.encode_value(-1.0)
    assert scalar == codec.order - 256
    assert codec.decode_value(scalar) == -1.0


@settings(max_examples=30)
@given(st.floats(min_value=-1e6, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_codec_roundtrip_property(value):
    codec = FixedPointCodec(order=SECP256K1.n, fractional_bits=20)
    decoded = codec.decode_value(codec.encode_value(value))
    assert abs(decoded - value) <= 2.0 ** -20


def test_end_to_end_gradient_commitment():
    """The protocol's core check: commit(quantized gradients) verifies the
    aggregated update via the commitment product."""
    codec = FixedPointCodec(order=SECP256K1.n, fractional_bits=16)
    params = PedersenParams.setup(SECP256K1, 4)
    rng = np.random.default_rng(11)
    gradients = [rng.normal(size=4) for _ in range(3)]

    commitments = [params.commit(codec.encode(g)) for g in gradients]
    accumulated = Commitment.product(commitments, SECP256K1)

    aggregate = np.sum([codec.quantize(g) for g in gradients], axis=0)
    assert params.verify(accumulated, codec.encode(aggregate))

    tampered = aggregate.copy()
    tampered[0] += 2.0 ** -16
    assert not params.verify(accumulated, codec.encode(tampered))
