"""TelemetryCollector, derived-metric edge cases, and archive round-trips."""

import pytest

from repro.core.telemetry import IterationMetrics, SessionMetrics
from repro.obs import EventBus, TelemetryCollector
from repro.obs.events import (
    BytesReceived,
    CommitmentComputed,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    SyncPhaseEnded,
    TakeoverPerformed,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
    VerificationFailed,
)


@pytest.fixture()
def bus():
    return EventBus()


@pytest.fixture()
def collector(bus):
    return TelemetryCollector(bus)


def open_iteration(bus, iteration=0, at=0.0):
    bus.publish(IterationStarted(at=at, iteration=iteration))


# -- collector behaviour ---------------------------------------------------------


def test_iteration_lifecycle(bus, collector):
    open_iteration(bus, at=10.0)
    bus.publish(IterationFinished(at=25.0, iteration=0))
    [metrics] = collector.session.iterations
    assert metrics.iteration == 0
    assert metrics.started_at == 10.0
    assert metrics.finished_at == 25.0
    assert metrics.duration == 15.0


def test_session_object_is_stable(bus, collector):
    session = collector.session
    open_iteration(bus)
    assert collector.session is session
    assert collector.metrics is session


def test_events_before_start_are_dropped(bus, collector):
    bus.publish(TrainerCompleted(at=1.0, iteration=0, trainer="trainer-0"))
    assert collector.session.iterations == []


def test_events_after_finish_are_dropped(bus, collector):
    open_iteration(bus)
    bus.publish(IterationFinished(at=5.0, iteration=0))
    bus.publish(VerificationFailed(at=6.0, iteration=0, label="late",
                                   scope="update"))
    [metrics] = collector.session.iterations
    assert metrics.verification_failures == []


def test_events_route_by_iteration(bus, collector):
    open_iteration(bus, iteration=0)
    bus.publish(IterationFinished(at=5.0, iteration=0))
    open_iteration(bus, iteration=1, at=5.0)
    bus.publish(TrainerCompleted(at=6.0, iteration=1, trainer="trainer-3"))
    bus.publish(TrainerCompleted(at=6.0, iteration=0, trainer="trainer-9"))
    first, second = collector.session.iterations
    assert first.trainers_completed == []
    assert second.trainers_completed == ["trainer-3"]


def test_first_gradient_wins(bus, collector):
    open_iteration(bus)
    bus.publish(GradientRegistered(at=3.0, iteration=0,
                                   uploader="trainer-0", partition_id=0))
    bus.publish(GradientRegistered(at=7.0, iteration=0,
                                   uploader="trainer-1", partition_id=1))
    assert collector.session.iterations[0].first_gradient_at == 3.0


def test_bytes_and_commit_seconds_accumulate(bus, collector):
    open_iteration(bus)
    for amount in (100.0, 250.0):
        bus.publish(BytesReceived(at=1.0, iteration=0,
                                  participant="aggregator-0", amount=amount))
    for seconds in (0.5, 0.25):
        bus.publish(CommitmentComputed(at=1.0, iteration=0,
                                       participant="trainer-0",
                                       seconds=seconds))
    [metrics] = collector.session.iterations
    assert metrics.bytes_received["aggregator-0"] == 350.0
    assert metrics.commit_seconds["trainer-0"] == 0.75


def test_assignment_semantics_overwrite(bus, collector):
    open_iteration(bus)
    for at in (4.0, 9.0):
        bus.publish(GradientsAggregated(at=at, iteration=0,
                                        aggregator="aggregator-0"))
        bus.publish(UpdateRegistered(at=at, iteration=0,
                                     aggregator="aggregator-0",
                                     partition_id=0))
    bus.publish(UploadCompleted(at=2.0, iteration=0, trainer="trainer-0",
                                delay=1.5))
    bus.publish(SyncPhaseEnded(at=8.0, iteration=0,
                               aggregator="aggregator-0", duration=3.0))
    [metrics] = collector.session.iterations
    assert metrics.gradients_aggregated_at["aggregator-0"] == 9.0
    assert metrics.update_registered_at["aggregator-0"] == 9.0
    assert metrics.upload_delays["trainer-0"] == 1.5
    assert metrics.sync_delays["aggregator-0"] == 3.0


def test_list_fields_append(bus, collector):
    open_iteration(bus)
    bus.publish(TakeoverPerformed(at=1.0, iteration=0,
                                  aggregator="aggregator-1",
                                  peer="aggregator-0"))
    bus.publish(VerificationFailed(at=2.0, iteration=0, label="bad",
                                   scope="trainer"))
    [metrics] = collector.session.iterations
    assert metrics.takeovers == ["aggregator-0"]
    assert metrics.verification_failures == ["bad"]


def test_close_stops_collection_but_keeps_history(bus, collector):
    open_iteration(bus)
    bus.publish(IterationFinished(at=1.0, iteration=0))
    collector.close()
    open_iteration(bus, iteration=1, at=1.0)
    assert len(collector.session.iterations) == 1


# -- derived-property edge cases (empty / partial iterations) --------------------


def test_empty_iteration_yields_none_everywhere():
    metrics = IterationMetrics(iteration=0)
    assert metrics.aggregation_delay is None
    assert metrics.sync_delay is None
    assert metrics.total_aggregation_delay is None
    assert metrics.collection_time is None
    assert metrics.end_to_end_delay is None
    assert metrics.mean_upload_delay is None
    assert metrics.mean_bytes_received is None
    assert metrics.duration == 0.0


def test_aggregation_delay_requires_first_gradient():
    metrics = IterationMetrics(
        iteration=0, gradients_aggregated_at={"aggregator-0": 12.0}
    )
    # Aggregations recorded but no registration timestamp: undefined.
    assert metrics.aggregation_delay is None
    assert metrics.total_aggregation_delay is None
    # Collection time does not depend on the directory, so it exists.
    assert metrics.collection_time == 12.0


def test_single_aggregator_delays():
    metrics = IterationMetrics(
        iteration=0,
        started_at=1.0,
        first_gradient_at=2.0,
        gradients_aggregated_at={"aggregator-0": 5.0},
        update_registered_at={"aggregator-0": 8.0},
        sync_delays={"aggregator-0": 3.0},
    )
    assert metrics.aggregation_delay == 3.0
    assert metrics.total_aggregation_delay == 6.0
    assert metrics.collection_time == 4.0
    assert metrics.end_to_end_delay == 7.0
    assert metrics.sync_delay == 3.0


def test_delays_use_slowest_aggregator():
    metrics = IterationMetrics(
        iteration=0,
        first_gradient_at=0.0,
        gradients_aggregated_at={"aggregator-0": 4.0, "aggregator-1": 9.0},
        update_registered_at={"aggregator-0": 10.0, "aggregator-1": 6.0},
    )
    assert metrics.aggregation_delay == 9.0
    assert metrics.total_aggregation_delay == 10.0


def test_means_average_over_participants():
    metrics = IterationMetrics(
        iteration=0,
        upload_delays={"trainer-0": 1.0, "trainer-1": 3.0},
        bytes_received={"aggregator-0": 100.0, "aggregator-1": 300.0},
    )
    assert metrics.mean_upload_delay == 2.0
    assert metrics.mean_bytes_received == 200.0


def test_session_latest_and_mean():
    session = SessionMetrics()
    with pytest.raises(IndexError):
        session.latest()
    session.iterations.append(IterationMetrics(iteration=0))  # all None
    session.iterations.append(IterationMetrics(
        iteration=1, upload_delays={"trainer-0": 4.0}))
    assert session.latest().iteration == 1
    # None iterations are skipped, not averaged as zero.
    assert session.mean_over_iterations("mean_upload_delay") == 4.0
    assert session.mean_over_iterations("sync_delay") is None


# -- archive round-trip ----------------------------------------------------------


def full_metrics():
    return IterationMetrics(
        iteration=2,
        started_at=10.0,
        finished_at=50.0,
        upload_delays={"trainer-0": 1.25},
        first_gradient_at=12.0,
        gradients_aggregated_at={"aggregator-0": 30.0},
        update_registered_at={"aggregator-0": 40.0},
        bytes_received={"aggregator-0": 4096.0},
        sync_delays={"aggregator-0": 5.0},
        commit_seconds={"trainer-0": 0.125},
        verification_failures=["bad-entry"],
        trainers_completed=["trainer-0"],
        takeovers=["aggregator-1"],
    )


def test_iteration_metrics_from_dict_roundtrip():
    original = full_metrics()
    rebuilt = IterationMetrics.from_dict(original.to_dict())
    assert rebuilt == original
    assert rebuilt.to_dict() == original.to_dict()


def test_from_dict_recomputes_derived_values():
    snapshot = full_metrics().to_dict()
    snapshot["aggregation_delay"] = -999.0  # tampered derived value
    rebuilt = IterationMetrics.from_dict(snapshot)
    assert rebuilt.aggregation_delay == 18.0


def test_from_dict_tolerates_missing_optionals():
    metrics = IterationMetrics.from_dict({"iteration": 7})
    assert metrics.iteration == 7
    assert metrics.upload_delays == {}
    assert metrics.first_gradient_at is None


def test_session_metrics_json_roundtrip():
    session = SessionMetrics(iterations=[
        full_metrics(), IterationMetrics(iteration=3)
    ])
    rebuilt = SessionMetrics.from_json(session.to_json())
    assert rebuilt == session
    assert rebuilt.to_json() == session.to_json()
