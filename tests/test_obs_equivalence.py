"""Event-bus telemetry must reproduce the legacy metrics exactly.

``tests/data/legacy_metrics_reference.json`` was captured with the
pre-refactor telemetry (protocol classes mutating ``IterationMetrics``
in place).  These tests re-run the same reference configurations through
the event-bus pipeline and require every paper-facing value to match to
float precision.  Regenerate the golden only on a commit whose metric
values are themselves verified:

    PYTHONPATH=src python tests/data/capture_reference.py
"""

import importlib.util
import json
import os

import pytest

HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN = os.path.join(HERE, "data", "legacy_metrics_reference.json")


def _load_capture_module():
    spec = importlib.util.spec_from_file_location(
        "capture_reference",
        os.path.join(HERE, "data", "capture_reference.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


capture = _load_capture_module()

with open(GOLDEN) as _handle:
    reference = json.load(_handle)


def assert_snapshot_equal(actual: dict, expected: dict, label: str):
    assert set(actual) == set(expected), f"{label}: field sets differ"
    for key, want in expected.items():
        have = actual[key]
        if isinstance(want, float):
            assert have == pytest.approx(want, abs=1e-9), \
                f"{label}.{key}: {have!r} != {want!r}"
        elif isinstance(want, dict):
            assert set(have) == set(want), f"{label}.{key}: keys differ"
            for inner, value in want.items():
                assert have[inner] == pytest.approx(value, abs=1e-9), \
                    f"{label}.{key}[{inner}]: {have[inner]!r} != {value!r}"
        else:
            assert have == want, f"{label}.{key}: {have!r} != {want!r}"


@pytest.mark.parametrize("providers", ["1", "4"])
def test_fig1_metrics_match_legacy(providers):
    actual = capture.fig1_like(int(providers))
    assert_snapshot_equal(actual, reference["fig1_like"][providers],
                          f"fig1[{providers} providers]")


@pytest.mark.parametrize("aggregators", ["1", "2"])
def test_fig2_metrics_match_legacy(aggregators):
    actual = capture.fig2_like(int(aggregators))
    assert_snapshot_equal(actual, reference["fig2_like"][aggregators],
                          f"fig2[{aggregators} aggregators]")


def test_verifiable_run_matches_legacy():
    actual = capture.verifiable_run()
    expected = reference["verifiable"]
    assert len(actual) == len(expected)
    for index, (have, want) in enumerate(zip(actual, expected)):
        assert_snapshot_equal(have, want, f"verifiable[round {index}]")


def test_direct_baseline_matches_legacy():
    assert_snapshot_equal(capture.direct_baseline(),
                          reference["direct_baseline"], "direct_baseline")
