"""Indexed scheduler: Timeout cancellation, tombstones, timeout_many.

The scaling refactor gave the kernel true cancellation — a cancelled
:class:`Timeout` is tombstoned in place and purged from the heap —
plus a batch ``timeout_many`` for fleet-wide schedules.  These tests
pin the semantics the :class:`~repro.net.bandwidth.FlowScheduler`
relies on (a superseded wakeup must never fire).
"""

import pytest

from repro.sim import SimulationError, Simulator


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timeout = sim.timeout(1.0, value="a")
    timeout._add_callback(lambda event: fired.append(event.value))
    assert timeout.cancel()
    sim.timeout(2.0)  # keep the run non-empty
    sim.run()
    assert fired == []
    assert sim.now == 2.0


def test_cancel_is_idempotent_and_reports_outcome():
    sim = Simulator()
    timeout = sim.timeout(1.0)
    assert timeout.cancel() is True
    assert timeout.cancel() is False  # already cancelled


def test_cancel_after_processing_fails():
    sim = Simulator()
    timeout = sim.timeout(1.0)
    sim.run()
    assert timeout.processed
    assert timeout.cancel() is False


def test_cancelled_timeout_can_be_rescheduled_conceptually():
    """Cancelling one wakeup and arming a new one is the scheduler's
    re-arm pattern; the new timeout is independent."""
    sim = Simulator()
    fired = []
    stale = sim.timeout(5.0, value="stale")
    stale._add_callback(lambda event: fired.append(event.value))
    assert stale.cancel()
    fresh = sim.timeout(1.0, value="fresh")
    fresh._add_callback(lambda event: fired.append(event.value))
    sim.run()
    assert fired == ["fresh"]
    assert sim.now == 1.0


def test_peek_skips_tombstones():
    sim = Simulator()
    near = sim.timeout(1.0)
    sim.timeout(3.0)
    assert sim.peek() == 1.0
    near.cancel()
    assert sim.peek() == 3.0


def test_run_terminates_when_only_tombstones_remain():
    sim = Simulator()
    timeouts = [sim.timeout(float(i + 1)) for i in range(5)]
    for timeout in timeouts:
        timeout.cancel()
    sim.run()  # must not step into a tombstone or hang
    assert sim.now == 0.0


def test_step_raises_on_tombstone_only_queue():
    sim = Simulator()
    sim.timeout(1.0).cancel()
    with pytest.raises(SimulationError):
        sim.step()


def test_tombstone_compaction_bounds_the_heap():
    """Mass cancellation compacts the heap instead of letting dead
    entries dominate it."""
    sim = Simulator()
    timeouts = [sim.timeout(float(i + 1)) for i in range(300)]
    keeper = sim.timeout(1000.0)
    for timeout in timeouts:
        timeout.cancel()
    # Compaction triggered along the way: far fewer entries than the
    # 301 scheduled, and the survivor still fires at the right time.
    assert len(sim._queue) < 100
    sim.run()
    assert keeper.processed
    assert sim.now == 1000.0


def test_timeout_many_matches_individual_timeouts():
    delays = [3.0, 1.0, 2.0, 1.0]
    batch_order = []
    loop_order = []

    sim_batch = Simulator()
    for index, timeout in enumerate(sim_batch.timeout_many(delays)):
        timeout._add_callback(
            lambda event, index=index: batch_order.append(
                (sim_batch.now, index))
        )
    sim_batch.run()

    sim_loop = Simulator()
    for index, delay in enumerate(delays):
        sim_loop.timeout(delay)._add_callback(
            lambda event, index=index: loop_order.append(
                (sim_loop.now, index))
        )
    sim_loop.run()

    assert batch_order == loop_order
    assert batch_order == [(1.0, 1), (1.0, 3), (2.0, 2), (3.0, 0)]


def test_timeout_many_bulk_path_heapifies_correctly():
    """A large batch takes the extend+heapify path; order still holds."""
    sim = Simulator()
    fired = []
    delays = [float(100 - i) for i in range(100)]
    for timeout in sim.timeout_many(delays, value="tick"):
        timeout._add_callback(lambda event: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == 100
    assert sim.now == 100.0


def test_timeout_many_values_and_cancel():
    sim = Simulator()
    timeouts = sim.timeout_many([1.0, 2.0], value=7)
    assert timeouts[1].cancel()
    sim.run()
    assert timeouts[0].value == 7
    assert not timeouts[1].processed


def test_timeout_many_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout_many([1.0, -0.5])


def test_timeout_many_empty_is_fine():
    sim = Simulator()
    assert sim.timeout_many([]) == []


def test_processes_still_wait_on_cancelled_peers_timeouts():
    """A process yielding an uncancelled timeout is unaffected by other
    cancellations interleaved in the same heap."""
    sim = Simulator()
    log = []

    def waiter():
        yield sim.timeout(2.0)
        log.append(sim.now)

    doomed = [sim.timeout(0.5), sim.timeout(1.0), sim.timeout(1.5)]
    sim.process(waiter())
    for timeout in doomed:
        timeout.cancel()
    sim.run()
    assert log == [2.0]
