"""Tests for the statistics helpers plus a second coverage round over
baseline options and telemetry paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Summary, bootstrap_ci, percentile, summarize
from repro.baselines import CentralizedSession, DirectIPLSSession
from repro.core import ProtocolConfig
from repro.ml import (
    FedAvgResult,
    LogisticRegression,
    make_classification,
    run_fedavg,
    run_fedsgd,
    split_iid,
    train_test_split,
)


# -- stats --------------------------------------------------------------------


def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == 2.5
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.median == 2.5
    assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
    assert "mean=2.5" in str(summary)


def test_summarize_single_value():
    summary = summarize([7.0])
    assert summary.std == 0.0
    assert summary.median == 7.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_percentile_interpolation():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    assert percentile([5.0], 73) == 5.0
    with pytest.raises(ValueError):
        percentile(values, 101)
    with pytest.raises(ValueError):
        percentile([], 50)


@settings(max_examples=40)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=40))
def test_percentile_within_range_property(values):
    for q in (0, 25, 50, 75, 100):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


def test_bootstrap_ci_contains_mean_for_tight_series():
    values = [10.0, 10.1, 9.9, 10.05, 9.95] * 4
    low, high = bootstrap_ci(values, seed=1)
    assert low <= 10.0 <= high
    assert high - low < 0.2


def test_bootstrap_ci_deterministic_by_seed():
    values = [1.0, 5.0, 3.0, 2.0, 4.0]
    assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)
    # (different seeds may legitimately converge to the same interval)


def test_bootstrap_ci_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([], seed=0)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], confidence=1.5)


def test_bootstrap_ci_custom_statistic():
    values = [1.0, 2.0, 100.0]
    low, high = bootstrap_ci(values, statistic=lambda vs: max(vs),
                             seed=0, resamples=200)
    assert high == 100.0


# -- coverage round 2: baseline options ------------------------------------------


def make_shards(num_trainers=4):
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=1)
    return split_iid(data, num_trainers, seed=1)


def factory():
    return LogisticRegression(num_features=8, num_classes=2, seed=0)


def test_direct_ipls_gradient_mode():
    config = ProtocolConfig(num_partitions=2, t_train=300, t_sync=600,
                            update_mode="gradient", learning_rate=0.3)
    session = DirectIPLSSession(config, factory, make_shards())
    session.run(rounds=2)
    session.consensus_params()
    assert len(session.metrics.iterations) == 2


def test_centralized_server_bandwidth_override():
    config = ProtocolConfig(num_partitions=1, t_train=300, t_sync=600)
    slow = CentralizedSession(config, factory, make_shards(),
                              bandwidth_mbps=10.0,
                              server_bandwidth_mbps=1.0)
    fast = CentralizedSession(config, factory, make_shards(),
                              bandwidth_mbps=10.0,
                              server_bandwidth_mbps=100.0)
    slow_metrics = slow.run_iteration()
    fast_metrics = fast.run_iteration()
    assert (slow_metrics.total_aggregation_delay
            > fast_metrics.total_aggregation_delay)


# -- reference FedAvg trajectories ---------------------------------------------------


def test_run_fedavg_result_fields():
    data = make_classification(num_samples=300, num_features=6,
                               class_separation=3.0, seed=2)
    train, test = train_test_split(data, seed=2)
    shards = split_iid(train, 3, seed=2)
    model = factory_six()
    result = run_fedavg(model, shards, rounds=2, test_set=test)
    assert isinstance(result, FedAvgResult)
    assert len(result.params_per_round) == 2
    assert len(result.train_loss) == 2
    assert len(result.test_accuracy) == 2
    assert result.train_loss[-1] <= result.train_loss[0] * 1.5


def factory_six():
    return LogisticRegression(num_features=6, num_classes=2, seed=0)


def test_run_fedsgd_without_test_set():
    data = make_classification(num_samples=200, num_features=6,
                               class_separation=3.0, seed=3)
    shards = split_iid(data, 2, seed=3)
    result = run_fedsgd(factory_six(), shards, rounds=3,
                        learning_rate=0.2)
    assert result.test_accuracy == []
    assert len(result.params_per_round) == 3
    # Loss should be non-increasing-ish for a convex model.
    assert result.train_loss[-1] < result.train_loss[0]
