"""Critical-path decomposition and straggler ranking (repro.obs).

The golden test pins the simulator's critical path to the closed forms
in :mod:`repro.analysis.delays` on the paper's Fig. 1 configuration.
"""

import numpy as np
import pytest

from repro.analysis import naive_aggregation_time, naive_collection_time
from repro.core import FLSession, ProtocolConfig
from repro.core.partition import encode_partition
from repro.ipfs.node import CID_WIRE_SIZE, REQUEST_OVERHEAD
from repro.ml import Dataset, SyntheticModel
from repro.net import mbps
from repro.obs import CriticalPathAnalyzer, SpanCollector, build_span_tree
from repro.obs.events import (
    BlockFetched,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    SyncPhaseEnded,
    SyncPhaseStarted,
    UpdateRegistered,
    UploadCompleted,
)


def chain_events():
    """Two trainers, two providers, one aggregator, a sync phase."""
    return [
        IterationStarted(at=0.0, iteration=0),
        GradientRegistered(at=1.0, iteration=0, uploader="trainer-0",
                           partition_id=0),
        UploadCompleted(at=1.2, iteration=0, trainer="trainer-0",
                        delay=1.0, started_at=0.2),
        GradientRegistered(at=1.5, iteration=0, uploader="trainer-1",
                           partition_id=0),
        UploadCompleted(at=1.7, iteration=0, trainer="trainer-1",
                        delay=1.4, started_at=0.3),
        BlockFetched(at=3.0, client="aggregator-0", node="ipfs-0",
                     cid="c0", size=100, started_at=2.0),
        BlockFetched(at=3.5, client="aggregator-0", node="ipfs-1",
                     cid="c1", size=100, started_at=2.0),
        GradientsAggregated(at=4.0, iteration=0, aggregator="aggregator-0",
                            partition_id=0, started_at=0.1),
        SyncPhaseStarted(at=4.0, iteration=0, aggregator="aggregator-0",
                         partition_id=0),
        SyncPhaseEnded(at=5.0, iteration=0, aggregator="aggregator-0",
                       duration=1.0, partition_id=0),
        UpdateRegistered(at=5.8, iteration=0, aggregator="aggregator-0",
                         partition_id=0, started_at=5.0),
        IterationFinished(at=6.0, iteration=0),
    ]


def analyzer_for(events):
    return CriticalPathAnalyzer(build_span_tree(events))


# -- the chain -------------------------------------------------------------------


def test_critical_path_walks_the_binding_chain():
    path = analyzer_for(chain_events()).analyze(0)
    assert [step.name for step in path.steps] == [
        "upload", "collect.wait", "collect.download", "collect.aggregate",
        "sync", "publish_update",
    ]
    # The binding trainer is the *latest* registration (trainer-1), the
    # binding download the latest-ending fetch (ipfs-1).
    upload = path.segment("upload")
    assert (upload.node, upload.start, upload.end) == ("trainer-1", 0.3, 1.5)
    assert path.segment("collect.wait").duration == pytest.approx(0.5)
    download = path.segment("collect.download")
    assert (download.start, download.end) == (2.0, 3.5)
    assert path.segment("collect.aggregate").duration == pytest.approx(0.5)
    assert path.segment("sync").end == 5.0
    assert path.segment("publish_update").end == 5.8


def test_steps_are_contiguous_and_telescope_to_the_length():
    path = analyzer_for(chain_events()).analyze(0)
    for previous, current in zip(path.steps, path.steps[1:]):
        assert previous.end == current.start
    assert sum(step.duration for step in path.steps) == \
        pytest.approx(path.length, rel=1e-12)
    assert sum(path.phase_lengths().values()) == \
        pytest.approx(path.length, rel=1e-12)
    assert (path.start, path.end) == (0.3, 5.8)


def test_path_without_publish_ends_at_the_collect():
    events = [event for event in chain_events()
              if not isinstance(event, UpdateRegistered)]
    path = analyzer_for(events).analyze(0)
    assert path.steps[-1].name == "sync"  # sync still outlasts collect
    events = [event for event in events
              if not isinstance(event, (SyncPhaseStarted, SyncPhaseEnded))]
    path = analyzer_for(events).analyze(0)
    assert path.steps[-1].name == "collect.aggregate"
    assert path.end == 4.0


def test_no_aggregation_means_no_path():
    analyzer = analyzer_for([
        IterationStarted(at=0.0, iteration=0),
        IterationFinished(at=1.0, iteration=0),
    ])
    assert analyzer.analyze(0) is None
    assert analyzer.analyze(42) is None  # unknown iteration


def test_format_mentions_every_step():
    path = analyzer_for(chain_events()).analyze(0)
    text = path.format()
    for step in path.steps:
        assert step.name in text


# -- stragglers ------------------------------------------------------------------


def test_straggler_report_ranks_by_slack():
    report = analyzer_for(chain_events()).straggler_report(0)
    trainers = report.for_role("trainer")
    assert [(entry.name, entry.slack) for entry in trainers] == [
        ("trainer-1", 0.0), ("trainer-0", 0.5),
    ]
    providers = report.for_role("provider")
    assert [(entry.name, entry.slack) for entry in providers] == [
        ("ipfs-1", 0.0), ("ipfs-0", 0.5),
    ]
    [aggregator] = report.for_role("aggregator")
    assert aggregator.slack == 0.0
    # Entries come slack-ascending; the binding participants lead.
    assert [entry.slack for entry in report.entries] == \
        sorted(entry.slack for entry in report.entries)


def test_straggler_threshold_flags_near_critical_participants():
    analyzer = analyzer_for(chain_events())
    tight = analyzer.straggler_report(0, threshold=0.0)
    assert {entry.name for entry in tight.stragglers} == \
        {"trainer-1", "ipfs-1", "aggregator-0"}
    loose = analyzer.straggler_report(0, threshold=0.5)
    assert {entry.name for entry in loose.stragglers} == \
        {"trainer-0", "trainer-1", "ipfs-0", "ipfs-1", "aggregator-0"}
    assert "slack" in loose.format()


def test_analyzer_accepts_a_tree_mapping():
    tree = build_span_tree(chain_events())
    analyzer = CriticalPathAnalyzer({0: tree})
    assert analyzer.iterations() == [0]
    assert analyzer.analyze(0).length == pytest.approx(5.5)


# -- golden test vs analysis.delays (Fig. 1 configuration) -----------------------


NUM_TRAINERS = 16
PARTITION_PARAMS = 162_500  # ~1.3 MB of float64, as in Fig. 1
BANDWIDTH_MBPS = 10.0


def fig1_naive_session():
    config = ProtocolConfig(
        num_partitions=1,
        t_train=3600.0,
        t_sync=7200.0,
        update_mode="gradient",
        poll_interval=0.25,
        merge_and_download=False,
    )
    shards = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(NUM_TRAINERS)
    ]
    return FLSession(
        config,
        model_factory=lambda: SyntheticModel(PARTITION_PARAMS),
        datasets=shards,
        num_ipfs_nodes=8,
        bandwidth_mbps=BANDWIDTH_MBPS,
        latency=0.0,
        dht_lookup_delay=0.0,
    )


def test_critical_path_matches_closed_form_on_fig1_config():
    """The download wave on the critical path equals the analytic
    collection time to float precision.

    In the symmetric naive configuration every get is issued at one
    instant and the aggregator's access link is the binding resource
    throughout, so max-min fairness degenerates to exact serialization
    of the request and response wire bytes.
    """
    session = fig1_naive_session()
    collector = SpanCollector(session.sim.bus)
    session.run(rounds=1)
    path = CriticalPathAnalyzer(collector).analyze(0)
    assert path is not None

    blob_bytes = len(encode_partition(np.zeros(PARTITION_PARAMS), 1.0))
    bandwidth = mbps(BANDWIDTH_MBPS)
    expected = naive_collection_time(
        NUM_TRAINERS,
        gradient_wire_bytes=blob_bytes + REQUEST_OVERHEAD,
        aggregator_bandwidth=bandwidth,
        request_wire_bytes=REQUEST_OVERHEAD + CID_WIRE_SIZE,
    )
    download = path.segment("collect.download")
    assert download is not None
    assert download.duration == pytest.approx(expected, rel=1e-9)
    # The wire-exact value refines the paper's back-of-envelope model.
    assert download.duration == pytest.approx(
        naive_aggregation_time(NUM_TRAINERS, blob_bytes + REQUEST_OVERHEAD,
                               bandwidth),
        rel=1e-3,
    )
    # Telescoping invariant holds on real simulator output too.
    assert sum(step.duration for step in path.steps) == \
        pytest.approx(path.length, rel=1e-12)


def test_straggler_report_on_fig1_config_is_symmetric():
    # 16 trainers, 2 per storage node, identical links: everyone lands
    # together, so every trainer is tied at slack 0.
    session = fig1_naive_session()
    collector = SpanCollector(session.sim.bus)
    session.run(rounds=1)
    report = CriticalPathAnalyzer(collector).straggler_report(0)
    trainers = report.for_role("trainer")
    assert len(trainers) == NUM_TRAINERS
    assert all(entry.slack == pytest.approx(0.0, abs=1e-9)
               for entry in trainers)
    assert len(report.for_role("provider")) == 8
    assert len(report.for_role("aggregator")) == 1
