"""Tests for swarm (striped) block retrieval and the replay adversary."""

import numpy as np
import pytest

from repro.core import (
    FLSession,
    ProtocolConfig,
    ReplayUpdateBehavior,
    decode_partition,
    encode_partition,
)
from repro.ipfs import NotFoundError, ReplicationCluster, compute_cid
from repro.ml import LogisticRegression, make_classification, split_iid

from tests.util import make_ipfs_world


LARGE = np.random.default_rng(0).integers(
    0, 256, size=1_000_000, dtype=np.uint8
).tobytes()


# -- get_block ---------------------------------------------------------------------


def test_get_block_roundtrip():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    node = world.node(0)
    from repro.ipfs import Block
    block = Block(b"one raw block")
    node.store.put(block)
    box = {}

    def scenario():
        box["data"] = yield from client.get_block(block.cid, "ipfs-0")

    world.sim.process(scenario())
    world.sim.run()
    assert box["data"] == b"one raw block"


def test_get_block_missing_returns_none():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    box = {}

    def scenario():
        box["data"] = yield from client.get_block(
            compute_cid(b"ghost"), "ipfs-0"
        )

    world.sim.process(scenario())
    world.sim.run()
    assert box["data"] is None


def test_get_block_corruption_returns_none():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    node = world.node(0)
    from repro.ipfs import Block
    block = Block(b"target")
    node.store.put(block)
    node.corrupt = True
    box = {}

    def scenario():
        box["data"] = yield from client.get_block(block.cid, "ipfs-0")

    world.sim.process(scenario())
    world.sim.run()
    assert box["data"] is None


# -- get_striped --------------------------------------------------------------------


def test_striped_roundtrip_single_provider():
    world = make_ipfs_world(num_nodes=1, bandwidth_mbps=100.0)
    client = world.client("client-0")
    cid = world.node(0).store_object(LARGE)
    box = {}

    def scenario():
        box["data"] = yield from client.get_striped(
            cid, prefer_nodes=["ipfs-0"]
        )

    world.sim.process(scenario())
    world.sim.run()
    assert box["data"] == LARGE


def test_striped_bare_block():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    from repro.ipfs import Block
    block = Block(b"not a manifest, just bytes")
    world.node(0).store.put(block)
    world.dht.provide(block.cid, "ipfs-0")
    box = {}

    def scenario():
        box["data"] = yield from client.get_striped(block.cid)

    world.sim.process(scenario())
    world.sim.run()
    assert box["data"] == b"not a manifest, just bytes"


def test_striped_faster_with_two_providers():
    """Striping across two replicas roughly halves the download time
    when the provider uplinks (not the client downlink) are the
    bottleneck — each provider carries half the leaves."""
    times = {}
    for replicas in (1, 2):
        world = make_ipfs_world(num_nodes=2, bandwidth_mbps=10.0)
        # Fat client pipe: the 10 Mbps provider uplinks are the limit.
        fat = world.network.host("client-0")
        fat.uplink.capacity = fat.downlink.capacity = 1e9
        client = world.client("client-0")
        cid = world.node(0).store_object(LARGE)
        if replicas == 2:
            world.node(1).store_object(LARGE)

        def scenario(sim=world.sim, client=client, cid=cid,
                     replicas=replicas):
            yield from client.get_striped(cid)
            times[replicas] = sim.now

        world.sim.process(scenario())
        world.sim.run()
    assert times[2] < 0.7 * times[1]


def test_striped_survives_one_corrupt_provider():
    world = make_ipfs_world(num_nodes=2, bandwidth_mbps=100.0)
    client = world.client("client-0")
    cid = world.node(0).store_object(LARGE)
    world.node(1).store_object(LARGE)
    world.node(0).corrupt = True
    box = {}

    def scenario():
        box["data"] = yield from client.get_striped(cid)

    world.sim.process(scenario())
    world.sim.run()
    assert box["data"] == LARGE


def test_striped_unknown_cid_raises():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")

    def scenario():
        yield from client.get_striped(compute_cid(b"nothing"))

    proc = world.sim.process(scenario())
    with pytest.raises(NotFoundError):
        world.sim.run()


def test_striped_after_replication():
    """Cluster replication + striping compose: replicas created in the
    background later serve stripes."""
    world = make_ipfs_world(num_nodes=3, bandwidth_mbps=100.0)
    ReplicationCluster(world.sim, world.nodes, replication_factor=2)
    client = world.client("client-0")
    box = {}

    def scenario(sim):
        cid = yield from client.put(LARGE, node="ipfs-0")
        yield sim.timeout(60.0)  # replication completes
        box["data"] = yield from client.get_striped(cid)

    world.sim.process(scenario(world.sim))
    world.sim.run()
    assert box["data"] == LARGE


# -- replay adversary -----------------------------------------------------------------


def test_replay_behavior_mechanics():
    behavior = ReplayUpdateBehavior()
    first = encode_partition(np.array([1.0, 2.0]), 2.0)
    second = encode_partition(np.array([3.0, 4.0]), 2.0)
    # First round: nothing to replay, passes through.
    assert behavior.tamper_update(first) == first
    # Second round: replays the first.
    assert behavior.tamper_update(second) == first


def test_replay_attack_detected_in_second_round():
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    config = ProtocolConfig(num_partitions=2, t_train=60.0, t_sync=120.0,
                            verifiable=True)
    session = FLSession(
        config,
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
        behaviors={"aggregator-0": ReplayUpdateBehavior()},
    )
    first = session.run_iteration()
    assert len(first.trainers_completed) == 4  # round 0 is genuine
    second = session.run_iteration()
    # Round 1's replayed update fails the fresh accumulated commitment.
    assert second.verification_failures
    assert second.trainers_completed == []


def test_replay_attack_succeeds_without_verification():
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    config = ProtocolConfig(num_partitions=2, t_train=60.0, t_sync=120.0)
    session = FLSession(
        config,
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
        behaviors={"aggregator-0": ReplayUpdateBehavior()},
    )
    session.run_iteration()
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4  # stale update installed
