"""Property-based tests for cross-cutting invariants:

- max-min fairness: capacity respected, work conservation, bottleneck
  optimality;
- flow conservation in the scheduler;
- simulated-time monotonicity under random process graphs;
- protocol-level invariants over a configuration grid.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLSession, ProtocolConfig, decode_partition
from repro.ipfs import compute_cid
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.net.bandwidth import Flow, FlowScheduler, Link, max_min_rates
from repro.sim import Simulator


# -- max-min fairness properties -----------------------------------------------------


@st.composite
def flow_systems(draw):
    """A random set of links and flows crossing subsets of them."""
    num_links = draw(st.integers(min_value=1, max_value=6))
    links = [
        Link(f"l{i}", draw(st.floats(min_value=1.0, max_value=1000.0)))
        for i in range(num_links)
    ]
    num_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for index in range(num_flows):
        chosen = draw(st.sets(
            st.integers(min_value=0, max_value=num_links - 1),
            min_size=1, max_size=num_links,
        ))
        flows.append(Flow(index, tuple(links[i] for i in chosen),
                          size=100.0, done=None))
    return links, flows


@settings(max_examples=80)
@given(flow_systems())
def test_max_min_respects_capacities(system):
    links, flows = system
    rates = max_min_rates(flows)
    for link in links:
        load = sum(rates[flow] for flow in flows if link in flow.links)
        assert load <= link.capacity * (1 + 1e-9)


@settings(max_examples=80)
@given(flow_systems())
def test_max_min_every_flow_bottlenecked(system):
    """Work conservation: every flow crosses at least one saturated link
    (otherwise its rate could be raised, contradicting max-min)."""
    links, flows = system
    rates = max_min_rates(flows)
    for flow in flows:
        assert rates[flow] > 0
        saturated = False
        for link in flow.links:
            load = sum(rates[f] for f in flows if link in f.links)
            if load >= link.capacity * (1 - 1e-9):
                saturated = True
                break
        assert saturated, f"flow {flow.flow_id} is not bottlenecked"


@settings(max_examples=80)
@given(flow_systems())
def test_max_min_bottleneck_fairness(system):
    """On each saturated link, no crossing flow gets less than another
    unless it is constrained elsewhere (the max-min condition)."""
    links, flows = system
    rates = max_min_rates(flows)
    for link in links:
        crossing = [flow for flow in flows if link in flow.links]
        if not crossing:
            continue
        load = sum(rates[flow] for flow in crossing)
        if load < link.capacity * (1 - 1e-9):
            continue  # unsaturated link constrains nobody
        top_rate = max(rates[flow] for flow in crossing)
        for flow in crossing:
            if rates[flow] >= top_rate * (1 - 1e-9):
                continue
            # A flow below the top share must be saturated elsewhere.
            constrained = False
            for other_link in flow.links:
                if other_link is link:
                    continue
                other_load = sum(
                    rates[f] for f in flows if other_link in f.links
                )
                if other_load >= other_link.capacity * (1 - 1e-9):
                    constrained = True
                    break
            assert constrained


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=1.0, max_value=10_000.0),
             min_size=1, max_size=8),
    st.floats(min_value=1.0, max_value=1000.0),
)
def test_flow_scheduler_conserves_bytes(sizes, capacity):
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    link = Link("l", capacity)

    def proc(size):
        yield scheduler.start_flow((link,), size)

    for size in sizes:
        sim.process(proc(size))
    sim.run()
    assert scheduler.bytes_delivered == pytest.approx(sum(sizes))
    assert scheduler.active_flows == 0


# -- simulated-time monotonicity ---------------------------------------------------------


@settings(max_examples=30)
@given(st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),   # spawn delay
        st.floats(min_value=0.0, max_value=50.0),   # inner delay
        st.integers(min_value=0, max_value=3),      # children
    ),
    min_size=1, max_size=12,
))
def test_sim_time_monotone_under_random_process_trees(spec):
    sim = Simulator()
    observed = []

    def child(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    def parent(sim, spawn_delay, inner_delay, children):
        yield sim.timeout(spawn_delay)
        observed.append(sim.now)
        spawned = [
            sim.process(child(sim, inner_delay + i))
            for i in range(children)
        ]
        if spawned:
            yield sim.all_of(spawned)
            observed.append(sim.now)

    for spawn_delay, inner_delay, children in spec:
        sim.process(parent(sim, spawn_delay, inner_delay, children))
    sim.run()
    assert observed == sorted(observed)
    assert all(t >= 0 for t in observed)


# -- content addressing determinism -----------------------------------------------------------


@given(st.binary(max_size=256), st.binary(max_size=256))
def test_cid_injective_on_examples(a, b):
    if a != b:
        assert compute_cid(a) != compute_cid(b)
    else:
        assert compute_cid(a) == compute_cid(b)


# -- protocol invariants over a configuration grid ------------------------------------------------


@pytest.mark.parametrize("num_partitions", [1, 3])
@pytest.mark.parametrize("aggregators_per_partition", [1, 2])
@pytest.mark.parametrize("merge", [False, True])
def test_protocol_invariants_grid(num_partitions,
                                  aggregators_per_partition, merge):
    """For every topology: all trainers finish, all models agree, the
    update counter equals the number of contributing trainers, and every
    partition has exactly one visible global update."""
    num_trainers = 6
    data = make_classification(num_samples=180, num_features=9,
                               class_separation=3.0, seed=1)
    shards = split_iid(data, num_trainers, seed=1)
    config = ProtocolConfig(
        num_partitions=num_partitions,
        aggregators_per_partition=aggregators_per_partition,
        t_train=300.0,
        t_sync=600.0,
        merge_and_download=merge,
        providers_per_aggregator=2 if merge else 0,
    )
    session = FLSession(
        config,
        lambda: LogisticRegression(num_features=9, num_classes=2, seed=0),
        shards,
        num_ipfs_nodes=4,
    )
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == num_trainers
    session.consensus_params()
    for partition in range(num_partitions):
        updates = [
            entry for entry in
            session.directory.entries_for(partition, 0, "update")
            if entry.verified is not False
        ]
        assert len(updates) == 1
        node = next(node for node in session.nodes
                    if node.store.has(updates[0].cid))
        blob = node.load_object(updates[0].cid)
        _, counter = decode_partition(blob)
        assert counter == float(num_trainers)
