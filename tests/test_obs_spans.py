"""Span-tree reconstruction from bus events (repro.obs.spans)."""

import pytest

from repro.obs import EventBus, SpanCollector, build_span_tree
from repro.obs.events import (
    BlockFetched,
    CommitmentComputed,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    PartialUpdateRegistered,
    SnapshotSealed,
    SyncPhaseEnded,
    SyncPhaseStarted,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
)


def one_round_events(iteration=3):
    """A hand-built round exercising every span kind."""
    return [
        IterationStarted(at=0.0, iteration=iteration, t_train=600.0,
                         t_sync=1200.0),
        CommitmentComputed(at=0.1, iteration=iteration,
                           participant="trainer-0", seconds=0.01),
        GradientRegistered(at=1.5, iteration=iteration,
                           uploader="trainer-0", partition_id=0),
        UploadCompleted(at=2.0, iteration=iteration, trainer="trainer-0",
                        delay=1.5, started_at=0.5),
        BlockFetched(at=4.0, client="aggregator-0", node="ipfs-1",
                     cid="cid-grad", size=1000, started_at=2.5),
        GradientsAggregated(at=4.5, iteration=iteration,
                            aggregator="aggregator-0", partition_id=0,
                            started_at=0.2),
        SyncPhaseStarted(at=4.5, iteration=iteration,
                         aggregator="aggregator-0", partition_id=0),
        PartialUpdateRegistered(at=4.8, iteration=iteration,
                                aggregator="aggregator-0", partition_id=0),
        SyncPhaseEnded(at=5.0, iteration=iteration,
                       aggregator="aggregator-0", duration=0.5,
                       partition_id=0),
        UpdateRegistered(at=6.0, iteration=iteration,
                         aggregator="aggregator-0", partition_id=0,
                         started_at=5.0),
        SnapshotSealed(at=6.1, iteration=iteration, partition_id=0,
                       node="ipfs-0", cid="cid-snap"),
        BlockFetched(at=6.8, client="trainer-0", node="ipfs-0",
                     cid="cid-upd", size=1000, started_at=6.1),
        TrainerCompleted(at=7.0, iteration=iteration, trainer="trainer-0"),
        IterationFinished(at=7.0, iteration=iteration),
    ]


# -- build_span_tree -------------------------------------------------------------


def test_tree_root_covers_the_iteration():
    tree = build_span_tree(one_round_events())
    assert tree.iteration == 3
    assert tree.root.name == "iteration"
    assert tree.root.node == "session"
    assert (tree.root.start, tree.root.end) == (0.0, 7.0)
    assert tree.root.meta == {"t_train": 600.0, "t_sync": 1200.0}


def test_phase_spans_take_their_bounds_from_correlation_keys():
    tree = build_span_tree(one_round_events())
    [upload] = tree.named("upload")
    assert (upload.node, upload.start, upload.end) == ("trainer-0", 0.5, 2.0)
    [collect] = tree.named("collect")
    assert (collect.start, collect.end) == (0.2, 4.5)
    assert collect.partition_id == 0
    [sync] = tree.named("sync")
    assert (sync.start, sync.end) == (4.5, 5.0)
    [publish] = tree.named("publish_update")
    assert (publish.start, publish.end) == (5.0, 6.0)
    [install] = tree.named("install")
    # Install runs from the trainer's upload completion to its finish.
    assert (install.node, install.start, install.end) == \
        ("trainer-0", 2.0, 7.0)


def test_instants_nest_under_the_enclosing_phase_of_their_node():
    tree = build_span_tree(one_round_events())
    [register] = tree.named("register")
    assert register.is_instant and register.end == 1.5
    assert register.parent.name == "upload"
    [partial] = tree.named("partial_update")
    assert partial.parent.name == "sync"  # 4.8 inside the sync window
    [commit] = tree.named("commit")
    # 0.1 precedes every trainer-0 phase, so it hangs off the root.
    assert commit.parent is tree.root
    [snapshot] = tree.named("snapshot")
    assert snapshot.parent is tree.root
    assert snapshot.meta["cid"] == "cid-snap"


def test_fetches_attach_by_midpoint_and_record_provider():
    tree = build_span_tree(one_round_events())
    gradient_fetch, update_fetch = tree.named("fetch")
    assert gradient_fetch.parent.name == "collect"
    assert gradient_fetch.meta["provider"] == "ipfs-1"
    assert gradient_fetch.meta["cid"] == "cid-grad"
    assert update_fetch.parent.name == "install"


def test_boundary_fetch_stays_in_the_phase_it_spans():
    # A fetch ending exactly when the collect phase ends must belong to
    # collect, not to the zero-width-adjacent publish phase that starts
    # at the same instant.
    events = [
        IterationStarted(at=0.0, iteration=0),
        BlockFetched(at=4.0, client="aggregator-0", node="ipfs-0",
                     cid="c", size=10, started_at=1.0),
        GradientsAggregated(at=4.0, iteration=0, aggregator="aggregator-0",
                            partition_id=0, started_at=0.0),
        UpdateRegistered(at=5.0, iteration=0, aggregator="aggregator-0",
                         partition_id=0, started_at=4.0),
        IterationFinished(at=5.0, iteration=0),
    ]
    tree = build_span_tree(events)
    [fetch] = tree.named("fetch")
    assert fetch.parent.name == "collect"


def test_self_time_subtracts_child_coverage():
    tree = build_span_tree(one_round_events())
    [collect] = tree.named("collect")
    # collect [0.2, 4.5] minus its fetch child [2.5, 4.0].
    assert collect.self_time == pytest.approx(4.3 - 1.5)
    [upload] = tree.named("upload")
    assert upload.self_time == pytest.approx(upload.duration)  # instants


def test_missing_correlation_keys_degrade_gracefully():
    # Producers that never stamp started_at / partition_id (baselines)
    # still yield a tree: phases collapse to instants or root-anchored
    # windows rather than crashing.
    events = [
        IterationStarted(at=0.0, iteration=0),
        UploadCompleted(at=2.0, iteration=0, trainer="trainer-0",
                        delay=1.0),
        GradientsAggregated(at=4.0, iteration=0, aggregator="aggregator-0"),
        UpdateRegistered(at=5.0, iteration=0, aggregator="aggregator-0",
                         partition_id=0),
        IterationFinished(at=5.0, iteration=0),
    ]
    tree = build_span_tree(events)
    [upload] = tree.named("upload")
    assert upload.is_instant and upload.end == 2.0
    [collect] = tree.named("collect")
    assert (collect.start, collect.end) == (0.0, 4.0)
    assert collect.partition_id is None
    [publish] = tree.named("publish_update")
    assert publish.is_instant


def test_no_iteration_started_means_no_tree():
    assert build_span_tree([]) is None
    assert build_span_tree(one_round_events()[1:]) is None


def test_tree_query_helpers():
    tree = build_span_tree(one_round_events())
    assert len(tree) == len(list(tree))
    assert tree.nodes()[0] == "session"
    by_node = tree.by_node()
    assert set(by_node) == set(tree.nodes())
    assert tree.spans(name="fetch", node="trainer-0")[0].meta["provider"] \
        == "ipfs-0"


# -- SpanCollector ---------------------------------------------------------------


def test_collector_builds_one_tree_per_finished_iteration():
    bus = EventBus()
    collector = SpanCollector(bus)
    for event in one_round_events(iteration=0):
        bus.publish(event)
    assert sorted(collector.trees) == [0]
    assert collector.tree(0).iteration == 0
    assert collector.latest() is collector.tree(0)
    assert collector.tree(1) is None


def test_collector_attributes_infra_events_to_the_open_iteration():
    bus = EventBus()
    collector = SpanCollector(bus)
    bus.publish(IterationStarted(at=0.0, iteration=7))
    bus.publish(GradientsAggregated(at=3.0, iteration=7,
                                    aggregator="aggregator-0",
                                    partition_id=0, started_at=0.0))
    # BlockFetched carries no iteration; it lands in the open round 7.
    bus.publish(BlockFetched(at=2.0, client="aggregator-0", node="ipfs-0",
                             cid="c", size=10, started_at=1.0))
    bus.publish(IterationFinished(at=4.0, iteration=7))
    [fetch] = collector.tree(7).named("fetch")
    assert fetch.iteration == 7 and fetch.parent.name == "collect"


def test_collector_drops_events_outside_any_open_iteration():
    bus = EventBus()
    collector = SpanCollector(bus)
    # Before any round and with a stale iteration number: both dropped.
    bus.publish(BlockFetched(at=0.5, client="x", node="ipfs-0", cid="c",
                             size=10))
    bus.publish(IterationStarted(at=1.0, iteration=1))
    bus.publish(TrainerCompleted(at=1.5, iteration=0, trainer="trainer-9"))
    bus.publish(IterationFinished(at=2.0, iteration=1))
    tree = collector.tree(1)
    assert tree.named("fetch") == [] and tree.named("install") == []


def test_collector_close_stops_collecting_but_keeps_trees():
    bus = EventBus()
    collector = SpanCollector(bus)
    for event in one_round_events(iteration=0):
        bus.publish(event)
    collector.close()
    assert not bus.active
    bus.publish(IterationStarted(at=10.0, iteration=1))
    bus.publish(IterationFinished(at=11.0, iteration=1))
    assert sorted(collector.trees) == [0]
