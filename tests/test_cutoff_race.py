"""Regression tests for the t_train registration-cutoff race.

A trainer whose *upload* straddles the training deadline must not have
its commitment accumulated after the aggregators' final poll — otherwise
an honest aggregate could fail verification.  The directory enforces the
cutoff at registration time.
"""

import numpy as np

from repro.core import Address, FLSession, GRADIENT, ProtocolConfig
from repro.ml import LogisticRegression, make_classification, split_iid

from tests.test_core_directory import make_world, run


def test_directory_rejects_gradient_after_cutoff():
    sim, transport, dht, node, directory, committer = make_world()
    from repro.core.directory import DirectoryClient
    client = DirectoryClient("client-0", transport)
    directory.begin_iteration(0, t_train=10.0)
    cid = node.store_object(b"gradient")

    def scenario(sim):
        early = yield from client.register(Address("t0", 0, 0, GRADIENT),
                                           cid)
        yield sim.timeout(20.0)  # past the cutoff
        late = yield from client.register(Address("t1", 0, 0, GRADIENT),
                                          cid)
        rows = yield from client.lookup(0, 0, GRADIENT)
        return early, late, rows

    early, late, rows = run(sim, scenario(sim))
    assert early["accepted"]
    assert not late["accepted"]
    assert [row["uploader_id"] for row in rows] == ["t0"]


def test_late_commitment_never_enters_accumulation():
    sim, transport, dht, node, directory, committer = make_world(
        verifiable=True
    )
    from repro.core.directory import DirectoryClient
    client = DirectoryClient("client-0", transport)
    directory.begin_iteration(0, t_train=5.0)
    blob, commitment = committer.encode_and_commit(np.ones(4))
    cid = node.store_object(blob)

    def scenario(sim):
        yield from client.register(Address("t0", 0, 0, GRADIENT), cid,
                                   commitment)
        yield sim.timeout(10.0)
        yield from client.register(Address("t1", 0, 0, GRADIENT), cid,
                                   commitment)

    run(sim, scenario(sim))
    _, count = directory.accumulated_commitment(0, 0)
    assert count == 1  # the late commitment is not in the product


def test_straddling_upload_does_not_break_verification():
    """End to end: a trainer on a glacial link finishes its upload after
    t_train; in verifiable mode the remaining trainers' aggregate must
    still verify and install."""
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    config = ProtocolConfig(num_partitions=2, t_train=1.0, t_sync=240.0,
                            verifiable=True, poll_interval=0.2)
    session = FLSession(
        config,
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
        bandwidth_mbps=10.0,
        # trainer-0's ~1.6 kB of partition uploads take >2.5 s at 4 kbps,
        # straddling the 1 s deadline.
        trainer_bandwidths_mbps=[0.004, 10.0, 10.0, 10.0],
    )
    metrics = session.run_iteration()
    completed = set(metrics.trainers_completed)
    assert "trainer-0" not in completed
    assert {"trainer-1", "trainer-2", "trainer-3"} <= completed
    # No verification failures: the honest 3-trainer aggregate opened the
    # accumulated commitment (which excludes the late registration).
    assert metrics.verification_failures == []
    assert not session.directory.rejections


def test_straddling_upload_batch_registration():
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    config = ProtocolConfig(num_partitions=2, t_train=1.0, t_sync=240.0,
                            verifiable=True, batch_registration=True,
                            poll_interval=0.2)
    session = FLSession(
        config,
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
        bandwidth_mbps=10.0,
        trainer_bandwidths_mbps=[0.004, 10.0, 10.0, 10.0],
    )
    metrics = session.run_iteration()
    assert "trainer-0" not in metrics.trainers_completed
    assert len(metrics.trainers_completed) == 3
    assert metrics.verification_failures == []
