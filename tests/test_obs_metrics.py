"""The metrics layer: histograms, resource sampling, OpenMetrics
exposition, run manifests and regression diffs."""

import json
import math

import numpy as np
import pytest

from repro.analysis.stats import percentile
from repro.cli import main
from repro.core import FLSession, ProtocolConfig
from repro.ml import Dataset, SyntheticModel
from repro.net import TransferTrace
from repro.obs import (
    CountersRegistry,
    EventBus,
    Histogram,
    MetricsRegistry,
    ResourceSampler,
    RunManifest,
    TimeSeries,
    compare_manifests,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.events import (
    BlockFetched,
    CommitmentComputed,
    DhtLookup,
    SyncPhaseEnded,
    TransferCompleted,
    UploadCompleted,
)
from repro.sim import Simulator


# -- Histogram ------------------------------------------------------------------


def test_histogram_buckets_are_log_spaced():
    histogram = Histogram("x", lo=1.0, hi=8.0, growth=2.0)
    assert histogram.bounds == [1.0, 2.0, 4.0, 8.0]


def test_histogram_observe_fills_buckets_and_stats():
    histogram = Histogram("x", lo=1.0, hi=8.0, growth=2.0)
    for value in (0.5, 1.0, 3.0, 100.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == 104.5
    assert histogram.minimum == 0.5
    assert histogram.maximum == 100.0
    # 0.5 and 1.0 in le=1, 3.0 in le=4, 100.0 overflows to +Inf.
    assert histogram.bucket_counts == [2, 0, 1, 0, 1]
    cumulative = histogram.cumulative_buckets()
    assert cumulative == [(1.0, 2), (2.0, 2), (4.0, 3), (8.0, 3),
                          (math.inf, 4)]
    assert cumulative[-1][1] == histogram.count


def test_histogram_percentiles_are_exact_not_bucketed():
    histogram = Histogram("x", lo=1.0, hi=1e6, growth=10.0)
    values = [float(v) for v in range(1, 101)]
    for value in values:
        histogram.observe(value)
    # Matches analysis.stats.percentile exactly — no bucket rounding.
    for q in (50.0, 95.0, 99.0):
        assert histogram.percentile(q) == percentile(values, q)
    summary = histogram.summary()
    assert summary["p50"] == percentile(values, 50.0)
    assert summary["p95"] == percentile(values, 95.0)
    assert summary["mean"] == sum(values) / len(values)


def test_empty_histogram_summary_and_percentile():
    histogram = Histogram("x")
    assert histogram.percentile(95.0) == 0.0
    assert histogram.summary() == {"count": 0}


def test_histogram_rejects_bad_layout():
    with pytest.raises(ValueError):
        Histogram("x", lo=0.0)
    with pytest.raises(ValueError):
        Histogram("x", lo=2.0, hi=1.0)
    with pytest.raises(ValueError):
        Histogram("x", growth=1.0)


# -- TimeSeries ------------------------------------------------------------------


def test_timeseries_digest_and_key():
    series = TimeSeries("net.link.utilization",
                        (("link", "trainer-0/up"),))
    assert series.key() == "net.link.utilization{link=trainer-0/up}"
    assert series.digest() == {"count": 0}
    series.record(0.0, 0.5)
    series.record(1.0, 1.0)
    series.record(2.0, 0.1)
    assert series.last == 0.1
    assert series.digest() == {
        "count": 3, "min": 0.1, "max": 1.0,
        "mean": pytest.approx(1.6 / 3), "last": 0.1,
    }


# -- MetricsRegistry -------------------------------------------------------------


def publish_synthetic_stream(bus):
    bus.publish(TransferCompleted(at=1.5, src="a", dst="b", size=1000.0,
                                  started_at=0.5))
    bus.publish(TransferCompleted(at=3.0, src="b", dst="a", size=500.0,
                                  started_at=1.0))
    bus.publish(DhtLookup(at=0.3, querier="a", cid="c1", providers=2,
                          hops=3, started_at=0.1))
    bus.publish(BlockFetched(at=2.0, client="a", node="ipfs-0", cid="c1",
                             size=4096, started_at=1.0))
    bus.publish(UploadCompleted(at=4.0, iteration=0, trainer="t",
                                delay=0.8))
    bus.publish(SyncPhaseEnded(at=5.0, iteration=0, aggregator="agg",
                               duration=0.4))
    bus.publish(CommitmentComputed(at=5.0, iteration=0, participant="t",
                                   seconds=0.01))


def test_registry_derives_histograms_from_events():
    bus = EventBus()
    registry = MetricsRegistry(bus)
    publish_synthetic_stream(bus)
    assert registry.histogram("net.transfer.duration").values() == [1.0, 2.0]
    assert registry.histogram("net.transfer.bytes").total == 1500.0
    assert registry.histogram("dht.lookup.hops").values() == [3.0]
    assert registry.histogram("dht.lookup.latency").values() == \
        [pytest.approx(0.2)]
    assert registry.histogram("ipfs.fetch.latency").values() == [1.0]
    assert registry.histogram("ipfs.block.bytes").values() == [4096.0]
    assert registry.histogram("protocol.upload.delay").values() == [0.8]
    assert registry.histogram("protocol.sync.duration").values() == [0.4]
    assert registry.histogram("protocol.commit.seconds").values() == [0.01]
    # The owned counters ride along on the same stream.
    assert registry.counters.get("net.bytes") == 1500.0


def test_registry_ignores_events_without_correlation_keys():
    bus = EventBus()
    registry = MetricsRegistry(bus)
    bus.publish(DhtLookup(at=0.3, querier=None, cid="c", providers=0,
                          hops=0))  # no started_at
    bus.publish(BlockFetched(at=2.0, client="a", node="n", cid="c",
                             size=10))  # no started_at
    assert registry.histogram("dht.lookup.latency").count == 0
    assert registry.histogram("ipfs.fetch.latency").count == 0
    assert registry.histogram("dht.lookup.hops").count == 1
    assert registry.histogram("ipfs.block.bytes").count == 1


def test_registry_close_detaches_everything_it_attached():
    bus = EventBus()
    registry = MetricsRegistry(bus)
    publish_synthetic_stream(bus)
    registry.close()
    assert not bus.active  # subscription AND owned counters detached
    publish_synthetic_stream(bus)
    assert registry.histogram("net.transfer.duration").count == 2
    assert registry.counters.get("net.transfers") == 2


def test_registry_leaves_borrowed_counters_attached():
    bus = EventBus()
    counters = CountersRegistry(bus)
    registry = MetricsRegistry(bus, counters=counters)
    registry.close()
    assert bus.active  # the caller's counters keep recording
    publish_synthetic_stream(bus)
    assert counters.get("net.transfers") == 2
    counters.close()
    assert not bus.active


def test_timeseries_get_or_create_by_name_and_labels():
    registry = MetricsRegistry(EventBus())
    a = registry.timeseries("net.link.utilization", link="a/up")
    b = registry.timeseries("net.link.utilization", link="b/up")
    assert a is not b
    assert a is registry.timeseries("net.link.utilization", link="a/up")
    a.record(0.0, 1.0)
    assert [s.key() for s in registry.series()] == [
        "net.link.utilization{link=a/up}",
        "net.link.utilization{link=b/up}",
    ]


# -- ResourceSampler -------------------------------------------------------------


def test_sampler_records_on_the_sim_clock_and_stops():
    sim = Simulator()
    registry = MetricsRegistry(sim.bus)
    sampler = ResourceSampler(sim, registry, interval=1.0)
    # The sampler's own ticks keep the queue alive.
    sim.run(until=3.5)
    assert sampler.samples_taken == 4  # t = 0, 1, 2, 3
    sampler.stop()
    sim.run(until=10.0)
    assert sampler.samples_taken == 4  # no ticks after stop
    sampler.stop()  # idempotent


def test_sampler_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        ResourceSampler(sim, MetricsRegistry(sim.bus), interval=0.0)


def small_session(bandwidth_mbps=10.0, num_trainers=4, seed=0):
    config = ProtocolConfig(
        num_partitions=2,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
        seed=seed,
    )
    shards = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(num_trainers)
    ]
    return FLSession(
        config,
        model_factory=lambda: SyntheticModel(20_000),
        datasets=shards,
        num_ipfs_nodes=4,
        bandwidth_mbps=bandwidth_mbps,
    )


def test_sampler_observes_session_resources():
    session = small_session()
    registry = MetricsRegistry(session.sim.bus)
    sampler = ResourceSampler.for_session(session, registry, interval=0.25)
    session.run(rounds=1)
    sampler.stop()
    registry.close()
    digests = {series.key(): series.digest()
               for series in registry.series()}
    # Flows were in flight at some sample instant, and utilization of a
    # saturated 10 Mbps link reads 1.0.
    assert digests["net.flows.active"]["max"] >= 1
    utilization = [d for k, d in digests.items()
                   if k.startswith("net.link.utilization{")]
    assert utilization and max(d["max"] for d in utilization) == \
        pytest.approx(1.0)
    # Gradients were resident on the blockstores during the round.
    assert digests["ipfs.blockstore.bytes"]["max"] > 0
    assert digests["ipfs.blockstore.objects"]["max"] >= 1
    per_node = [k for k in digests
                if k.startswith("ipfs.blockstore.node.bytes{")]
    assert len(per_node) == len(session.nodes)
    assert "directory.queue.depth" in digests


# -- conservation across subscribers (satellite invariant) -----------------------


FIG1_TRAINERS = 16
FIG1_PARTITION_PARAMS = 162_500  # ~1.3 MB of float64, as in Fig. 1


def fig1_session():
    config = ProtocolConfig(
        num_partitions=1,
        t_train=3600.0,
        t_sync=7200.0,
        update_mode="gradient",
        poll_interval=0.25,
        merge_and_download=True,
        providers_per_aggregator=4,
    )
    shards = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(FIG1_TRAINERS)
    ]
    return FLSession(
        config,
        model_factory=lambda: SyntheticModel(FIG1_PARTITION_PARAMS),
        datasets=shards,
        num_ipfs_nodes=8,
        bandwidth_mbps=10.0,
    )


def test_transfer_bytes_conserved_across_subscribers_on_fig1_config():
    """Every subscriber of TransferCompleted must account the same
    bytes: the metrics histogram, the counters registry and the
    flow-record trace are three independent views of one stream."""
    session = fig1_session()
    registry = MetricsRegistry(session.sim.bus)
    trace = TransferTrace(session.testbed.network)
    metrics = session.run_iteration()
    histogram = registry.histogram("net.transfer.bytes")
    assert histogram.total == registry.counters.get("net.bytes")
    assert histogram.total == trace.total_bytes()
    assert histogram.count == registry.counters.get("net.transfers")
    assert histogram.count == len(trace)
    # And the telemetry layer's per-iteration download totals are a
    # subset of the same stream: no participant can have received more
    # than crossed the network.
    assert sum(metrics.bytes_received.values()) <= histogram.total


# -- OpenMetrics exposition ------------------------------------------------------


def test_openmetrics_round_trip():
    bus = EventBus()
    registry = MetricsRegistry(bus)
    publish_synthetic_stream(bus)
    registry.timeseries("net.flows.active").record(0.0, 2.0)
    registry.timeseries("net.link.utilization", link="a/up").record(0.0, 0.75)
    text = render_openmetrics(registry)
    assert text.endswith("# EOF\n")
    families = parse_openmetrics(text)

    counters = registry.counters.counters()
    for name, value in counters.items():
        safe = name.replace(".", "_")
        assert families[safe].type == "counter"
        assert families[safe].value("_total") == value

    for name, histogram in registry.histograms().items():
        safe = name.replace(".", "_")
        family = families[safe]
        assert family.type == "histogram"
        assert family.value("_count") == histogram.count
        assert family.value("_sum") == pytest.approx(histogram.total)
        # The +Inf bucket is cumulative-complete.
        assert family.value("_bucket", le="+Inf") == histogram.count

    assert families["net_flows_active"].value() == 2.0
    assert families["net_link_utilization"].value(link="a/up") == 0.75


def test_openmetrics_escapes_and_sanitizes_names():
    registry = MetricsRegistry(EventBus())
    registry.timeseries("weird.series", label='quo"te\\n').record(0.0, 1.0)
    text = render_openmetrics(registry)
    families = parse_openmetrics(text)
    assert "weird_series" in families


def test_parse_rejects_garbage_and_missing_eof():
    with pytest.raises(ValueError):
        parse_openmetrics("not a metric line at all !!!\n# EOF\n")
    with pytest.raises(ValueError):
        parse_openmetrics("x_total 1\n")
    with pytest.raises(ValueError):
        parse_openmetrics("# EOF\nx_total 1\n")


# -- RunManifest and compare -----------------------------------------------------


def manifest_from_stream(extra_duration=None, fingerprint=None):
    bus = EventBus()
    registry = MetricsRegistry(bus)
    publish_synthetic_stream(bus)
    if extra_duration is not None:
        bus.publish(TransferCompleted(
            at=extra_duration, src="a", dst="b", size=1000.0,
            started_at=0.0,
        ))
    registry.timeseries("directory.queue.depth").record(0.0, 3.0)
    return RunManifest.collect(registry, fingerprint=fingerprint)


def test_manifest_json_round_trip(tmp_path):
    manifest = manifest_from_stream(fingerprint={"digest": "abc"})
    path = tmp_path / "run.json"
    manifest.write(path)
    loaded = RunManifest.load(path)
    assert loaded == manifest
    assert json.loads(manifest.to_json())["version"] == manifest.version
    assert loaded.histograms["net.transfer.duration"]["count"] == 2
    assert "directory.queue.depth" in loaded.series
    # Empty histograms are omitted from the manifest entirely.
    assert "protocol.collect.duration" not in loaded.histograms


def test_manifest_from_json_ignores_unknown_keys():
    manifest = manifest_from_stream()
    raw = json.loads(manifest.to_json())
    raw["some_future_field"] = {"x": 1}
    assert RunManifest.from_json(json.dumps(raw)) == manifest


def test_compare_flags_regression_with_direction():
    base = manifest_from_stream()
    # Third transfer takes 8 s: mean and p95 durations move up >> 10%.
    slower = manifest_from_stream(extra_duration=8.0)
    diff = compare_manifests(base, slower, threshold=0.10)
    assert diff.has_regressions
    regressed = {entry.metric for entry in diff.regressions}
    assert "net.transfer.duration.mean" in regressed
    assert "net.transfer.duration.p95" in regressed
    # The reverse comparison is an improvement, not a regression.
    reverse = compare_manifests(slower, base, threshold=0.10)
    assert not reverse.has_regressions
    assert {e.metric for e in reverse.improvements} >= regressed


def test_compare_identical_manifests_is_clean():
    manifest = manifest_from_stream(fingerprint={"digest": "same"})
    diff = compare_manifests(manifest, manifest)
    assert not diff.has_regressions
    assert not diff.improvements
    assert diff.fingerprint_matches
    assert diff.unchanged > 0
    assert "0 regression(s)" in diff.format()


def test_compare_respects_per_metric_thresholds():
    base = manifest_from_stream()
    slower = manifest_from_stream(extra_duration=8.0)
    loose = compare_manifests(
        base, slower, threshold=0.10,
        thresholds={
            "net.transfer.duration.mean": 10.0,
            "net.transfer.duration.p95": 10.0,
            "net.transfer.duration.max": 10.0,
        },
    )
    assert "net.transfer.duration.mean" not in \
        {e.metric for e in loose.regressions}


def test_diffentry_inf_change_on_zero_base():
    from repro.obs import DiffEntry

    entry = DiffEntry(metric="m", base=0.0, current=1.0, threshold=0.1)
    assert entry.relative_change == math.inf
    flat = DiffEntry(metric="m", base=0.0, current=0.0, threshold=0.1)
    assert flat.relative_change == 0.0


def test_compare_reports_added_and_removed_metrics():
    base = manifest_from_stream()
    other = manifest_from_stream()
    other.counters["brand.new"] = 1.0
    del other.counters["net.transfers"]
    diff = compare_manifests(base, other)
    assert "brand.new" in diff.added
    assert "net.transfers" in diff.removed
    assert not any(e.metric == "net.transfers" for e in diff.regressions)


def test_session_fingerprint_is_stable_and_scenario_sensitive():
    a = small_session().fingerprint()
    b = small_session().fingerprint()
    slow = small_session(bandwidth_mbps=6.0).fingerprint()
    assert a["digest"] == b["digest"]
    assert a["digest"] != slow["digest"]
    assert a["trainers"] == 4 and a["ipfs_nodes"] == 4


# -- the CLI ---------------------------------------------------------------------


CLI_SESSION_ARGS = ["--trainers", "2", "--rounds", "1", "--partitions",
                    "1", "--ipfs-nodes", "2", "--params", "2000"]


def test_cli_metrics_writes_exposition_and_manifest(tmp_path, capsys):
    exposition_path = tmp_path / "metrics.txt"
    manifest_path = tmp_path / "manifest.json"
    code = main(["metrics", "--output", str(exposition_path),
                 "--manifest", str(manifest_path)] + CLI_SESSION_ARGS)
    assert code == 0
    families = parse_openmetrics(exposition_path.read_text())
    assert families["net_transfer_duration"].type == "histogram"
    assert families["net_transfers"].value("_total") > 0
    manifest = RunManifest.load(manifest_path)
    assert manifest.histograms["net.transfer.duration"]["count"] == \
        families["net_transfer_duration"].value("_count")
    assert manifest.fingerprint["digest"]
    assert "resource samples" in capsys.readouterr().err


def test_cli_metrics_streams_to_stdout(capsys):
    code = main(["metrics"] + CLI_SESSION_ARGS)
    assert code == 0
    out = capsys.readouterr().out
    parse_openmetrics(out)  # must be valid exposition


def test_cli_compare_detects_slow_link_regression(tmp_path, capsys):
    """The acceptance scenario: a synthetic slow-link run regresses
    transfer durations by >= 20% and `cli compare` exits non-zero."""
    base_path = tmp_path / "base.json"
    slow_path = tmp_path / "slow.json"
    assert main(["metrics", "--output", str(tmp_path / "b.txt"),
                 "--manifest", str(base_path),
                 "--bandwidth-mbps", "10"] + CLI_SESSION_ARGS) == 0
    # 6 Mbps links: every transfer takes ~1.67x as long (>= +20%).
    assert main(["metrics", "--output", str(tmp_path / "s.txt"),
                 "--manifest", str(slow_path),
                 "--bandwidth-mbps", "6"] + CLI_SESSION_ARGS) == 0
    base = RunManifest.load(base_path)
    slow = RunManifest.load(slow_path)
    base_mean = base.histograms["net.transfer.duration"]["mean"]
    slow_mean = slow.histograms["net.transfer.duration"]["mean"]
    assert slow_mean >= base_mean * 1.2  # the injected regression is real

    code = main(["compare", str(base_path), str(slow_path),
                 "--threshold", "0.1"])
    out = capsys.readouterr().out
    assert code == 1
    assert "REGRESSION" in out
    assert "net.transfer.duration" in out

    # warn-only downgrades the failure to advisory.
    assert main(["compare", str(base_path), str(slow_path),
                 "--threshold", "0.1", "--warn-only"]) == 0
    # And the clean direction exits zero.
    assert main(["compare", str(base_path), str(base_path)]) == 0


def test_cli_metrics_failing_run_still_writes_exposition(
        tmp_path, capsys, monkeypatch):
    from repro.core import FLSession as Session

    def exploding_run(self, rounds):
        raise RuntimeError("mid-round crash")

    monkeypatch.setattr(Session, "run", exploding_run)
    out = tmp_path / "metrics.txt"
    code = main(["metrics", "--output", str(out)] + CLI_SESSION_ARGS)
    assert code == 1
    parse_openmetrics(out.read_text())  # partial but valid
    assert "run failed" in capsys.readouterr().err


# -- sketch-backed histograms at scale -------------------------------------------


def test_histogram_spills_to_sketch_mode_past_the_threshold():
    histogram = Histogram("x", lo=1.0, hi=1e3, growth=10.0, max_exact=50)
    values = [float(v) for v in range(1, 201)]
    for value in values:
        histogram.observe(value)
    assert not histogram.exact
    with pytest.raises(ValueError):
        histogram.values()
    with pytest.raises(ValueError):
        histogram.iter_values()
    # Exact accounting survives the spill; quantiles stay within the
    # sketch's relative-error bound of the exact answer.
    assert histogram.count == 200
    assert histogram.total == sum(values)
    assert histogram.minimum == 1.0 and histogram.maximum == 200.0
    eps = histogram.sketch.relative_error
    for q in (50.0, 95.0, 99.0):
        exact = percentile(values, q)
        assert abs(histogram.percentile(q) - exact) <= exact * eps + 1e-9
    # Bucket counts are sketch-independent: still per-observation exact.
    assert sum(histogram.bucket_counts) == 200


def test_histogram_summary_is_cached_and_copied():
    histogram = Histogram("x")
    histogram.observe(2.0)
    first = histogram.summary()
    first["count"] = -1  # caller mutation must not leak back
    assert histogram.summary()["count"] == 1
    histogram.observe(4.0)  # invalidates the cache
    assert histogram.summary()["count"] == 2
    assert histogram.summary()["p50"] == percentile([2.0, 4.0], 50.0)


def test_histogram_merge_requires_matching_layout():
    a = Histogram("a", lo=1.0, hi=8.0, growth=2.0)
    b = Histogram("b", lo=1.0, hi=16.0, growth=2.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_merge_is_order_independent_and_render_stable():
    """Satellite: the OpenMetrics text of a merged histogram must not
    depend on the order cohort shards were merged in."""
    from repro.obs import render_histogram

    def shard(values):
        histogram = Histogram("net.transfer.duration", unit="seconds",
                              lo=1e-3, hi=10.0, growth=4.0, max_exact=8)
        for value in values:
            histogram.observe(value)
        return histogram

    shard_values = [
        [0.001 * (i + 1) for i in range(20)],
        [0.5, 2.0, 8.0, 40.0],
        [0.02, 0.03],
    ]
    ab = shard(shard_values[0]).merge(
        shard(shard_values[1])).merge(shard(shard_values[2]))
    ba = shard(shard_values[2]).merge(
        shard(shard_values[1])).merge(shard(shard_values[0]))
    assert not ab.exact  # the union spilled: this is the sketch path
    assert ab.bucket_counts == ba.bucket_counts
    assert render_histogram(ab) == render_histogram(ba)
    for q in (50.0, 95.0, 99.0):
        assert ab.percentile(q) == ba.percentile(q)


def test_sketch_backed_histogram_round_trips_through_openmetrics():
    from repro.obs import render_histogram

    histogram = Histogram("net.transfer.bytes", unit="bytes",
                          lo=1.0, hi=1e6, growth=10.0, max_exact=4)
    for value in (0.5, 10.0, 500.0, 1e5, 5e6, 2.0):
        histogram.observe(value)
    assert not histogram.exact
    families = parse_openmetrics(render_histogram(histogram))
    family = families["net_transfer_bytes"]
    assert family.type == "histogram"
    assert family.value("_count") == histogram.count
    assert family.value("_sum") == histogram.total
    assert family.value("_bucket", le="+Inf") == histogram.count
    # Cumulative le-buckets replay the exact bucket_counts.
    cumulative = [
        family.value("_bucket", le=("+Inf" if math.isinf(bound)
                                    else repr(bound) if not float(
                                        bound).is_integer()
                                    else str(int(bound))))
        for bound, _ in histogram.cumulative_buckets()
    ]
    assert cumulative == [c for _, c in histogram.cumulative_buckets()]


# -- TimeSeries retention --------------------------------------------------------


def test_timeseries_retention_decimates_deterministically():
    bounded = TimeSeries("x", max_samples=8)
    unbounded = TimeSeries("x")
    for index in range(1000):
        at = float(index)
        value = math.sin(index / 7.0)
        bounded.record(at, value)
        unbounded.record(at, value)
    assert bounded.count == unbounded.count == 1000
    assert bounded.retained <= 8
    assert bounded.stride > 1
    # Survivors sit on the stride grid, starting at the first record.
    stride = bounded.stride
    assert [at for at, _ in bounded.samples] == [
        float(i) for i in range(0, 1000, stride)][:bounded.retained]
    # Digests come from the accumulators: decimation-invariant.
    assert bounded.digest() == unbounded.digest()
    assert bounded.last == unbounded.last


def test_timeseries_retention_replays_identically():
    def run():
        series = TimeSeries("x", max_samples=16)
        for index in range(5000):
            series.record(float(index) * 0.5, float(index % 13))
        return list(series.samples), series.stride
    assert run() == run()


def test_timeseries_rejects_bad_retention():
    with pytest.raises(ValueError):
        TimeSeries("x", max_samples=1)
    with pytest.raises(ValueError):
        TimeSeries("x", max_samples=7)  # odd strides break the grid


def test_registry_accounts_its_own_cost():
    bus = EventBus()
    registry = MetricsRegistry(bus, series_retention=64)
    publish_synthetic_stream(bus)
    assert registry.events_observed == 7
    first = registry.telemetry_bytes()
    assert first > 0
    assert registry.peak_telemetry_bytes >= first
    series = registry.timeseries("x")
    assert series.max_samples == 64
    series.record(0.0, 1.0)
    assert registry.telemetry_bytes() > first
    peak = registry.peak_telemetry_bytes
    registry.close()
    assert registry.peak_telemetry_bytes >= peak
    # Unwatched events after close are not folded.
    publish_synthetic_stream(bus)
    assert registry.events_observed == 7


# -- the unobserved path allocates no telemetry (satellite regression) -----------


def test_unobserved_cohort_run_allocates_no_telemetry_state(monkeypatch):
    """A fully-unobserved 10^4-population run must never construct a
    histogram, time series or sketch: the zero-subscriber contract
    extends to allocation, not just dispatch."""
    import repro.obs.metrics as metrics_module
    import repro.obs.sketch as sketch_module
    from repro.analysis.scale import ScaleScenario, run_scale_point

    def explode(self, *args, **kwargs):
        raise AssertionError(
            f"{type(self).__name__} allocated during an unobserved run")

    monkeypatch.setattr(metrics_module.Histogram, "__init__", explode)
    monkeypatch.setattr(metrics_module.TimeSeries, "__init__", explode)
    monkeypatch.setattr(sketch_module.QuantileSketch, "__init__", explode)
    point = run_scale_point(10_000, ScaleScenario())
    assert point.cohorts_completed > 0
    assert point.telemetry_peak_bytes == 0
    assert point.events_observed == 0
