"""Churn matrix: the Fig. 1-style protocol under injected faults.

The paper's Algorithm 1 carries explicit dropout machinery (t_train /
t_sync deadlines, takeover after ``takeover_grace``); these tests make
the machinery actually fire: a trainer crash before upload, an
aggregator crash mid-collect forcing a peer takeover, and a 30 s link
outage ridden out by the shared retry policy — each asserting the run
completes, the surviving trainers stay in consensus, and the invariant
monitors report zero violations.  A final test pins the seeded-replay
guarantee: the same ``FaultPlan`` seed yields a byte-identical
``RunManifest``.
"""

import numpy as np

from repro import (
    FaultPlan,
    FaultSpec,
    FLSession,
    InvariantMonitors,
    MetricsRegistry,
    NetworkProfile,
    ProtocolConfig,
    RetryPolicy,
    RunManifest,
)
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.obs.events import TakeoverPerformed


def make_shards(num_trainers=4, seed=0):
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=seed)
    return split_iid(data, num_trainers, seed=seed)


def factory():
    return LogisticRegression(num_features=8, num_classes=2, seed=0)


def finalize_clean(session, monitors):
    """End-of-run invariant check, reclaiming finished rounds first so
    the blockstore-leak monitor only sees truly abandoned storage."""
    session.collect_garbage(keep_iterations=0)
    violations = monitors.finalize()
    assert violations == [], [
        f"{v.invariant}: {v.subject}: {v.detail}" for v in violations
    ]


# -- (a) trainer crash pre-upload --------------------------------------------------


def test_trainer_crash_pre_upload_degrades_then_late_joins():
    shards = make_shards(4)
    config = ProtocolConfig(num_partitions=2, t_train=60.0, t_sync=300.0,
                            local_train_seconds=2.0)
    plan = FaultPlan.of(
        FaultSpec(kind="crash_trainer", at=0.5, target="trainer-1",
                  duration=10.0),
        seed=1,
    )
    session = FLSession(config, factory, shards,
                        network=NetworkProfile(num_ipfs_nodes=4),
                        faults=plan)
    monitors = InvariantMonitors(session.sim.bus)

    first = session.run_iteration()
    # trainer-1 was still training (local_train_seconds=2.0 > 0.5) when
    # the crash hit, so it lost the whole round...
    assert sorted(first.trainers_completed) == [
        "trainer-0", "trainer-2", "trainer-3",
    ]
    assert first.degraded.get("trainer-1") == "crashed (fault injection)"

    # ...but the fault healed at t=10.5, so it late-joins round 2.
    second = session.run_iteration()
    assert sorted(second.trainers_completed) == [
        f"trainer-{i}" for i in range(4)
    ]
    assert "trainer-1" not in second.degraded

    finalize_clean(session, monitors)
    session.consensus_params()


# -- (b) aggregator crash mid-collect ⇒ takeover -----------------------------------


def test_aggregator_crash_mid_collect_forces_takeover_and_converges():
    shards = make_shards(8)
    # local_train_seconds=2.0 keeps gradients from arriving before the
    # crash at t=1.0 hits aggregator-0 mid-collect (it is polling the
    # directory with nothing collected yet).
    config = ProtocolConfig(num_partitions=2, aggregators_per_partition=2,
                            t_train=20.0, t_sync=120.0,
                            takeover_grace=5.0, local_train_seconds=2.0)
    plan = FaultPlan.of(
        FaultSpec(kind="crash_aggregator", at=1.0, target="aggregator-0"),
        seed=2,
    )
    session = FLSession(config, factory, shards,
                        network=NetworkProfile(num_ipfs_nodes=4),
                        faults=plan)
    monitors = InvariantMonitors(session.sim.bus)
    takeovers = []
    session.sim.bus.subscribe(takeovers.append, TakeoverPerformed)

    metrics = session.run_iteration()

    # The peer demonstrably took over the crashed aggregator's trainers.
    assert any(event.peer == "aggregator-0" for event in takeovers)
    assert "aggregator-0" in metrics.takeovers
    assert metrics.degraded.get("aggregator-0") \
        == "crashed (fault injection)"
    # No trainer lost the round: the takeover covered them all.
    assert len(metrics.trainers_completed) == 8

    finalize_clean(session, monitors)

    # Convergence: every trainer holds the full 8-trainer average.
    reference = session.consensus_params()
    assert np.isfinite(reference).all()


# -- (c) link outage ridden out by retries ------------------------------------------


def test_link_outage_recovers_with_retries():
    shards = make_shards(4)
    config = ProtocolConfig(num_partitions=2, t_train=200.0, t_sync=400.0)
    plan = FaultPlan.of(
        FaultSpec(kind="link_down", at=3.0, target="trainer-2",
                  duration=30.0),
        seed=3,
    )
    # Tight per-attempt timeouts + a retry budget whose backoff spans the
    # whole 30 s outage, so trainer-2 degrades-and-recovers instead of
    # wedging on a dead link.
    profile = NetworkProfile(num_ipfs_nodes=4,
                             retry=RetryPolicy(max_attempts=8),
                             directory_request_timeout=5.0,
                             ipfs_request_timeout=10.0)
    session = FLSession(config, factory, shards, network=profile,
                        faults=plan)
    monitors = InvariantMonitors(session.sim.bus)

    first = session.run_iteration()
    assert first.finished_at > first.started_at  # the round terminated
    # trainer-2 either rode the outage out within round 1 or lost it;
    # either way it must not have wedged the session.
    assert ("trainer-2" in first.trainers_completed
            or "trainer-2" in first.degraded)

    # The outage healed at t=33.0, long before round 2: full strength.
    second = session.run_iteration()
    assert sorted(second.trainers_completed) == [
        f"trainer-{i}" for i in range(4)
    ]

    finalize_clean(session, monitors)
    session.consensus_params()


# -- seeded determinism -------------------------------------------------------------


def test_same_fault_plan_seed_gives_byte_identical_manifest():
    def run_once() -> str:
        shards = make_shards(4)
        config = ProtocolConfig(num_partitions=2, t_train=60.0,
                                t_sync=300.0)
        plan = FaultPlan.of(
            FaultSpec(kind="crash_trainer", at=0.5, target="trainer-1",
                      duration=10.0),
            FaultSpec(kind="directory_brownout", at=1.0,
                      processing_delay=1.0, duration=10.0),
            FaultSpec(kind="message_loss", at=0.0, probability=0.1,
                      duration=30.0),
            seed=11,
        )
        session = FLSession(config, factory, shards,
                            network=NetworkProfile(num_ipfs_nodes=4),
                            faults=plan)
        registry = MetricsRegistry(session.sim.bus)
        session.run(rounds=2)
        registry.close()
        manifest = RunManifest.collect(registry, session.fingerprint())
        return manifest.to_json()

    assert run_once() == run_once()
