"""Integration tests for the directory service over the emulated network."""

import numpy as np
import pytest

from repro.core import (
    Address,
    GRADIENT,
    PARTIAL_UPDATE,
    UPDATE,
    PartitionCommitter,
)
from repro.core.directory import DirectoryClient, DirectoryService
from repro.crypto import Commitment
from repro.ipfs import DHT, IPFSClient, IPFSNode
from repro.net import Network, Transport, mbps
from repro.sim import Simulator


PARTITION_LEN = 4


def make_world(verifiable=False, trainer_assignment=None, num_trainers=3):
    sim = Simulator()
    network = Network(sim)
    names = ["directory", "ipfs-0"] + [f"client-{i}" for i in range(4)]
    for name in names:
        network.add_host(name, up_bandwidth=mbps(50))
    transport = Transport(network)
    for name in names:
        transport.endpoint(name)
    dht = DHT(sim, lookup_delay=0.0)
    node = IPFSNode(sim, transport, dht, "ipfs-0")
    committer = PartitionCommitter(PARTITION_LEN)
    directory = DirectoryService(
        sim, transport, dht,
        committers={0: committer, 1: committer},
        trainer_assignment=trainer_assignment or {},
        verifiable=verifiable,
        expected_trainers=num_trainers,
    )
    return sim, transport, dht, node, directory, committer


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


def test_register_and_lookup_gradient():
    sim, transport, dht, node, directory, committer = make_world()
    client = DirectoryClient("client-0", transport)
    cid = node.store_object(b"gradient-data")

    def scenario():
        address = Address("client-0", 0, 0, GRADIENT)
        ack = yield from client.register(address, cid)
        assert ack["accepted"]
        results = yield from client.lookup(0, 0, GRADIENT)
        return results

    results = run(sim, scenario())
    assert len(results) == 1
    assert results[0]["uploader_id"] == "client-0"
    assert results[0]["cid"] == cid


def test_lookup_filters_by_partition_iteration_kind():
    sim, transport, dht, node, directory, committer = make_world()
    client = DirectoryClient("client-0", transport)
    cid = node.store_object(b"data")

    def scenario():
        yield from client.register(Address("c", 0, 0, GRADIENT), cid)
        yield from client.register(Address("c", 1, 0, GRADIENT), cid)
        yield from client.register(Address("c", 0, 1, GRADIENT), cid)
        p0_i0 = yield from client.lookup(0, 0, GRADIENT)
        p1_i0 = yield from client.lookup(1, 0, GRADIENT)
        p0_i1 = yield from client.lookup(0, 1, GRADIENT)
        updates = yield from client.lookup(0, 0, UPDATE)
        return p0_i0, p1_i0, p0_i1, updates

    p0_i0, p1_i0, p0_i1, updates = run(sim, scenario())
    assert len(p0_i0) == len(p1_i0) == len(p0_i1) == 1
    assert updates == []


def test_lookup_filters_by_aggregator():
    assignment = {("t0", 0): "agg-a", ("t1", 0): "agg-b"}
    sim, transport, dht, node, directory, committer = make_world(
        trainer_assignment=assignment
    )
    client = DirectoryClient("client-0", transport)
    cid = node.store_object(b"data")

    def scenario():
        yield from client.register(Address("t0", 0, 0, GRADIENT), cid)
        yield from client.register(Address("t1", 0, 0, GRADIENT), cid)
        mine = yield from client.lookup(0, 0, GRADIENT,
                                        aggregator_id="agg-a")
        theirs = yield from client.lookup(0, 0, GRADIENT,
                                          aggregator_id="agg-b")
        return mine, theirs

    mine, theirs = run(sim, scenario())
    assert [row["uploader_id"] for row in mine] == ["t0"]
    assert [row["uploader_id"] for row in theirs] == ["t1"]


def test_accumulated_commitments_total_and_per_aggregator():
    assignment = {("t0", 0): "agg-a", ("t1", 0): "agg-a", ("t2", 0): "agg-b"}
    sim, transport, dht, node, directory, committer = make_world(
        verifiable=True, trainer_assignment=assignment
    )
    client = DirectoryClient("client-0", transport)
    rng = np.random.default_rng(0)
    blobs, commitments = {}, {}
    for trainer in ("t0", "t1", "t2"):
        blob, commitment = committer.encode_and_commit(
            rng.normal(size=PARTITION_LEN)
        )
        blobs[trainer], commitments[trainer] = blob, commitment
    cid = node.store_object(b"placeholder")

    def scenario():
        for trainer in ("t0", "t1", "t2"):
            yield from client.register(
                Address(trainer, 0, 0, GRADIENT), cid, commitments[trainer]
            )
        total, total_count = yield from client.accumulated(0, 0)
        agg_a, a_count = yield from client.accumulated(
            0, 0, aggregator_id="agg-a"
        )
        return total, total_count, agg_a, a_count

    total, total_count, agg_a, a_count = run(sim, scenario())
    assert total_count == 3
    assert a_count == 2
    expected_total = Commitment.product(
        list(commitments.values()), committer.curve
    )
    assert total == expected_total
    expected_a = commitments["t0"].combine(commitments["t1"])
    assert agg_a == expected_a


def test_update_verification_accepts_honest_aggregate():
    sim, transport, dht, node, directory, committer = make_world(
        verifiable=True
    )
    client = DirectoryClient("client-0", transport)
    ipfs = IPFSClient("client-1", transport, dht)
    rng = np.random.default_rng(1)
    from repro.core import sum_encoded_partitions
    blobs, commitments = [], []
    for trainer in range(3):
        blob, commitment = committer.encode_and_commit(
            rng.normal(size=PARTITION_LEN)
        )
        blobs.append(blob)
        commitments.append(commitment)
    grad_cid = node.store_object(b"g")

    def scenario(sim):
        for index in range(3):
            yield from client.register(
                Address(f"t{index}", 0, 0, GRADIENT), grad_cid,
                commitments[index],
            )
        aggregate = sum_encoded_partitions(blobs)
        update_cid = yield from ipfs.put(aggregate, node="ipfs-0")
        yield from client.register(
            Address("agg", 0, 0, UPDATE), update_cid
        )
        yield sim.timeout(30.0)  # let async verification run
        results = yield from client.lookup(0, 0, UPDATE)
        return results

    results = run(sim, scenario(sim))
    assert len(results) == 1
    assert not directory.rejections


def test_update_verification_rejects_dropped_gradient():
    sim, transport, dht, node, directory, committer = make_world(
        verifiable=True
    )
    client = DirectoryClient("client-0", transport)
    ipfs = IPFSClient("client-1", transport, dht)
    rng = np.random.default_rng(2)
    from repro.core import sum_encoded_partitions
    blobs, commitments = [], []
    for _ in range(3):
        blob, commitment = committer.encode_and_commit(
            rng.normal(size=PARTITION_LEN)
        )
        blobs.append(blob)
        commitments.append(commitment)
    grad_cid = node.store_object(b"g")

    def scenario(sim):
        for index in range(3):
            yield from client.register(
                Address(f"t{index}", 0, 0, GRADIENT), grad_cid,
                commitments[index],
            )
        incomplete = sum_encoded_partitions(blobs[:2])  # dropped one
        update_cid = yield from ipfs.put(incomplete, node="ipfs-0")
        yield from client.register(Address("agg", 0, 0, UPDATE), update_cid)
        yield sim.timeout(30.0)
        results = yield from client.lookup(0, 0, UPDATE)
        return results

    results = run(sim, scenario(sim))
    assert results == []  # rejected updates stay invisible
    assert len(directory.rejections) == 1
    assert "mismatch" in directory.rejections[0].reason


def test_update_first_wins_duplicates_refused():
    sim, transport, dht, node, directory, committer = make_world()
    client = DirectoryClient("client-0", transport)
    cid1 = node.store_object(b"first update")
    cid2 = node.store_object(b"second update")

    def scenario():
        first = yield from client.register(Address("a1", 0, 0, UPDATE), cid1)
        second = yield from client.register(Address("a2", 0, 0, UPDATE), cid2)
        results = yield from client.lookup(0, 0, UPDATE)
        return first, second, results

    first, second, results = run(sim, scenario())
    assert first["accepted"]
    assert not second["accepted"]
    assert len(results) == 1
    assert results[0]["cid"] == cid1


def test_partial_updates_stored_without_verification():
    sim, transport, dht, node, directory, committer = make_world(
        verifiable=True
    )
    client = DirectoryClient("client-0", transport)
    cid = node.store_object(b"partial")

    def scenario():
        ack = yield from client.register(
            Address("agg-a", 0, 0, PARTIAL_UPDATE), cid
        )
        results = yield from client.lookup(0, 0, PARTIAL_UPDATE)
        return ack, results

    ack, results = run(sim, scenario())
    assert ack["accepted"]
    assert len(results) == 1


def test_first_gradient_time_recorded():
    sim, transport, dht, node, directory, committer = make_world()
    client = DirectoryClient("client-0", transport)
    cid = node.store_object(b"g")

    def scenario(sim):
        yield sim.timeout(5.0)
        yield from client.register(Address("t0", 0, 0, GRADIENT), cid)
        yield from client.register(Address("t1", 0, 0, GRADIENT), cid)

    run(sim, scenario(sim))
    assert directory.first_gradient_time[0] >= 5.0
    assert directory.register_count == 2


def test_verifiable_requires_committers():
    sim = Simulator()
    network = Network(sim)
    network.add_host("directory")
    transport = Transport(network)
    dht = DHT(sim)
    with pytest.raises(ValueError):
        DirectoryService(sim, transport, dht, verifiable=True)
