"""Unit and property tests for CIDs, blocks and chunking."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipfs import (
    Block,
    CID,
    chunk_object,
    compute_cid,
    is_manifest,
    parse_manifest,
    reassemble,
    verify_cid,
)


# -- CID ----------------------------------------------------------------------


def test_cid_is_sha256():
    data = b"hello ipfs"
    cid = compute_cid(data)
    assert cid.digest == hashlib.sha256(data).digest()


def test_cid_deterministic():
    assert compute_cid(b"x") == compute_cid(b"x")
    assert compute_cid(b"x") != compute_cid(b"y")


def test_cid_encode_decode_roundtrip():
    cid = compute_cid(b"some data")
    encoded = cid.encode()
    assert encoded.startswith("b")
    assert CID.decode(encoded) == cid


def test_cid_encode_is_lowercase_base32():
    encoded = compute_cid(b"data").encode()
    assert encoded == encoded.lower()


def test_cid_decode_rejects_garbage():
    with pytest.raises(ValueError):
        CID.decode("not-a-cid")
    with pytest.raises(ValueError):
        CID.decode("xabc")


def test_cid_requires_32_byte_digest():
    with pytest.raises(ValueError):
        CID(digest=b"short")


def test_compute_cid_requires_bytes():
    with pytest.raises(TypeError):
        compute_cid("a string")


def test_verify_cid():
    data = b"gradient bytes"
    cid = compute_cid(data)
    assert verify_cid(cid, data)
    assert not verify_cid(cid, data + b"!")


def test_cid_hashable():
    table = {compute_cid(b"a"): 1, compute_cid(b"b"): 2}
    assert table[compute_cid(b"a")] == 1


@given(st.binary(max_size=512))
def test_cid_roundtrip_property(data):
    cid = compute_cid(data)
    assert CID.decode(cid.encode()) == cid
    assert verify_cid(cid, data)


# -- Block / chunking ------------------------------------------------------------


def test_block_cid_matches_data():
    block = Block(b"payload")
    assert block.cid == compute_cid(b"payload")
    assert block.size == 7


def test_chunk_small_object_single_leaf():
    root, leaves = chunk_object(b"tiny", chunk_size=1024)
    assert len(leaves) == 1
    assert leaves[0].data == b"tiny"
    assert is_manifest(root)


def test_chunk_object_splits_on_boundary():
    data = bytes(range(10)) * 100  # 1000 bytes
    root, leaves = chunk_object(data, chunk_size=256)
    assert len(leaves) == 4  # 256+256+256+232
    assert sum(leaf.size for leaf in leaves) == 1000


def test_chunk_empty_object():
    root, leaves = chunk_object(b"", chunk_size=256)
    assert len(leaves) == 1
    assert reassemble(root, leaves) == b""


def test_chunk_invalid_size():
    with pytest.raises(ValueError):
        chunk_object(b"data", chunk_size=0)


def test_manifest_lists_leaves_in_order():
    data = b"a" * 300
    root, leaves = chunk_object(data, chunk_size=256)
    assert parse_manifest(root) == [leaf.cid for leaf in leaves]


def test_parse_manifest_rejects_raw_block():
    with pytest.raises(ValueError):
        parse_manifest(Block(b"\x00\x01binary"))
    with pytest.raises(ValueError):
        parse_manifest(Block(b'{"not": "a manifest"}'))


def test_reassemble_roundtrip():
    data = bytes(i % 251 for i in range(5000))
    root, leaves = chunk_object(data, chunk_size=512)
    assert reassemble(root, leaves) == data


def test_reassemble_out_of_order_leaves():
    data = b"0123456789" * 100
    root, leaves = chunk_object(data, chunk_size=128)
    assert reassemble(root, list(reversed(leaves))) == data


def test_reassemble_missing_leaf_raises():
    data = b"0123456789" * 100
    root, leaves = chunk_object(data, chunk_size=128)
    with pytest.raises(ValueError, match="missing"):
        reassemble(root, leaves[:-1])


def test_manifest_cid_changes_with_data():
    root1, _ = chunk_object(b"data-one", chunk_size=4)
    root2, _ = chunk_object(b"data-two", chunk_size=4)
    assert root1.cid != root2.cid


@settings(max_examples=50)
@given(st.binary(max_size=4096), st.integers(min_value=1, max_value=1024))
def test_chunk_reassemble_property(data, chunk_size):
    root, leaves = chunk_object(data, chunk_size=chunk_size)
    assert reassemble(root, leaves) == data
    expected = max(1, -(-len(data) // chunk_size))
    assert len(leaves) == expected
