"""Tests for the online invariant monitors (repro.obs.monitors)."""

import pytest

from repro.core import FLSession, ProtocolConfig
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.obs import EventBus, InvariantMonitors, InvariantViolated
from repro.obs.events import (
    BlockEvicted,
    BlockFetched,
    BlockStored,
    BytesReceived,
    GradientRegistered,
    GradientsAggregated,
    IterationStarted,
    MergeServed,
    PartialUpdateRegistered,
    SnapshotSealed,
    SyncPhaseEnded,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
)


def make_session(**overrides):
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    kwargs = dict(num_partitions=1, t_train=400.0, t_sync=800.0,
                  update_mode="gradient", poll_interval=0.25)
    kwargs.update(overrides)
    config = ProtocolConfig(**kwargs)
    return FLSession(
        config,
        lambda: LogisticRegression(num_features=8, num_classes=2, seed=0),
        shards, num_ipfs_nodes=4, bandwidth_mbps=10.0,
    )


def invariants(monitors):
    return {violation.invariant for violation in monitors.violations}


# -- honest end-to-end runs are clean --------------------------------------------


def test_honest_run_is_clean():
    session = make_session(verifiable=True)
    monitors = InvariantMonitors(session.sim.bus)
    session.run(rounds=2)
    assert monitors.finalize() == []
    assert monitors.clean


def test_honest_merge_and_download_run_is_clean():
    session = make_session(merge_and_download=True,
                           providers_per_aggregator=2)
    monitors = InvariantMonitors(session.sim.bus)
    session.run(rounds=2)
    assert monitors.finalize() == []


def test_finalize_is_idempotent_and_detaches():
    session = make_session()
    monitors = InvariantMonitors(session.sim.bus)
    session.run(rounds=1)
    first = monitors.finalize()
    assert monitors.finalize() is first
    # Detached: later events don't reach the monitors.
    session.sim.bus.publish(UploadCompleted(
        at=0.0, iteration=99, trainer="ghost", delay=0.0))
    assert monitors.violations == first


# -- synthetic violations on a bare bus ------------------------------------------


def test_clock_regression_is_flagged():
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=5.0, iteration=0))
    bus.publish(IterationStarted(at=1.0, iteration=1))
    assert "clock-monotonic" in invariants(monitors)


def test_iteration_numbers_must_strictly_increase():
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(IterationStarted(at=1.0, iteration=0))
    assert "iteration-monotonic" in invariants(monitors)


def test_actor_cannot_report_for_an_older_iteration():
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(TrainerCompleted(at=0.0, iteration=3, trainer="t0"))
    bus.publish(GradientRegistered(at=1.0, iteration=1, uploader="t0",
                                   partition_id=0))
    assert "iteration-monotonic" in invariants(monitors)


@pytest.mark.parametrize("event", [
    UploadCompleted(at=1.0, iteration=0, trainer="t0", delay=0.5),
    UpdateRegistered(at=1.0, iteration=0, aggregator="a0",
                     partition_id=0),
    SyncPhaseEnded(at=1.0, iteration=0, aggregator="a0", duration=0.1),
    PartialUpdateRegistered(at=1.0, iteration=0, aggregator="a0",
                            partition_id=0),
    TrainerCompleted(at=1.0, iteration=0, trainer="t0"),
])
def test_out_of_order_protocol_step_is_flagged(event):
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(event)  # each lacks its causal predecessor
    assert "protocol-ordering" in invariants(monitors)


def test_ordered_protocol_steps_are_clean():
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(GradientRegistered(at=1.0, iteration=0, uploader="t0",
                                   partition_id=0))
    bus.publish(UploadCompleted(at=2.0, iteration=0, trainer="t0",
                                delay=0.5))
    bus.publish(GradientsAggregated(at=3.0, iteration=0,
                                    aggregator="a0", partition_id=0))
    bus.publish(UpdateRegistered(at=4.0, iteration=0, aggregator="a0",
                                 partition_id=0))
    bus.publish(TrainerCompleted(at=5.0, iteration=0, trainer="t0"))
    assert monitors.violations == []


def test_byte_conservation_mismatch_is_flagged():
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(BlockFetched(at=1.0, client="a0", node="n0",
                             cid="c1", size=100))
    bus.publish(BytesReceived(at=2.0, iteration=0, participant="a0",
                              amount=250.0))
    violations = [v for v in monitors.violations
                  if v.invariant == "byte-conservation"]
    assert len(violations) == 1
    assert violations[0].subject == "a0"


def test_byte_conservation_exact_report_is_clean():
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(BlockFetched(at=1.0, client="a0", node="n0",
                             cid="c1", size=100))
    bus.publish(BlockFetched(at=1.5, client="a0", node="n1",
                             cid="c2", size=150))
    bus.publish(BytesReceived(at=2.0, iteration=0, participant="a0",
                              amount=250.0))
    assert monitors.violations == []


def test_violations_republish_on_the_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, InvariantViolated)
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(IterationStarted(at=1.0, iteration=0))
    assert len(monitors.violations) == 1
    assert seen == monitors.violations


def test_peer_violations_are_not_rechecked():
    """A second monitor on the same bus must not recurse on the first
    monitor's InvariantViolated output."""
    bus = EventBus()
    first = InvariantMonitors(bus)
    second = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(IterationStarted(at=1.0, iteration=0))
    assert len(first.violations) == 1
    assert len(second.violations) == 1


# -- blockstore leak detection ---------------------------------------------------


def test_unconsumed_block_is_a_leak():
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(BlockStored(at=0.0, node="n0", cid="orphan", size=64))
    violations = monitors.finalize()
    assert [v.invariant for v in violations] == ["blockstore-leak"]
    assert "orphan" in violations[0].detail


@pytest.mark.parametrize("consume", [
    lambda bus: bus.publish(BlockFetched(
        at=1.0, client="t0", node="n0", cid="cid-x", size=64)),
    lambda bus: bus.publish(MergeServed(
        at=1.0, node="n0", cids=("cid-x",), size=64)),
    lambda bus: bus.publish(BlockEvicted(
        at=1.0, node="n0", cid="cid-x", size=64)),
    lambda bus: bus.publish(SnapshotSealed(
        at=1.0, iteration=0, partition_id=0, node="n0", cid="cid-x")),
])
def test_consumed_blocks_are_not_leaks(consume):
    bus = EventBus()
    monitors = InvariantMonitors(bus)
    bus.publish(BlockStored(at=0.0, node="n0", cid="cid-x", size=64))
    consume(bus)
    assert monitors.finalize() == []


def test_session_with_gc_stays_leak_free():
    """After collect_garbage, evicted never-fetched blocks count as
    consumed, so a full run + GC audits clean."""
    session = make_session()
    monitors = InvariantMonitors(session.sim.bus)
    session.run(rounds=2)
    session.collect_garbage(keep_iterations=1)
    assert monitors.finalize() == []
