"""Tests for the host-cost profiler (repro.obs.profiling).

Pins the module's three contracts: exclusive-time accounting whose
subsystem shares sum to ~100%, strictly zero hooks when disabled, and
byte-identical runs with profiling on or off.
"""

import json

import numpy as np
import pytest

from repro.core import FLSession, ProtocolConfig
from repro.ml import Dataset, SyntheticModel
from repro.net import NetworkProfile
from repro.obs import (
    EventBus,
    HostProfile,
    HostProfiler,
    MetricsRegistry,
    PerfettoExporter,
    RunManifest,
    SYSTEM_WALL_CLOCK,
    TelemetryCollector,
)
from repro.obs.events import IterationStarted
from repro.obs.profiling import (
    FakeWallClock,
    ScopeStat,
    WallClock,
    _role_from_name,
)
from repro.sim import Simulator


def _small_session(seed=3, params=500, trainers=4, verifiable=True):
    config = ProtocolConfig(
        num_partitions=2, t_train=600.0, t_sync=1200.0,
        update_mode="gradient", poll_interval=0.25,
        verifiable=verifiable, seed=seed,
    )
    datasets = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(trainers)
    ]
    return FLSession(
        config, lambda: SyntheticModel(params), datasets,
        network=NetworkProfile(num_ipfs_nodes=4, bandwidth_mbps=10.0),
    )


# -- wall clocks -----------------------------------------------------------------


def test_system_wall_clock_is_monotonic():
    first = SYSTEM_WALL_CLOCK.nanoseconds()
    second = SYSTEM_WALL_CLOCK.nanoseconds()
    assert second >= first
    assert isinstance(SYSTEM_WALL_CLOCK.seconds(), float)
    assert isinstance(SYSTEM_WALL_CLOCK, WallClock)


def test_fake_wall_clock_ticks_per_read_and_advances():
    clock = FakeWallClock(start=1.0, tick=0.5)
    assert clock.seconds() == 1.0
    assert clock.seconds() == 1.5
    clock.advance(10.0)
    assert clock.seconds() == 12.0
    assert clock.reads == 3
    with pytest.raises(ValueError):
        clock.advance(-1.0)


# -- role classification ---------------------------------------------------------


@pytest.mark.parametrize("name,role", [
    ("trainer-3:up:p1", "trainer"),
    ("trainer-12", "trainer"),
    ("aggregator-0:merge:p0", "aggregator"),
    ("directory:dir.lookup", "directory"),
    ("cohort-12:i0", "cohort"),
    ("round:2", "round"),
    ("msg:dir.lookup:a->b", "msg"),
    ("xfer:a->b", "xfer"),
    ("ipfs-node:n3", "ipfs-node"),
    ("kad:publish:n1", "kad"),
    ("central:t0", "central"),
])
def test_role_from_name(name, role):
    assert _role_from_name(name) == role


# -- exclusive-time accounting ---------------------------------------------------


def test_nested_scopes_account_exclusively():
    # tick=1ms: each begin/end reads the clock once, so durations are
    # exact multiples of the tick and the partition identity is exact.
    clock = FakeWallClock(tick=1e-3)
    profiler = HostProfiler(clock=clock)
    outer = profiler.begin("crypto", "commit", "trainer")
    inner = profiler.begin("crypto", "multiexp", "trainer")
    profiler.end(inner)   # elapsed 1ms, all self
    profiler.end(outer)   # elapsed 3ms, self 2ms
    profile = profiler.profile()
    by_label = {scope.label: scope for scope in profile.scopes}
    assert by_label["crypto.multiexp.trainer"].self_seconds \
        == pytest.approx(1e-3)
    assert by_label["crypto.multiexp.trainer"].total_seconds \
        == pytest.approx(1e-3)
    assert by_label["crypto.commit.trainer"].self_seconds \
        == pytest.approx(2e-3)
    assert by_label["crypto.commit.trainer"].total_seconds \
        == pytest.approx(3e-3)
    # Self times partition the attributed window.
    assert profile.attributed_seconds == pytest.approx(3e-3)


def test_scope_context_manager_and_call_counts():
    clock = FakeWallClock(tick=1e-3)
    profiler = HostProfiler(clock=clock)
    for _ in range(3):
        with profiler.scope("net", "recompute"):
            pass
    profile = profiler.profile()
    (scope,) = profile.scopes
    assert scope.calls == 3
    assert scope.label == "net.recompute"
    assert scope.self_seconds == pytest.approx(3e-3)


def test_current_role_follows_the_dispatch_stack():
    profiler = HostProfiler(clock=FakeWallClock(tick=1e-6))
    assert profiler.current_role() == ""

    class FakeEvent:
        def __init__(self, name):
            self.callbacks = []
            self.name = name
            self._generator = iter(())

    frame = profiler.dispatch_begin(FakeEvent("trainer-1:up:p0"))
    assert profiler.current_role() == "trainer"
    profiler.dispatch_end(frame)
    assert profiler.current_role() == ""
    assert profiler.dispatches == 1


# -- install / uninstall ---------------------------------------------------------


def test_disabled_by_default_and_hooks_removed_on_uninstall():
    sim = Simulator()
    assert sim.profiler is None
    assert sim.bus.profiler is None
    profiler = HostProfiler()
    profiler.install(sim)
    assert sim.profiler is profiler
    assert sim.bus.profiler is profiler
    assert profiler.installed
    profiler.uninstall()
    assert sim.profiler is None
    assert sim.bus.profiler is None
    assert not profiler.installed
    profiler.uninstall()  # idempotent


def test_double_install_raises():
    sim = Simulator()
    profiler = HostProfiler().install(sim)
    with pytest.raises(RuntimeError):
        profiler.install(Simulator())
    with pytest.raises(RuntimeError):
        HostProfiler().install(sim)
    profiler.uninstall()
    HostProfiler().install(sim).uninstall()


def test_attach_wires_and_unwires_the_session_committers():
    session = _small_session()
    committers = {id(c) for c in session.committers.values()}
    assert committers  # verifiable session has shared committers
    profiler = HostProfiler()
    profiler.attach(session)
    for committer in session.committers.values():
        assert committer.profiler is profiler
    profiler.uninstall()
    for committer in session.committers.values():
        assert committer.profiler is None


def test_sample_interval_must_be_positive():
    with pytest.raises(ValueError):
        HostProfiler(sample_interval=0.0)


# -- end-to-end attribution on a real session ------------------------------------


def test_session_profile_covers_the_subsystems_and_shares_sum_to_one():
    session = _small_session()
    registry = MetricsRegistry(session.sim.bus)
    profiler = HostProfiler()
    profiler.attach(session)
    session.run(rounds=1)
    profiler.uninstall()
    registry.close()
    profile = profiler.profile(fingerprint=session.fingerprint())

    shares = profile.shares()
    assert set(shares) >= {"kernel", "crypto", "net", "directory", "ml",
                           "obs"}
    assert sum(shares.values()) == pytest.approx(1.0)
    assert profile.dispatches > 0
    assert profile.wall_seconds > 0
    assert profile.sim_seconds == pytest.approx(session.sim.now)
    assert profile.sim_per_wall == pytest.approx(
        profile.sim_seconds / profile.wall_seconds)
    # Attribution never exceeds the window it measured.
    assert profile.attributed_seconds <= profile.wall_seconds

    labels = {scope.label for scope in profile.scopes}
    assert "net.recompute" in labels
    assert "ml.train.trainer" in labels
    assert "crypto.commit.trainer" in labels
    assert "crypto.multiexp.trainer" in labels
    # Directory-side verification attributes to the directory role.
    assert "crypto.verify.directory" in labels
    assert any(label.startswith("directory.serve.") for label in labels)
    # Bus subscriber cost is attributed per handler owner class; the
    # session's own TelemetryCollector and the attached MetricsRegistry
    # both show up.
    subscriber_actors = {scope.actor for scope in profile.scopes
                         if scope.subsystem == "obs"}
    assert "TelemetryCollector" in subscriber_actors
    assert "MetricsRegistry" in subscriber_actors
    # Kernel dispatch frames carry actor roles.
    kernel_actors = {scope.actor for scope in profile.scopes
                     if scope.subsystem == "kernel"}
    assert "trainer" in kernel_actors
    assert "directory" in kernel_actors

    assert profile.fingerprint["digest"] \
        == session.fingerprint()["digest"]


def test_profiling_does_not_perturb_the_run():
    """Fingerprint, manifest and model bytes are identical with the
    profiler on or off (the sim-clock-only contract).

    The trainer's wall clock is faked on both sides: the
    ``CommitmentComputed.seconds`` histogram measures real wall time
    and differs between *any* two runs otherwise.
    """
    def run(profiled):
        session = _small_session()
        for trainer in session.trainers:
            trainer.wall_clock = FakeWallClock(tick=1e-4)
        registry = MetricsRegistry(session.sim.bus)
        profiler = HostProfiler().attach(session) if profiled else None
        session.run(rounds=2)
        if profiler is not None:
            profiler.uninstall()
        registry.close()
        manifest = RunManifest.collect(registry, session.fingerprint())
        return (manifest.to_json(), session.model_of(0).get_params(),
                session.sim.now)

    bare_json, bare_params, bare_now = run(False)
    prof_json, prof_params, prof_now = run(True)
    assert prof_json == bare_json
    assert np.array_equal(prof_params, bare_params)
    assert prof_now == bare_now


def test_throughput_samples_accumulate_monotonically():
    session = _small_session(verifiable=False)
    profiler = HostProfiler(sample_interval=1e-9)  # sample every dispatch
    profiler.attach(session)
    session.run(rounds=1)
    profiler.uninstall()
    profile = profiler.profile()
    assert len(profile.samples) >= 2
    walls = [sample["wall_seconds"] for sample in profile.samples]
    sims = [sample["sim_seconds"] for sample in profile.samples]
    dispatches = [sample["dispatches"] for sample in profile.samples]
    assert walls == sorted(walls)
    assert sims == sorted(sims)
    assert dispatches == sorted(dispatches)
    # The final (uninstall) sample covers the whole window.
    assert walls[-1] == pytest.approx(profile.wall_seconds)
    assert sims[-1] == pytest.approx(profile.sim_seconds)
    assert dispatches[-1] == profile.dispatches


# -- bus subscriber hook ----------------------------------------------------------


def test_publish_profiled_preserves_delivery_and_attributes_handlers():
    bus = EventBus()
    collector = TelemetryCollector(bus)
    seen = []
    bus.subscribe(seen.append, IterationStarted)
    profiler = HostProfiler(clock=FakeWallClock(tick=1e-3))
    bus.profiler = profiler
    event = IterationStarted(at=0.0, iteration=0)
    bus.publish(event)
    bus.profiler = None
    assert seen == [event]
    actors = {scope.actor for scope in profiler.profile().scopes}
    assert "TelemetryCollector" in actors
    collector.close()


# -- serialization / report -------------------------------------------------------


def test_profile_json_round_trip(tmp_path):
    scopes = (
        ScopeStat("kernel", "dispatch", "trainer", 10, 0.5, 0.9),
        ScopeStat("net", "recompute", "", 4, 0.25, 0.25),
    )
    profile = HostProfile(
        fingerprint={"digest": "abc"}, wall_seconds=1.0, sim_seconds=50.0,
        dispatches=10, scopes=scopes,
        samples=({"wall_seconds": 1.0, "sim_seconds": 50.0,
                  "dispatches": 10.0},),
    )
    path = tmp_path / "profile.json"
    profile.write(path)
    loaded = HostProfile.load(path)
    assert loaded == profile
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert data["sim_per_wall"] == pytest.approx(50.0)
    assert data["shares"]["kernel"] == pytest.approx(0.5 / 0.75)
    with pytest.raises(ValueError):
        HostProfile.from_dict({"version": 99})


def test_hotspots_are_ordered_and_format_reports_the_gauge():
    profile = HostProfile(
        wall_seconds=2.0, sim_seconds=100.0, dispatches=7,
        scopes=(
            ScopeStat("kernel", "dispatch", "trainer", 5, 1.0, 1.0),
            ScopeStat("crypto", "commit", "trainer", 2, 0.5, 0.5),
            ScopeStat("net", "recompute", "", 1, 0.1, 0.1),
        ),
    )
    assert [scope.label for scope in profile.hotspots(2)] \
        == ["kernel.dispatch.trainer", "crypto.commit.trainer"]
    report = profile.format(top=2)
    assert "50.0 sim-s/wall-s" in report
    assert "kernel.dispatch.trainer" in report
    assert "net.recompute" not in report  # beyond top
    assert "shares:" in report


def test_perfetto_add_profile_emits_slices_and_counters():
    profile = HostProfile(
        wall_seconds=1.0, sim_seconds=10.0, dispatches=4,
        scopes=(
            ScopeStat("kernel", "dispatch", "trainer", 2, 0.4, 0.4),
            ScopeStat("kernel", "dispatch", "msg", 2, 0.2, 0.2),
            ScopeStat("net", "recompute", "", 1, 0.1, 0.1),
        ),
        samples=(
            {"wall_seconds": 0.5, "sim_seconds": 4.0, "dispatches": 2.0},
            {"wall_seconds": 1.0, "sim_seconds": 10.0, "dispatches": 4.0},
        ),
    )
    exporter = PerfettoExporter()
    exporter.add_profile(profile, label="smoke")
    trace = exporter.to_dict()
    events = trace["traceEvents"]
    slices = [e for e in events if e.get("ph") == "X" and e["pid"] == 2]
    # One slice per scope, grouped on one track per subsystem.
    assert len(slices) == 3
    assert len({e["tid"] for e in slices}) == 2
    kernel = [e for e in slices
              if e["name"].startswith("kernel.dispatch")]
    # Slices on a track are laid end to end, ordered by self time.
    assert kernel[0]["ts"] == 0.0
    assert kernel[1]["ts"] == pytest.approx(kernel[0]["dur"])
    counters = [e for e in events if e.get("ph") == "C"]
    assert {e["name"] for e in counters} \
        == {"smoke:sim_s_per_wall_s", "smoke:dispatches_per_s"}
    throughput = sorted((e for e in counters
                         if e["name"] == "smoke:sim_s_per_wall_s"),
                        key=lambda e: e["ts"])
    # First window: 4 sim-s over 0.5 wall-s; second: 6 over 0.5.
    assert throughput[0]["args"]["value"] == pytest.approx(8.0)
    assert throughput[1]["args"]["value"] == pytest.approx(12.0)
    names = {e["args"]["name"] for e in events if e.get("ph") == "M"
             and e["name"] == "process_name"}
    assert "host profile" in names
    json.dumps(trace)  # serializable
