"""Tests for the PartitionCommitter and commitment cost model."""

import numpy as np
import pytest

from repro.core import (
    CommitmentCostModel,
    PartitionCommitter,
    decode_partition,
    sum_encoded_partitions,
)
from repro.crypto import Commitment, SECP256K1


@pytest.fixture(scope="module")
def committer():
    return PartitionCommitter(partition_len=6, curve="secp256k1",
                              fractional_bits=16)


def test_encode_and_commit_roundtrip(committer):
    values = np.array([0.5, -0.25, 1.0, 0.0, 2.0, -1.5])
    blob, commitment = committer.encode_and_commit(values)
    decoded, counter = decode_partition(blob)
    np.testing.assert_array_equal(decoded, values)  # dyadic: exact
    assert counter == 1.0
    assert committer.verify_blob(blob, commitment)


def test_quantization_applied_before_commit(committer):
    """Non-dyadic values are quantized so blob and commitment agree."""
    values = np.array([0.1, 0.2, 0.3, -0.1, -0.2, -0.3])
    blob, commitment = committer.encode_and_commit(values)
    decoded, _ = decode_partition(blob)
    assert np.max(np.abs(decoded - values)) <= 2.0 ** -16
    assert committer.verify_blob(blob, commitment)


def test_verify_rejects_tampered_blob(committer):
    values = np.linspace(-1, 1, 6)
    blob, commitment = committer.encode_and_commit(values)
    decoded, counter = decode_partition(blob)
    decoded[0] += 2.0 ** -16  # one quantization step: must be caught
    from repro.core import encode_partition
    assert not committer.verify_blob(
        encode_partition(decoded, counter), commitment
    )


def test_subquantum_tamper_is_equivalent(committer):
    """Perturbations below the quantization step commit identically —
    the commitment binds the quantized value, which is what is uploaded."""
    values = np.linspace(-1, 1, 6)
    blob, commitment = committer.encode_and_commit(values)
    decoded, counter = decode_partition(blob)
    decoded[0] += 2.0 ** -40  # far below one step of 2^-16
    from repro.core import encode_partition
    assert committer.verify_blob(
        encode_partition(decoded, counter), commitment
    )


def test_aggregate_verifies_against_product(committer):
    """The protocol's central equation: sum of blobs opens the product of
    commitments — including the averaging counters."""
    rng = np.random.default_rng(5)
    blobs, commitments = [], []
    for _ in range(4):
        blob, commitment = committer.encode_and_commit(
            rng.normal(size=6)
        )
        blobs.append(blob)
        commitments.append(commitment)
    aggregate = sum_encoded_partitions(blobs)
    product = Commitment.product(commitments, committer.curve)
    assert committer.verify_blob(aggregate, product)
    _, counter = decode_partition(aggregate)
    assert counter == 4.0


def test_dropped_gradient_detected(committer):
    """Omitting one trainer's blob breaks the product check."""
    rng = np.random.default_rng(6)
    blobs, commitments = [], []
    for _ in range(3):
        blob, commitment = committer.encode_and_commit(rng.normal(size=6))
        blobs.append(blob)
        commitments.append(commitment)
    product = Commitment.product(commitments, committer.curve)
    partial = sum_encoded_partitions(blobs[:2])  # one dropped
    assert not committer.verify_blob(partial, product)


def test_altered_aggregate_detected(committer):
    rng = np.random.default_rng(7)
    blobs, commitments = [], []
    for _ in range(3):
        blob, commitment = committer.encode_and_commit(rng.normal(size=6))
        blobs.append(blob)
        commitments.append(commitment)
    product = Commitment.product(commitments, committer.curve)
    aggregate = sum_encoded_partitions(blobs)
    values, counter = decode_partition(aggregate)
    altered = values.copy()
    altered[2] += 2.0 ** -16  # smallest representable perturbation
    from repro.core import encode_partition
    assert not committer.verify_blob(
        encode_partition(altered, counter), product
    )


def test_commitment_of_blob_deterministic(committer):
    blob, commitment = committer.encode_and_commit(np.ones(6))
    assert committer.commitment_of_blob(blob) == commitment


def test_committer_length_validation(committer):
    with pytest.raises(ValueError):
        committer.encode_and_commit(np.zeros(5))
    with pytest.raises(ValueError):
        PartitionCommitter(partition_len=0)


def test_committer_both_curves():
    for curve in ("secp256k1", "secp256r1"):
        committer = PartitionCommitter(partition_len=3, curve=curve)
        blob, commitment = committer.encode_and_commit(
            np.array([1.0, -1.0, 0.5])
        )
        assert committer.verify_blob(blob, commitment)


def test_counter_is_committed(committer):
    """The averaging counter participates in the commitment: changing it
    must be detected (otherwise an aggregator could skew the average)."""
    blob, commitment = committer.encode_and_commit(np.ones(6))
    values, _ = decode_partition(blob)
    from repro.core import encode_partition
    forged = encode_partition(values, counter=2.0)
    assert not committer.verify_blob(forged, commitment)


# -- cost model ----------------------------------------------------------------


def test_cost_model_disabled():
    model = CommitmentCostModel(None)
    assert model.commit_delay(10**6) == 0.0
    assert model.verify_delay(10**6) == 0.0


def test_cost_model_linear():
    model = CommitmentCostModel(seconds_per_param=2e-3)
    assert model.commit_delay(1000) == pytest.approx(2.0)
    assert model.verify_delay(500) == pytest.approx(1.0)


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CommitmentCostModel(seconds_per_param=-1.0)
