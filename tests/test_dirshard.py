"""Tests for the sharded directory service (repro.core.dirshard).

Covers the DirectoryProfile surface, key placement, the shards=1
identity guarantee (fingerprint- and counter-identical to the classic
single server), load distribution and the ``dir.shard.*`` counters,
the shard-order merge of the commitment accumulators, failover across
replicas, shard-targeted brownouts, the deprecation shim, and the
registrations/sec trajectory the sharding exists to improve.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DirshardScenario, run_dirshard_point
from repro.core import (
    CohortPlan,
    Directory,
    DirectoryClient,
    DirectoryProfile,
    FLSession,
    ProtocolConfig,
    ShardMap,
    ShardRouter,
    ShardedDirectory,
)
from repro.crypto import Commitment, PedersenParams, SECP256K1
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.net import NetworkProfile
from repro.obs import CountersRegistry, FlightRecorder, InvariantMonitors

NUM_TRAINERS = 4


def make_config(**overrides):
    kwargs = dict(num_partitions=2, t_train=400.0, t_sync=800.0,
                  update_mode="gradient", poll_interval=0.25)
    kwargs.update(overrides)
    return ProtocolConfig(**kwargs)


def make_shards():
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    return split_iid(data, NUM_TRAINERS, seed=0)


def model_factory():
    return LogisticRegression(num_features=8, num_classes=2, seed=0)


def make_session(directory=None, faults=None, cohort=None, **overrides):
    return FLSession(
        make_config(**overrides), model_factory, make_shards(),
        network=NetworkProfile(num_ipfs_nodes=4, bandwidth_mbps=10.0),
        directory=directory, faults=faults, cohort=cohort,
    )


# -- DirectoryProfile validation --------------------------------------------------


def test_profile_defaults_are_single_server():
    profile = DirectoryProfile()
    assert profile.shards == 1
    assert profile.replication == 1
    assert profile.placement == "consistent-hash"


@pytest.mark.parametrize("kwargs", [
    dict(shards=0),
    dict(replication=0),
    dict(shards=2, replication=3),
    dict(placement="round-robin"),
    dict(processing_delay=-1.0),
    dict(bandwidth_mbps=0.0),
])
def test_profile_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        DirectoryProfile(**kwargs)


# -- ShardMap placement -----------------------------------------------------------


def test_shard_map_owner_count_and_determinism():
    names = [f"directory-shard-{i}" for i in range(4)]
    for placement in ("consistent-hash", "modulo"):
        shard_map = ShardMap(names, replication=2, placement=placement)
        for partition_id in range(8):
            owners = shard_map.owners(partition_id, 0)
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert set(owners) <= set(names)
            assert owners == shard_map.owners(partition_id, 0)
            assert shard_map.primary(partition_id, 0) == owners[0]


def test_modulo_placement_spreads_primaries_evenly():
    names = [f"directory-shard-{i}" for i in range(4)]
    shard_map = ShardMap(names, placement="modulo")
    primaries = {shard_map.primary(p, 0) for p in range(4)}
    assert primaries == set(names)


def test_replication_is_capped_at_shard_count():
    shard_map = ShardMap(["s0", "s1"], replication=5)
    assert shard_map.replication == 2
    assert len(shard_map.owners(0, 0)) == 2


# -- shards=1 is the classic single server, byte for byte -------------------------


def test_shards_one_is_identical_to_unsharded():
    def run_once(directory):
        session = make_session(directory=directory)
        counters = CountersRegistry(session.sim.bus)
        session.run(rounds=1)
        return session.fingerprint(), counters.snapshot(), session.sim.now

    base_fp, base_counters, base_now = run_once(None)
    one_fp, one_counters, one_now = run_once(DirectoryProfile(shards=1))
    assert one_fp == base_fp
    assert one_counters == base_counters
    assert one_now == base_now


# -- sharded deployments ----------------------------------------------------------


def test_sharded_session_distributes_load_and_counts():
    session = make_session(directory=DirectoryProfile(shards=2,
                                                      placement="modulo"))
    counters = CountersRegistry(session.sim.bus)
    session.run(rounds=1)

    directory = session.directory
    assert isinstance(directory, ShardedDirectory)
    assert directory.shard_names == ["directory-shard-0",
                                    "directory-shard-1"]
    # Both partitions registered gradients, so with modulo placement
    # both shards served registrations.
    for name in directory.shard_names:
        assert directory.shard(name).register_count > 0
    assert directory.register_count == sum(
        directory.shard(name).register_count
        for name in directory.shard_names
    )
    snapshot = counters.snapshot()
    assert snapshot["dir.shard.requests"] == snapshot["directory.requests"]
    per_shard = sum(
        snapshot[f"dir.shard.{name}.requests"]
        for name in directory.shard_names
    )
    assert per_shard == snapshot["dir.shard.requests"]


def test_trainers_and_aggregators_route_through_shard_router():
    session = make_session(directory=DirectoryProfile(shards=2))
    for participant in list(session.trainers) + list(session.aggregators):
        assert isinstance(participant.directory, ShardRouter)
        assert isinstance(participant.directory, Directory)


def test_unsharded_participants_keep_the_classic_client():
    session = make_session()
    for participant in list(session.trainers) + list(session.aggregators):
        assert isinstance(participant.directory, DirectoryClient)
        assert not isinstance(participant.directory, ShardRouter)
        assert isinstance(participant.directory, Directory)


def test_directory_protocol_is_abstract():
    with pytest.raises(TypeError):
        Directory()


# -- the merged accumulator -------------------------------------------------------


def test_merged_accumulator_matches_single_server():
    def run_once(directory):
        session = make_session(directory=directory, verifiable=True)
        monitors = InvariantMonitors(session.sim.bus)
        session.run(rounds=1)
        assert monitors.finalize() == []
        return {
            partition_id: session.directory.accumulated_commitment(
                partition_id, 0)
            for partition_id in range(2)
        }

    base = run_once(None)
    sharded = run_once(DirectoryProfile(shards=3, placement="modulo"))
    for partition_id in range(2):
        base_total, base_count = base[partition_id]
        shard_total, shard_count = sharded[partition_id]
        assert base_count == shard_count > 0
        assert base_total.to_bytes() == shard_total.to_bytes()


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_fold_order_never_changes_the_merged_commitment(data):
    """Shard-local subtotals folded in any shard order equal the
    arrival-order product — the algebra the sharded accumulator relies
    on (EC-point addition is commutative and associative)."""
    params = _pedersen_params()
    vectors = data.draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=2**16),
                 min_size=1, max_size=4),
        min_size=1, max_size=8,
    ))
    num_shards = data.draw(st.integers(min_value=1, max_value=4))
    assignment = data.draw(st.lists(
        st.integers(min_value=0, max_value=num_shards - 1),
        min_size=len(vectors), max_size=len(vectors),
    ))
    commitments = [params.commit(vector) for vector in vectors]

    arrival_order = Commitment.product(commitments, SECP256K1)

    subtotals = []
    for shard in range(num_shards):
        local = [c for c, owner in zip(commitments, assignment)
                 if owner == shard]
        if local:
            subtotals.append(Commitment.product(local, SECP256K1))
    shard_order = Commitment.product(subtotals, SECP256K1)

    assert shard_order.to_bytes() == arrival_order.to_bytes()


_PARAMS_CACHE = []


def _pedersen_params():
    if not _PARAMS_CACHE:
        _PARAMS_CACHE.append(PedersenParams.setup(SECP256K1, 4))
    return _PARAMS_CACHE[0]


# -- faults: brownout and failover ------------------------------------------------


def test_shard_targeted_brownout_stays_clean():
    plan = FaultPlan.of(
        FaultSpec(kind="directory_brownout", at=0.5,
                  target="directory-shard-0",
                  processing_delay=0.05, duration=30.0),
        seed=11,
    )
    session = make_session(
        directory=DirectoryProfile(shards=2, placement="modulo"),
        faults=plan, verifiable=True,
    )
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    session.run(rounds=1)
    monitors.finalize()
    recorder.close()
    # A slow shard is a latency event, not misbehaviour: the blame
    # report stays empty and every invariant holds.
    assert recorder.incidents == []
    assert monitors.clean
    assert session.directory.register_count > 0


def test_brownout_target_must_name_a_shard():
    plan = FaultPlan.of(
        FaultSpec(kind="directory_brownout", at=0.5, target="directory",
                  processing_delay=0.05, duration=30.0),
    )
    with pytest.raises(ValueError):
        make_session(directory=DirectoryProfile(shards=2), faults=plan)


def test_router_fails_over_to_the_replica_when_the_primary_is_down():
    """With replication=2 both shards own every key, so a hard outage
    of one shard degrades only latency: the retrying router exhausts
    the primary and lands every request on the replica."""
    plan = FaultPlan.of(
        FaultSpec(kind="link_down", at=0.0, target="directory-shard-0",
                  duration=10_000.0),
        seed=3,
    )
    session = make_session(
        directory=DirectoryProfile(shards=2, replication=2,
                                   placement="modulo"),
        faults=plan,
    )
    monitors = InvariantMonitors(session.sim.bus)
    session.run(rounds=1)
    assert monitors.finalize() == []
    directory = session.directory
    assert directory.shard("directory-shard-0").register_count == 0
    assert directory.shard("directory-shard-1").register_count > 0


# -- cohorts under sharding -------------------------------------------------------


def test_cohort_load_fans_out_across_shards():
    session = make_session(
        directory=DirectoryProfile(shards=2, placement="modulo"),
        cohort=CohortPlan(population=64, cohorts=4, seed=5),
    )
    session.run(rounds=1)
    directory = session.directory
    shard_registers = [directory.shard(name).register_count
                       for name in directory.shard_names]
    assert all(count > 0 for count in shard_registers)
    # The cohort-modeled population registers alongside the exact
    # trainers: strictly more registrations than the exact sample alone.
    assert directory.register_count > NUM_TRAINERS * 2


# -- deprecation shim -------------------------------------------------------------


def test_legacy_directory_kwarg_warns_and_still_works():
    with pytest.warns(DeprecationWarning,
                      match="directory_processing_delay"):
        session = FLSession(
            make_config(), model_factory, make_shards(),
            num_ipfs_nodes=4, bandwidth_mbps=10.0,
            directory_processing_delay=0.001,
        )
    assert session.directory.processing_delay == 0.001


def test_profile_overrides_the_network_processing_delay():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        session = make_session(
            directory=DirectoryProfile(shards=2, processing_delay=0.002),
        )
    for name in session.directory.shard_names:
        assert session.directory.shard(name).processing_delay == 0.002


# -- the point of it all: registrations/sec ---------------------------------------


def test_registrations_per_second_improves_with_shard_count():
    scenario = DirshardScenario(iterations=1)
    single = run_dirshard_point(1_000, 1, scenario=scenario)
    double = run_dirshard_point(1_000, 2, scenario=scenario)
    assert single.registrations == double.registrations
    assert double.max_busy_seconds < single.max_busy_seconds
    assert (double.registrations_per_second
            > 1.5 * single.registrations_per_second)
    assert single.shard_shares == {"directory": 1.0}
    assert set(double.shard_shares) == {"directory-shard-0",
                                        "directory-shard-1"}
    assert sum(double.shard_shares.values()) == pytest.approx(1.0)
