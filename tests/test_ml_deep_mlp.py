"""Tests for the arbitrary-depth MLP."""

import numpy as np
import pytest

from repro.core import FLSession, ProtocolConfig
from repro.ml import (
    DeepMLPClassifier,
    make_classification,
    split_iid,
    train_test_split,
    accuracy,
    TrainConfig,
)

from tests.test_ml_models import numerical_gradient


def test_param_count_formula():
    model = DeepMLPClassifier(num_features=10, hidden_layers=(8, 6),
                              num_classes=3)
    expected = (10 * 8 + 8) + (8 * 6 + 6) + (6 * 3 + 3)
    assert model.num_params() == expected


def test_param_roundtrip():
    model = DeepMLPClassifier(num_features=5, hidden_layers=(4, 3),
                              num_classes=2)
    rng = np.random.default_rng(0)
    flat = rng.normal(size=model.num_params())
    model.set_params(flat)
    np.testing.assert_allclose(model.get_params(), flat)


def test_validation():
    with pytest.raises(ValueError):
        DeepMLPClassifier(num_features=0, hidden_layers=(4,))
    with pytest.raises(ValueError):
        DeepMLPClassifier(num_features=4, hidden_layers=())
    with pytest.raises(ValueError):
        DeepMLPClassifier(num_features=4, hidden_layers=(4, 0))
    with pytest.raises(ValueError):
        DeepMLPClassifier(num_features=4, hidden_layers=(4,),
                          num_classes=1)


def test_gradient_matches_numerical_two_layers():
    data = make_classification(num_samples=30, num_features=4,
                               num_classes=3, seed=1)
    model = DeepMLPClassifier(num_features=4, hidden_layers=(6, 5),
                              num_classes=3, l2=0.01, seed=2)
    _, analytic = model.loss_and_gradient(data.X, data.y)
    numeric = numerical_gradient(model, data.X, data.y)
    np.testing.assert_allclose(analytic, numeric, atol=1e-4)


def _kink_margin(model, X):
    """Smallest |pre-activation| across ReLU layers (central differences
    are unreliable within epsilon of a kink)."""
    margin = np.inf
    current = X
    for index in range(len(model.weights) - 1):
        pre = current @ model.weights[index] + model.biases[index]
        margin = min(margin, float(np.min(np.abs(pre))))
        current = np.maximum(0.0, pre)
    return margin


def test_gradient_matches_numerical_three_layers():
    data = make_classification(num_samples=25, num_features=3,
                               num_classes=2, seed=3)
    # Find a seed whose parameter point sits away from every ReLU kink,
    # so the central-difference reference is valid everywhere.
    for seed in range(4, 50):
        model = DeepMLPClassifier(num_features=3, hidden_layers=(5, 4, 3),
                                  num_classes=2, seed=seed)
        if _kink_margin(model, data.X) > 1e-4:
            break
    else:
        pytest.skip("no kink-free parameter point found")
    _, analytic = model.loss_and_gradient(data.X, data.y)
    numeric = numerical_gradient(model, data.X, data.y)
    np.testing.assert_allclose(analytic, numeric, atol=1e-4)


def test_clone_independent():
    model = DeepMLPClassifier(num_features=4, hidden_layers=(4,),
                              num_classes=2)
    copy = model.clone()
    np.testing.assert_allclose(copy.get_params(), model.get_params())
    copy.set_params(copy.get_params() + 1.0)
    assert not np.allclose(copy.get_params(), model.get_params())


def test_learns_nontrivial_task():
    rng = np.random.default_rng(5)
    X = rng.uniform(-1, 1, size=(500, 2))
    y = ((X[:, 0] ** 2 + X[:, 1] ** 2) > 0.5).astype(int)  # ring
    model = DeepMLPClassifier(num_features=2, hidden_layers=(24, 16),
                              num_classes=2, seed=6)
    for _ in range(800):
        _, grad = model.loss_and_gradient(X, y)
        model.set_params(model.get_params() - 0.5 * grad)
    assert np.mean(model.predict(X) == y) > 0.9


def test_deep_mlp_in_full_protocol():
    data = make_classification(num_samples=640, num_features=10,
                               num_classes=3, class_separation=2.5, seed=7)
    train, test = train_test_split(data, seed=7)
    shards = split_iid(train, 4, seed=7)
    config = ProtocolConfig(num_partitions=3, t_train=300.0, t_sync=600.0)
    config.train = TrainConfig(epochs=2, learning_rate=0.2, batch_size=32)
    session = FLSession(
        config,
        lambda: DeepMLPClassifier(num_features=10, hidden_layers=(16, 8),
                                  num_classes=3, seed=0),
        shards, num_ipfs_nodes=4,
    )
    initial = accuracy(session.model_of(0), test)
    session.run(rounds=3)
    session.consensus_params()
    assert accuracy(session.model_of(0), test) > max(0.8, initial)
