"""Tests for protocol extensions: delegated (trainer-side) verification,
straggler handling, and storage garbage collection."""

import numpy as np
import pytest

from repro.core import (
    AlterUpdateBehavior,
    FLSession,
    ProtocolConfig,
)
from repro.ml import LogisticRegression, make_classification, split_iid


def make_shards(num_trainers=4, seed=0):
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=seed)
    return split_iid(data, num_trainers, seed=seed)


def factory():
    return LogisticRegression(num_features=8, num_classes=2, seed=0)


# -- trainer-side verification ------------------------------------------------------


def test_trainer_verification_accepts_honest_update():
    config = ProtocolConfig(
        num_partitions=2, t_train=300.0, t_sync=600.0,
        verifiable=True, trainer_verification=True,
    )
    session = FLSession(config, factory, make_shards(), num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    assert all(trainer.rejected_updates == 0
               for trainer in session.trainers)


def test_trainer_verification_catches_poison_without_directory():
    """With directory verification delegated entirely to trainers (the
    Sec. VI direction), a poisoned update is rejected client-side."""
    config = ProtocolConfig(
        num_partitions=2, t_train=60.0, t_sync=120.0,
        verifiable=True,
        directory_verification=False,
        trainer_verification=True,
    )
    session = FLSession(
        config, factory, make_shards(), num_ipfs_nodes=4,
        behaviors={"aggregator-0": AlterUpdateBehavior(offset=1.0)},
    )
    metrics = session.run_iteration()
    # The directory served the poisoned update (it does not verify) ...
    assert metrics.update_registered_at
    # ... but every trainer rejected it and kept its model.
    assert metrics.trainers_completed == []
    assert any(trainer.rejected_updates > 0
               for trainer in session.trainers)
    assert any("trainer-rejected" in failure
               for failure in metrics.verification_failures)
    assert not session.directory.rejections  # directory did not check


def test_directory_verification_off_poison_lands_without_trainer_check():
    """The contrast case: both checks off, the poison installs."""
    config = ProtocolConfig(
        num_partitions=2, t_train=60.0, t_sync=120.0,
        verifiable=True,
        directory_verification=False,
        trainer_verification=False,
    )
    session = FLSession(
        config, factory, make_shards(), num_ipfs_nodes=4,
        behaviors={"aggregator-0": AlterUpdateBehavior(offset=1.0)},
    )
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4  # nobody noticed


# -- stragglers -------------------------------------------------------------------------


def test_slow_trainers_miss_round_fast_ones_proceed():
    """Partial asynchrony: a straggler subset misses t_train; the round
    completes with the punctual trainers' average."""
    shards = make_shards(num_trainers=4)
    config = ProtocolConfig(num_partitions=2, t_train=30.0, t_sync=200.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    session.trainers[0].local_train_seconds = 100.0  # past t_train
    session.trainers[1].local_train_seconds = 100.0
    metrics = session.run_iteration()
    completed = set(metrics.trainers_completed)
    assert completed == {"trainer-2", "trainer-3"}
    # The update averages exactly the two punctual trainers.
    from repro.core import decode_partition
    update = session.directory.entries_for(0, 0, "update")[0]
    node = next(node for node in session.nodes
                if node.store.has(update.cid))
    _, counter = decode_partition(node.load_object(update.cid))
    assert counter == 2.0


def test_straggler_rejoins_next_round():
    shards = make_shards(num_trainers=4)
    config = ProtocolConfig(num_partitions=2, t_train=30.0, t_sync=200.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    session.trainers[0].local_train_seconds = 100.0
    session.run_iteration()
    session.trainers[0].local_train_seconds = 0.0
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4


# -- garbage collection ---------------------------------------------------------------------


def test_collect_garbage_reclaims_old_iterations():
    shards = make_shards()
    config = ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    session.run(rounds=3)
    before = session.storage_bytes
    reclaimed = session.collect_garbage(keep_iterations=1)
    assert reclaimed > 0
    assert session.storage_bytes == before - reclaimed
    # The last iteration's update objects are still retrievable.
    update = session.directory.entries_for(0, 2, "update")[0]
    assert any(node.store.has(update.cid) for node in session.nodes)
    # Iteration 0's gradients are gone everywhere.
    for entry in session.directory.entries_for(0, 0, "gradient"):
        assert not any(node.store.has(entry.cid) for node in session.nodes)


def test_collect_garbage_keeps_protocol_working():
    shards = make_shards()
    config = ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    session.run_iteration()
    session.collect_garbage(keep_iterations=0)  # drop everything
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    session.consensus_params()


def test_collect_garbage_idempotent():
    shards = make_shards()
    config = ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    session.run(rounds=2)
    session.collect_garbage()
    assert session.collect_garbage() == 0.0
