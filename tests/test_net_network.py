"""Unit tests for Network, Transport and topology builders."""

import math

import pytest

from repro.net import (
    Network,
    Transport,
    build_testbed,
    mbps,
    megabytes,
    uniform_network,
)
from repro.sim import Simulator


# -- units ---------------------------------------------------------------------


def test_mbps_conversion():
    assert mbps(10.0) == 1_250_000.0  # 10 Mbit/s = 1.25 MB/s


def test_megabytes_conversion():
    assert megabytes(1.3) == 1_300_000.0


# -- Network -------------------------------------------------------------------


def test_add_and_lookup_host():
    sim = Simulator()
    network = Network(sim)
    host = network.add_host("a", up_bandwidth=100.0)
    assert network.host("a") is host
    assert "a" in network
    assert "b" not in network
    assert host.down_bandwidth == 100.0  # defaults to up


def test_duplicate_host_rejected():
    sim = Simulator()
    network = Network(sim)
    network.add_host("a")
    with pytest.raises(ValueError):
        network.add_host("a")


def test_transfer_timing_simple():
    sim = Simulator()
    network = Network(sim)
    network.add_host("a", up_bandwidth=10.0)
    network.add_host("b", up_bandwidth=10.0)
    done_times = []

    def proc(sim, network):
        yield network.transfer("a", "b", 100.0)
        done_times.append(sim.now)

    sim.process(proc(sim, network))
    sim.run()
    assert done_times == [pytest.approx(10.0)]


def test_transfer_respects_slowest_endpoint():
    sim = Simulator()
    network = Network(sim)
    network.add_host("fast", up_bandwidth=1000.0)
    network.add_host("slow", up_bandwidth=10.0)
    done_times = []

    def proc(sim, network):
        yield network.transfer("fast", "slow", 100.0)
        done_times.append(sim.now)

    sim.process(proc(sim, network))
    sim.run()
    assert done_times == [pytest.approx(10.0)]


def test_local_transfer_is_instant():
    sim = Simulator()
    network = Network(sim, default_latency=5.0)
    network.add_host("a", up_bandwidth=1.0)
    done = network.transfer("a", "a", 1e9)
    assert done.triggered


def test_latency_added_once():
    sim = Simulator()
    network = Network(sim, default_latency=2.0)
    network.add_host("a", up_bandwidth=10.0)
    network.add_host("b", up_bandwidth=10.0)
    done_times = []

    def proc(sim, network):
        yield network.transfer("a", "b", 100.0)
        done_times.append(sim.now)

    sim.process(proc(sim, network))
    sim.run()
    assert done_times == [pytest.approx(12.0)]


def test_latency_fn_override():
    sim = Simulator()
    network = Network(sim, default_latency=1.0,
                      latency_fn=lambda s, d: 7.0)
    network.add_host("a")
    network.add_host("b")
    assert network.latency("a", "b") == 7.0
    assert network.latency("a", "a") == 0.0


def test_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, default_latency=-1.0)


def test_telemetry_counters():
    sim = Simulator()
    network = Network(sim)
    network.add_host("a", up_bandwidth=100.0)
    network.add_host("b", up_bandwidth=100.0)

    def proc(sim, network):
        yield network.transfer("a", "b", 50.0)

    sim.process(proc(sim, network))
    sim.run()
    assert network.host("a").bytes_sent == 50.0
    assert network.host("b").bytes_received == 50.0
    assert network.bytes_delivered == pytest.approx(50.0)


def test_fan_in_to_one_receiver():
    """The paper's congested-provider scenario: N senders, one receiver."""
    sim = Simulator()
    network = Network(sim)
    for i in range(8):
        network.add_host(f"t{i}", up_bandwidth=mbps(10))
    network.add_host("provider", up_bandwidth=mbps(10))
    finish = {}

    def proc(sim, network, i):
        yield network.transfer(f"t{i}", "provider", megabytes(1.0))
        finish[i] = sim.now

    for i in range(8):
        sim.process(proc(sim, network, i))
    sim.run()
    # 8 MB through a 1.25 MB/s downlink: all finish together at 6.4s.
    for i in range(8):
        assert finish[i] == pytest.approx(8 * 1_000_000 / mbps(10))


# -- Transport -----------------------------------------------------------------


def make_pair():
    sim = Simulator()
    network = Network(sim)
    network.add_host("a", up_bandwidth=10.0)
    network.add_host("b", up_bandwidth=10.0)
    transport = Transport(network)
    return sim, transport, transport.endpoint("a"), transport.endpoint("b")


def test_send_receive():
    sim, transport, a, b = make_pair()
    got = []

    def receiver(sim, b):
        message = yield b.receive()
        got.append((message.kind, message.payload, sim.now))

    def sender(sim, a):
        yield a.send("b", "hello", payload={"x": 1}, size=100.0)

    sim.process(receiver(sim, b))
    sim.process(sender(sim, a))
    sim.run()
    assert got == [("hello", {"x": 1}, pytest.approx(10.0))]


def test_receive_filters_by_kind():
    sim, transport, a, b = make_pair()
    got = []

    def receiver(sim, b):
        message = yield b.receive(kind="wanted")
        got.append(message.kind)

    def sender(sim, a):
        yield a.send("b", "noise")
        yield a.send("b", "wanted")

    sim.process(receiver(sim, b))
    sim.process(sender(sim, a))
    sim.run()
    assert got == ["wanted"]


def test_request_response_correlation():
    sim, transport, a, b = make_pair()
    got = []

    def server(sim, b):
        request = yield b.receive(kind="ping")
        b.respond(request, "pong", payload=request.payload + 1)

    def client(sim, a):
        response = yield from a.request("b", "ping", payload=41)
        got.append((response.kind, response.payload))

    sim.process(server(sim, b))
    sim.process(client(sim, a))
    sim.run()
    assert got == [("pong", 42)]


def test_concurrent_requests_not_crossed():
    sim, transport, a, b = make_pair()
    got = {}

    def server(sim, b):
        for _ in range(2):
            request = yield b.receive(kind="echo")
            b.respond(request, "echo-reply", payload=request.payload)

    def client(sim, a, value):
        response = yield from a.request("b", "echo", payload=value)
        got[value] = response.payload

    sim.process(server(sim, b))
    sim.process(client(sim, a, "first"))
    sim.process(client(sim, a, "second"))
    sim.run()
    assert got == {"first": "first", "second": "second"}


def test_endpoint_requires_known_host():
    sim = Simulator()
    network = Network(sim)
    transport = Transport(network)
    with pytest.raises(KeyError):
        transport.endpoint("ghost")


def test_send_to_unregistered_endpoint_raises():
    sim, transport, a, b = make_pair()
    transport.network.add_host("c")
    with pytest.raises(KeyError):
        a.send("c", "hello")


def test_delivered_by_kind_telemetry():
    sim, transport, a, b = make_pair()

    def sender(sim, a):
        yield a.send("b", "gradient")
        yield a.send("b", "gradient")

    sim.process(sender(sim, a))
    sim.run()
    assert transport.delivered_by_kind["gradient"] == 2


# -- topology builders ------------------------------------------------------------


def test_uniform_network():
    sim = Simulator()
    network = uniform_network(sim, ["x", "y"], bandwidth=100.0, latency=0.5)
    assert network.host("x").up_bandwidth == 100.0
    assert network.latency("x", "y") == 0.5


def test_build_testbed_defaults():
    testbed = build_testbed()
    assert len(testbed.trainer_names) == 16
    assert len(testbed.aggregator_names) == 1
    assert len(testbed.ipfs_names) == 8
    assert testbed.directory_name in testbed.network
    trainer = testbed.network.host("trainer-0")
    assert trainer.up_bandwidth == mbps(10.0)
    # Directory is unconstrained by default.
    assert math.isinf(testbed.network.host("directory").up_bandwidth)


def test_build_testbed_validation():
    with pytest.raises(ValueError):
        build_testbed(num_trainers=0)


def test_build_testbed_endpoints_registered():
    testbed = build_testbed(num_trainers=2, num_ipfs_nodes=1)
    endpoint = testbed.transport.endpoint("trainer-0")
    assert endpoint.name == "trainer-0"
