"""Integration tests: IPFS nodes and clients over the emulated network."""

import numpy as np
import pytest

from repro.ipfs import (
    IntegrityError,
    MergeError,
    NodeOfflineError,
    NotFoundError,
    compute_cid,
)
from repro.net import mbps

from tests.util import make_ipfs_world, run_proc


def test_put_returns_cid_and_stores():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")

    def scenario():
        cid = yield from client.put(b"gradient-bytes", node="ipfs-0")
        return cid

    cid = run_proc(world, scenario())
    node = world.node(0)
    assert node.load_object(cid) == b"gradient-bytes"
    assert node.puts_served == 1


def test_put_get_roundtrip():
    world = make_ipfs_world(num_nodes=2, client_names=("client-0", "client-1"))
    writer = world.client("client-0")
    reader = world.client("client-1")
    box = {}

    def write():
        box["cid"] = yield from writer.put(b"shared data", node="ipfs-0")

    def read(sim):
        yield sim.timeout(50.0)  # after the write completes
        data = yield from reader.get(box["cid"])
        box["data"] = data

    world.sim.process(write())
    world.sim.process(read(world.sim))
    world.sim.run()
    assert box["data"] == b"shared data"


def test_put_timing_matches_bandwidth():
    """1 MB through a 10 Mbps uplink takes ~0.8s (plus overhead bytes)."""
    world = make_ipfs_world(num_nodes=1, bandwidth_mbps=10.0)
    client = world.client("client-0")
    data = bytes(1_000_000)
    finish = {}

    def scenario(sim):
        yield from client.put(data, node="ipfs-0")
        finish["t"] = sim.now

    world.sim.process(scenario(world.sim))
    world.sim.run()
    expected = (1_000_000 + 256) / mbps(10.0) + 128 / mbps(10.0)
    assert finish["t"] == pytest.approx(expected, rel=1e-6)


def test_get_prefers_named_node():
    world = make_ipfs_world(num_nodes=3)
    client = world.client("client-0")
    data = b"replicated content"
    cid = world.node(0).store_object(data)
    world.node(1).store_object(data)

    def scenario():
        result = yield from client.get(cid, prefer_nodes=["ipfs-1"])
        return result

    assert run_proc(world, scenario()) == data
    assert world.node(1).gets_served == 1
    assert world.node(0).gets_served == 0


def test_get_uses_dht_when_no_preference():
    world = make_ipfs_world(num_nodes=2)
    client = world.client("client-0")
    cid = world.node(1).store_object(b"dht-found")

    def scenario():
        return (yield from client.get(cid))

    assert run_proc(world, scenario()) == b"dht-found"


def test_get_unknown_cid_raises():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    ghost = compute_cid(b"never stored")

    def scenario():
        yield from client.get(ghost)

    with pytest.raises(NotFoundError):
        run_proc(world, scenario())


def test_get_detects_corruption_and_fails_over():
    """A corrupt provider is skipped; an honest replica serves the data."""
    world = make_ipfs_world(num_nodes=2)
    client = world.client("client-0")
    data = b"important gradient"
    cid = world.node(0).store_object(data)
    world.node(1).store_object(data)
    world.node(0).corrupt = True

    def scenario():
        return (yield from client.get(cid, prefer_nodes=["ipfs-0", "ipfs-1"]))

    assert run_proc(world, scenario()) == data


def test_get_corruption_with_no_honest_replica_raises():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    cid = world.node(0).store_object(b"data")
    world.node(0).corrupt = True

    def scenario():
        yield from client.get(cid)

    with pytest.raises(IntegrityError):
        run_proc(world, scenario())


def test_offline_node_times_out_put():
    world = make_ipfs_world(num_nodes=1, request_timeout=5.0)
    client = world.client("client-0")
    world.node(0).online = False

    def scenario():
        yield from client.put(b"data", node="ipfs-0")

    with pytest.raises(NodeOfflineError):
        run_proc(world, scenario())


def test_offline_provider_falls_back_to_live_one():
    world = make_ipfs_world(num_nodes=2, request_timeout=5.0)
    client = world.client("client-0")
    data = b"resilient data"
    cid = world.node(0).store_object(data)
    world.node(1).store_object(data)
    world.node(0).online = False

    def scenario():
        return (yield from client.get(cid, prefer_nodes=["ipfs-0", "ipfs-1"]))

    assert run_proc(world, scenario()) == data


def test_large_object_chunked_roundtrip():
    """A 1.3MB partition (the paper's size) survives chunking + transfer."""
    world = make_ipfs_world(num_nodes=1, bandwidth_mbps=100.0)
    client = world.client("client-0")
    data = np.random.default_rng(7).integers(
        0, 256, size=1_300_000, dtype=np.uint8
    ).tobytes()
    box = {}

    def scenario():
        cid = yield from client.put(data, node="ipfs-0")
        box["data"] = yield from client.get(cid, prefer_nodes=["ipfs-0"])

    world.sim.process(scenario())
    world.sim.run()
    assert box["data"] == data
    # 1.3MB at 256KiB chunks -> 5 leaves + manifest.
    assert len(world.node(0).store) == 6


def test_merge_and_download_sums_vectors():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    node = world.node(0)
    vectors = [np.arange(4, dtype=np.float64) * (i + 1) for i in range(3)]
    cids = [node.store_object(v.tobytes()) for v in vectors]
    box = {}

    def scenario():
        merged, count = yield from client.merge_and_download(cids, node="ipfs-0")
        box["merged"] = np.frombuffer(merged, dtype=np.float64)
        box["count"] = count

    world.sim.process(scenario())
    world.sim.run()
    np.testing.assert_allclose(box["merged"], np.arange(4) * 6.0)
    assert box["count"] == 3
    assert node.merges_served == 1


def test_merge_with_missing_cid_fails():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    node = world.node(0)
    cid = node.store_object(np.zeros(4).tobytes())
    ghost = compute_cid(b"ghost")

    def scenario():
        yield from client.merge_and_download([cid, ghost], node="ipfs-0")

    with pytest.raises(MergeError):
        run_proc(world, scenario())


def test_merge_unknown_merger_fails():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    cid = world.node(0).store_object(np.zeros(4).tobytes())

    def scenario():
        yield from client.merge_and_download([cid], node="ipfs-0",
                                             merger="no-such-merger")

    with pytest.raises(MergeError):
        run_proc(world, scenario())


def test_merge_download_cheaper_than_individual_gets():
    """The point of Sec. III-E: one merged blob vs N full downloads."""
    world = make_ipfs_world(num_nodes=1, bandwidth_mbps=10.0)
    client = world.client("client-0")
    node = world.node(0)
    vectors = [np.full(10_000, float(i)) for i in range(8)]
    cids = [node.store_object(v.tobytes()) for v in vectors]
    times = {}

    def merged_scenario(sim):
        yield from client.merge_and_download(cids, node="ipfs-0")
        times["merged"] = sim.now

    world.sim.process(merged_scenario(world.sim))
    world.sim.run()

    world2 = make_ipfs_world(num_nodes=1, bandwidth_mbps=10.0)
    client2 = world2.client("client-0")
    node2 = world2.node(0)
    cids2 = [node2.store_object(v.tobytes()) for v in vectors]

    def individual_scenario(sim):
        for cid in cids2:
            yield from client2.get(cid, prefer_nodes=["ipfs-0"])
        times["individual"] = sim.now

    world2.sim.process(individual_scenario(world2.sim))
    world2.sim.run()
    assert times["merged"] < times["individual"] / 4


def test_unpin_releases_object():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")
    node = world.node(0)
    box = {}

    def scenario(sim):
        cid = yield from client.put(b"ephemeral", node="ipfs-0")
        yield from client.unpin(cid, node="ipfs-0")
        yield sim.timeout(10.0)
        box["cid"] = cid

    world.sim.process(scenario(world.sim))
    world.sim.run()
    node.store.collect_garbage()
    assert not node.store.has(box["cid"])


def test_client_telemetry():
    world = make_ipfs_world(num_nodes=1)
    client = world.client("client-0")

    def scenario():
        cid = yield from client.put(b"xyz", node="ipfs-0")
        yield from client.get(cid, prefer_nodes=["ipfs-0"])

    world.sim.process(scenario())
    world.sim.run()
    assert client.bytes_uploaded > 0
    assert client.bytes_downloaded > 0
