"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=10.0)
    assert sim.now == 10.0


def test_timeout_advances_clock():
    sim = Simulator()
    times = []

    def proc(sim):
        yield sim.timeout(5.0)
        times.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert times == [5.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.process(proc(sim))
    sim.run()
    assert got == ["payload"]


def test_events_processed_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(proc(sim, "late", 3.0))
    sim.process(proc(sim, "early", 1.0))
    sim.process(proc(sim, "middle", 2.0))
    sim.run()
    assert order == ["early", "middle", "late"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in ["a", "b", "c"]:
        sim.process(proc(sim, name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100.0)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator(start_time=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_with_empty_queue_sets_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_process_return_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 99

    def parent(sim, results):
        value = yield sim.process(child(sim))
        results.append(value)

    results = []
    sim.process(parent(sim, results))
    sim.run()
    assert results == [99]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    event = sim.event()
    got = []

    def waiter(sim, event):
        value = yield event
        got.append((sim.now, value))

    def trigger(sim, event):
        yield sim.timeout(3.0)
        event.succeed("done")

    sim.process(waiter(sim, event))
    sim.process(trigger(sim, event))
    sim.run()
    assert got == [(3.0, "done")]


def test_event_double_trigger_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    event = sim.event()
    caught = []

    def waiter(sim, event):
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim, event))
    event.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_event_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_unhandled_process_failure_propagates():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("explode")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="explode"):
        sim.run()


def test_failure_handled_by_parent_is_defused():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("explode")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError:
            caught.append(True)

    sim.process(parent(sim))
    sim.run()
    assert caught == [True]


def test_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_yield_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_wait_on_already_processed_event():
    """A process may yield an event that already fired and still proceed."""
    sim = Simulator()
    event = sim.event()
    event.succeed("old-value")
    got = []

    def late_waiter(sim, event):
        yield sim.timeout(5.0)
        value = yield event
        got.append((sim.now, value))

    sim.process(late_waiter(sim, event))
    sim.run()
    assert got == [(5.0, "old-value")]


def test_interrupt_raises_in_target():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupted_process_can_wait_again():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(5.0)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [7.0]


def test_stale_wakeup_after_interrupt_is_ignored():
    """The original timeout firing after an interrupt must not resume twice."""
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(4.0)
            log.append("timeout")
        except Interrupt:
            log.append("interrupt")
        yield sim.timeout(100.0)

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run(until=50.0)
    assert log == ["interrupt"]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_process_cannot_interrupt_itself():
    sim = Simulator()
    caught = []

    def selfish(sim):
        yield sim.timeout(0)
        try:
            sim.active_process.interrupt()
        except SimulationError:
            caught.append(True)

    sim.process(selfish(sim))
    sim.run()
    assert caught == [True]


def test_all_of_waits_for_all():
    sim = Simulator()
    log = []

    def proc(sim):
        t1 = sim.timeout(1.0, value="one")
        t2 = sim.timeout(3.0, value="three")
        results = yield sim.all_of([t1, t2])
        log.append((sim.now, sorted(results.values())))

    sim.process(proc(sim))
    sim.run()
    assert log == [(3.0, ["one", "three"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    log = []

    def proc(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(3.0, value="slow")
        results = yield sim.any_of([t1, t2])
        log.append((sim.now, list(results.values())))

    sim.process(proc(sim))
    sim.run()
    assert log == [(1.0, ["fast"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    log = []

    def proc(sim):
        results = yield sim.all_of([])
        log.append((sim.now, results))

    sim.process(proc(sim))
    sim.run()
    assert log == [(0.0, {})]


def test_condition_failure_propagates():
    sim = Simulator()
    event = sim.event()
    caught = []

    def proc(sim, event):
        try:
            yield sim.all_of([sim.timeout(10.0), event])
        except RuntimeError:
            caught.append(sim.now)

    sim.process(proc(sim, event))
    event.fail(RuntimeError("bad"))
    sim.run()
    assert caught == [0.0]


def test_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive
    assert p.ok


def test_peek_and_step():
    sim = Simulator()
    sim.timeout(4.0)
    assert sim.peek() == 4.0
    sim.step()
    assert sim.now == 4.0
    assert sim.peek() == float("inf")
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_process_chain():
    sim = Simulator()

    def leaf(sim):
        yield sim.timeout(1.0)
        return 1

    def middle(sim):
        value = yield sim.process(leaf(sim))
        yield sim.timeout(1.0)
        return value + 1

    def root(sim, out):
        value = yield sim.process(middle(sim))
        out.append((sim.now, value + 1))

    out = []
    sim.process(root(sim, out))
    sim.run()
    assert out == [(2.0, 3)]


def test_process_name():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)

    p = sim.process(worker(sim), name="my-worker")
    assert p.name == "my-worker"
    assert "my-worker" in repr(p)


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def proc(sim, i):
        yield sim.timeout(float(i % 17))
        done.append(i)

    for i in range(500):
        sim.process(proc(sim, i))
    sim.run()
    assert sorted(done) == list(range(500))
