"""Tests for directory processing delay and remaining server-side paths."""

import pytest

from repro.core import Address, FLSession, GRADIENT, ProtocolConfig
from repro.core.directory import DirectoryClient, DirectoryService
from repro.ipfs import DHT, IPFSNode
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.net import Network, Transport, mbps
from repro.sim import Simulator

from tests.test_core_directory import make_world, run


def make_loaded_directory(processing_delay):
    sim = Simulator()
    network = Network(sim)
    for name in ("directory", "ipfs-0", "client-0"):
        network.add_host(name, up_bandwidth=mbps(100))
    transport = Transport(network)
    for name in ("directory", "ipfs-0", "client-0"):
        transport.endpoint(name)
    dht = DHT(sim, lookup_delay=0.0)
    node = IPFSNode(sim, transport, dht, "ipfs-0")
    directory = DirectoryService(sim, transport, dht,
                                 processing_delay=processing_delay)
    client = DirectoryClient("client-0", transport)
    return sim, node, directory, client


def test_processing_delay_serializes_requests():
    sim, node, directory, client = make_loaded_directory(0.5)
    cid = node.store_object(b"g")
    finish = {}

    def registrant(index):
        yield from client.register(Address(f"t{index}", 0, 0, GRADIENT),
                                   cid)
        finish[index] = sim.now

    for index in range(4):
        sim.process(registrant(index))
    sim.run()
    # Four registrations behind a 0.5s-per-request server: the last ack
    # lands no earlier than 2s.
    assert max(finish.values()) >= 4 * 0.5
    assert directory.register_count == 4


def test_zero_processing_delay_is_fast():
    sim, node, directory, client = make_loaded_directory(0.0)
    cid = node.store_object(b"g")
    finish = {}

    def registrant(index):
        yield from client.register(Address(f"t{index}", 0, 0, GRADIENT),
                                   cid)
        finish[index] = sim.now

    for index in range(4):
        sim.process(registrant(index))
    sim.run()
    assert max(finish.values()) < 0.1


def test_processing_delay_validation():
    sim = Simulator()
    network = Network(sim)
    network.add_host("directory")
    transport = Transport(network)
    dht = DHT(sim)
    with pytest.raises(ValueError):
        DirectoryService(sim, transport, dht, processing_delay=-1.0)


def test_session_with_loaded_directory_still_completes():
    data = make_classification(num_samples=160, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    session = FLSession(
        ProtocolConfig(num_partitions=2, t_train=300, t_sync=600),
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
        directory_processing_delay=0.05,
    )
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    # The serialized directory visibly stretches the iteration.
    fast = FLSession(
        ProtocolConfig(num_partitions=2, t_train=300, t_sync=600),
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
    )
    fast_metrics = fast.run_iteration()
    assert metrics.end_to_end_delay > fast_metrics.end_to_end_delay


def test_pubsub_topics_are_isolated():
    sim, transport, dht, node, directory, committer = make_world()
    from repro.ipfs import PubSub
    pubsub = PubSub(transport)
    sub_a = pubsub.subscribe("topic-a", "client-0")
    sub_b = pubsub.subscribe("topic-b", "client-1")
    got = {}

    def listener(name, subscription):
        message = yield subscription.get()
        got[name] = message.topic

    sim.process(listener("a", sub_a))
    sim.process(listener("b", sub_b))
    pubsub.publish("topic-a", "client-2", payload=1)
    pubsub.publish("topic-b", "client-3", payload=2)
    sim.run()
    assert got == {"a": "topic-a", "b": "topic-b"}
    assert pubsub.peers("topic-a") == 1
    assert pubsub.peers("nonexistent") == 0
