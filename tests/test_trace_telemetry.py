"""Tests for transfer tracing, telemetry export and trainer jitter."""

import json

import pytest

from repro.core import FLSession, ProtocolConfig
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.net import Network, TransferTrace, mbps
from repro.sim import Simulator


# -- TransferTrace -----------------------------------------------------------------


def make_traced_network():
    sim = Simulator()
    network = Network(sim)
    for name in ("a", "b", "c"):
        network.add_host(name, up_bandwidth=mbps(10))
    trace = TransferTrace(network)
    return sim, network, trace


def test_trace_records_transfers():
    sim, network, trace = make_traced_network()

    def proc():
        yield network.transfer("a", "b", 1000.0)
        yield network.transfer("b", "c", 500.0)

    sim.process(proc())
    sim.run()
    assert len(trace) == 2
    assert trace.total_bytes() == 1500.0
    first = trace.records[0]
    assert (first.src, first.dst, first.size) == ("a", "b", 1000.0)
    assert first.finished_at > first.started_at
    assert first.throughput == pytest.approx(mbps(10))


def test_trace_traffic_matrix_and_hosts():
    sim, network, trace = make_traced_network()

    def proc():
        yield network.transfer("a", "b", 100.0)
        yield network.transfer("a", "b", 200.0)
        yield network.transfer("c", "a", 50.0)

    sim.process(proc())
    sim.run()
    matrix = trace.bytes_by_pair()
    assert matrix[("a", "b")] == 300.0
    assert matrix[("c", "a")] == 50.0
    hosts = trace.bytes_by_host()
    assert hosts["a"]["out"] == 300.0
    assert hosts["a"]["in"] == 50.0
    assert trace.busiest_host() == "a"


def test_trace_window_and_filter():
    sim, network, trace = make_traced_network()

    def proc(sim):
        yield network.transfer("a", "b", 1000.0)   # finishes ~0.0008s
        yield sim.timeout(10.0)
        yield network.transfer("a", "c", 1000.0)

    sim.process(proc(sim))
    sim.run()
    early = trace.window(0.0, 1.0)
    assert len(early) == 1
    to_c = trace.filter(lambda record: record.dst == "c")
    assert len(to_c) == 1


def test_trace_detach_stops_recording():
    sim, network, trace = make_traced_network()
    trace.detach()

    def proc():
        yield network.transfer("a", "b", 100.0)

    sim.process(proc())
    sim.run()
    assert len(trace) == 0


def test_trace_on_full_session():
    data = make_classification(num_samples=160, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    session = FLSession(
        ProtocolConfig(num_partitions=2, t_train=300, t_sync=600),
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
    )
    trace = TransferTrace(session.testbed.network)
    session.run_iteration()
    assert len(trace) > 0
    # Gradients flow trainer -> node; updates node -> trainer.
    uploads = trace.filter(
        lambda r: r.src.startswith("trainer") and r.dst.startswith("ipfs")
    )
    downloads = trace.filter(
        lambda r: r.src.startswith("ipfs") and r.dst.startswith("trainer")
    )
    assert uploads and downloads


# -- telemetry export ----------------------------------------------------------------


def run_small_session(rounds=2, **config_overrides):
    data = make_classification(num_samples=160, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    defaults = dict(num_partitions=2, t_train=300.0, t_sync=600.0)
    defaults.update(config_overrides)
    session = FLSession(
        ProtocolConfig(**defaults),
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
    )
    session.run(rounds=rounds)
    return session


def test_metrics_to_dict_roundtrips_through_json():
    session = run_small_session()
    blob = session.metrics.to_json()
    parsed = json.loads(blob)
    assert len(parsed["iterations"]) == 2
    first = parsed["iterations"][0]
    assert first["iteration"] == 0
    assert len(first["trainers_completed"]) == 4
    assert first["aggregation_delay"] > 0
    assert first["end_to_end_delay"] > 0


def test_metrics_to_dict_contains_derived_fields():
    session = run_small_session(rounds=1)
    snapshot = session.metrics.latest().to_dict()
    for key in ("collection_time", "total_aggregation_delay",
                "mean_upload_delay", "mean_bytes_received"):
        assert key in snapshot
        assert snapshot[key] is not None


# -- trainer jitter -------------------------------------------------------------------


def test_jitter_spreads_first_gradient_times():
    tight = run_small_session(rounds=1)
    jittered = run_small_session(rounds=1, trainer_jitter=20.0)
    # With jitter, the round takes longer end to end (late arrivals).
    assert (jittered.metrics.latest().duration
            > tight.metrics.latest().duration)
    # But everyone still completes and agrees.
    assert len(jittered.metrics.latest().trainers_completed) == 4
    jittered.consensus_params()


def test_jitter_deterministic_per_seed():
    a = run_small_session(rounds=1, trainer_jitter=10.0)
    b = run_small_session(rounds=1, trainer_jitter=10.0)
    assert (a.metrics.latest().first_gradient_at
            == b.metrics.latest().first_gradient_at)


def test_jitter_validation():
    with pytest.raises(ValueError):
        ProtocolConfig(trainer_jitter=-1.0)
