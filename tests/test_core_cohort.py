"""The cohort abstraction: exact sample + statistically modeled mass.

Two contracts matter (docs/SCALING.md):

1. **Exact mode is free**: a plan whose population equals the sampled
   trainer count builds zero cohort machinery and the session is
   indistinguishable — identical fingerprint, identical metrics — from
   one constructed without a plan at all.
2. **Statistical mode preserves the load**: directory registration /
   lookup counts and the aggregate link traffic scale with the full
   population even though only the sample runs the real protocol.
"""

import numpy as np
import pytest

from repro.core import CohortCoordinator, CohortPlan, FLSession, ProtocolConfig
from repro.ml import Dataset, SyntheticModel
from repro.net import NetworkProfile
from repro.obs import CountersRegistry
from repro.obs.events import CohortLoadApplied

SAMPLE = 4
PARTITIONS = 2


def shards(count=SAMPLE):
    return [Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
            for index in range(count)]


def build_session(population=None, cohorts=4, rounds_config=None):
    config = rounds_config or ProtocolConfig(
        num_partitions=PARTITIONS, t_train=300.0, t_sync=600.0,
        update_mode="gradient", poll_interval=0.5,
    )
    plan = None
    if population is not None:
        plan = CohortPlan(population=population, cohorts=cohorts, seed=3)
    return FLSession(
        config, lambda: SyntheticModel(2_000), shards(),
        network=NetworkProfile(num_ipfs_nodes=4, bandwidth_mbps=10.0),
        cohort=plan,
    )


# -- CohortPlan arithmetic -----------------------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError):
        CohortPlan(population=0)
    with pytest.raises(ValueError):
        CohortPlan(population=10, cohorts=0)
    with pytest.raises(ValueError):
        CohortPlan(population=3).modeled_trainers(4)


def test_member_counts_split_evenly():
    plan = CohortPlan(population=110, cohorts=4)
    counts = plan.member_counts(10)
    assert counts == [25, 25, 25, 25]
    uneven = CohortPlan(population=109, cohorts=4).member_counts(10)
    assert uneven == [25, 25, 25, 24]
    assert sum(uneven) == 99


def test_member_counts_fewer_modeled_than_cohorts():
    plan = CohortPlan(population=13, cohorts=16)
    counts = plan.member_counts(10)
    assert counts == [1, 1, 1]


def test_exact_mode_builds_no_cohorts():
    assert CohortPlan(population=7).member_counts(7) == []


# -- exact mode is byte-identical ----------------------------------------------


def test_exact_mode_fingerprint_identical_to_plain_session():
    """The acceptance criterion: sample == population must fingerprint
    (and measure) identically to a session without any plan."""
    plain = build_session(population=None)
    exact = build_session(population=SAMPLE)
    assert exact.cohorts == []
    assert exact.fingerprint() == plain.fingerprint()

    plain_metrics = plain.run_iteration()
    exact_metrics = exact.run_iteration()
    assert exact.sim.now == plain.sim.now
    assert exact_metrics.collection_time == plain_metrics.collection_time
    assert exact_metrics.end_to_end_delay == plain_metrics.end_to_end_delay
    assert exact.directory.register_count == plain.directory.register_count
    assert exact.directory.lookup_count == plain.directory.lookup_count


def test_statistical_mode_changes_the_fingerprint():
    plain = build_session(population=None)
    scaled = build_session(population=100)
    fingerprint = scaled.fingerprint()
    assert fingerprint["digest"] != plain.fingerprint()["digest"]
    assert fingerprint["cohort_population"] == 100
    assert fingerprint["cohorts"] == 4


# -- statistical mode preserves the load ---------------------------------------


def test_population_load_lands_on_the_directory():
    population = 100
    session = build_session(population=population)
    assert len(session.cohorts) == 4
    assert sum(c.members for c in session.cohorts) == population - SAMPLE

    counters = CountersRegistry(session.sim.bus)
    events = []
    session.sim.bus.subscribe(events.append, CohortLoadApplied)
    session.run_iteration()

    # Registrations: population x partitions from trainers + cohorts,
    # plus the per-partition update registrations by aggregators.
    assert session.directory.register_count \
        == population * PARTITIONS + PARTITIONS
    assert session.directory.lookup_count >= population * PARTITIONS

    assert counters.get("cohort.rounds") == 4
    assert counters.get("cohort.members_modeled") == population - SAMPLE
    assert counters.get("cohort.registrations") \
        == (population - SAMPLE) * PARTITIONS
    assert counters.get("cohort.lookups") \
        == (population - SAMPLE) * PARTITIONS
    assert counters.get("cohort.bytes_up") > 0

    assert len(events) == 4
    for event in events:
        assert event.registrations == event.members * PARTITIONS
        assert event.bytes_up > 0
        assert event.bytes_down > 0
    assert all(c.completed_iterations == 1 for c in session.cohorts)


def test_modeled_members_do_not_join_aggregation():
    """Cohort load is load only: the protocol outcome (who completed,
    what was aggregated) is the sample's."""
    session = build_session(population=64)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == SAMPLE


def test_cohort_seed_determinism():
    first = build_session(population=80)
    second = build_session(population=80)
    first.run_iteration()
    second.run_iteration()
    assert first.sim.now == second.sim.now
    assert first.directory.register_count == second.directory.register_count
    assert [c.completed_iterations for c in first.cohorts] \
        == [c.completed_iterations for c in second.cohorts]


def test_cohort_coordinator_exported():
    assert CohortCoordinator.__name__ == "CohortCoordinator"
