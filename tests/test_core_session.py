"""End-to-end protocol tests: full sessions over the emulated deployment."""

import numpy as np
import pytest

from repro.core import (
    AlterUpdateBehavior,
    DropGradientsBehavior,
    FLSession,
    LazyBehavior,
    ProtocolConfig,
)
from repro.ml import (
    LogisticRegression,
    TrainConfig,
    accuracy,
    compute_gradient,
    local_update,
    make_classification,
    split_iid,
    train_test_split,
)


def make_shards(num_trainers=4, num_features=8, num_samples=240, seed=0):
    data = make_classification(num_samples=num_samples,
                               num_features=num_features,
                               class_separation=3.0, seed=seed)
    return split_iid(data, num_trainers, seed=seed), data


def model_factory(num_features=8):
    return lambda: LogisticRegression(num_features=num_features,
                                      num_classes=2, seed=0)


def base_config(**overrides):
    defaults = dict(num_partitions=2, t_train=300.0, t_sync=500.0,
                    poll_interval=0.5)
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


# -- happy path -------------------------------------------------------------------


def test_single_iteration_all_trainers_complete():
    shards, _ = make_shards()
    session = FLSession(base_config(), model_factory(), shards,
                        num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert sorted(metrics.trainers_completed) == [
        f"trainer-{i}" for i in range(4)
    ]
    assert metrics.aggregation_delay is not None
    assert metrics.aggregation_delay > 0
    session.consensus_params()


def test_models_agree_across_trainers_after_each_round():
    shards, _ = make_shards()
    session = FLSession(base_config(), model_factory(), shards,
                        num_ipfs_nodes=4)
    for _ in range(2):
        session.run_iteration()
        session.consensus_params()  # raises on divergence


def test_decentralized_equals_reference_fedavg():
    """Algorithm 1 must compute exactly the average of the trainers'
    locally updated parameters (the paper's convergence-equivalence
    claim)."""
    shards, _ = make_shards()
    config = base_config()
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)

    # Reference: replicate each trainer's local step with its exact seed.
    template = model_factory()()
    locals_ = []
    for index in range(4):
        delta = local_update(template, shards[index], config.train,
                             seed=config.seed + index + 7919 * 0)
        locals_.append(template.get_params() + delta)
    expected = np.mean(locals_, axis=0)

    session.run_iteration()
    got = session.consensus_params()
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_gradient_mode_equals_fedsgd():
    shards, _ = make_shards()
    config = base_config(update_mode="gradient", learning_rate=0.3)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)

    template = model_factory()()
    gradients = [compute_gradient(template, shard) for shard in shards]
    expected = template.get_params() - 0.3 * np.mean(gradients, axis=0)

    session.run_iteration()
    np.testing.assert_allclose(session.consensus_params(), expected,
                               atol=1e-12)


def test_multiple_rounds_improve_accuracy():
    data = make_classification(num_samples=600, num_features=8,
                               class_separation=2.5, seed=3)
    train, test = train_test_split(data, seed=3)
    shards = split_iid(train, 4, seed=3)
    config = base_config()
    config.train = TrainConfig(epochs=2, learning_rate=0.5)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)
    initial_accuracy = accuracy(session.model_of(0), test)
    session.run(rounds=3)
    final_accuracy = accuracy(session.model_of(0), test)
    assert final_accuracy > max(0.85, initial_accuracy)
    assert len(session.metrics.iterations) == 3


# -- verifiable aggregation -------------------------------------------------------------


def test_verifiable_honest_run_completes():
    shards, _ = make_shards()
    session = FLSession(base_config(verifiable=True), model_factory(),
                        shards, num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    assert metrics.verification_failures == []
    assert metrics.commit_seconds  # trainers measured real commit time


def test_verifiable_matches_unverified_model():
    """Quantization aside, the verifiable protocol computes the same
    model; with dyadic-friendly tolerance the difference is bounded by
    the quantization step."""
    shards, _ = make_shards()
    plain = FLSession(base_config(), model_factory(), shards,
                      num_ipfs_nodes=4)
    verified = FLSession(base_config(verifiable=True, fractional_bits=24),
                         model_factory(), shards, num_ipfs_nodes=4)
    plain.run_iteration()
    verified.run_iteration()
    difference = np.max(np.abs(
        plain.consensus_params() - verified.consensus_params()
    ))
    assert difference <= 2.0 ** -20  # a few quantization steps


@pytest.mark.parametrize("behavior", [
    AlterUpdateBehavior(offset=0.5),
    DropGradientsBehavior(keep_fraction=0.5),
    LazyBehavior(max_gradients=1),
])
def test_verifiable_rejects_malicious_aggregator(behavior):
    shards, _ = make_shards()
    config = base_config(verifiable=True, t_train=60.0, t_sync=90.0)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4,
                        behaviors={"aggregator-0": behavior})
    metrics = session.run_iteration()
    assert metrics.verification_failures  # rejected at the directory
    assert metrics.trainers_completed == []  # poisoned update never served
    assert session.directory.rejections


def test_unverified_protocol_accepts_poisoned_update():
    """The contrast case: without commitments the alteration goes through."""
    shards, _ = make_shards()
    session = FLSession(base_config(), model_factory(), shards,
                        num_ipfs_nodes=4,
                        behaviors={"aggregator-0": AlterUpdateBehavior(5.0)})
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    honest = FLSession(base_config(), model_factory(), shards,
                       num_ipfs_nodes=4)
    honest.run_iteration()
    poisoned_distance = np.max(np.abs(
        session.consensus_params() - honest.consensus_params()
    ))
    assert poisoned_distance > 1.0  # the poison landed


# -- multiple aggregators per partition ------------------------------------------------


def test_multi_aggregator_sync_produces_full_average():
    shards, _ = make_shards(num_trainers=8)
    config = base_config(aggregators_per_partition=2)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 8
    assert metrics.sync_delays  # the sync phase actually ran
    # The update must average over ALL 8 trainers, not one aggregator's 4.
    template = model_factory()()
    locals_ = []
    for index in range(8):
        delta = local_update(template, shards[index], config.train,
                             seed=config.seed + index)
        locals_.append(template.get_params() + delta)
    np.testing.assert_allclose(
        session.consensus_params(), np.mean(locals_, axis=0), atol=1e-12
    )


def test_multi_aggregator_verifiable():
    shards, _ = make_shards(num_trainers=8)
    config = base_config(aggregators_per_partition=2, verifiable=True)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 8
    assert not metrics.verification_failures


def test_dead_aggregator_taken_over_by_peer():
    shards, _ = make_shards(num_trainers=8)
    config = base_config(aggregators_per_partition=2, t_train=60.0,
                         t_sync=300.0, takeover_grace=10.0)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)
    # Silence one aggregator entirely (process never spawned = dropout).
    dead = session.aggregators.pop(0)
    metrics = session.run_iteration()
    assert dead.name in metrics.takeovers
    assert len(metrics.trainers_completed) == 8
    # All 8 trainers' data still reached the model (counter = 8).
    template = model_factory()()
    locals_ = []
    for index in range(8):
        delta = local_update(template, shards[index], config.train,
                             seed=config.seed + index)
        locals_.append(template.get_params() + delta)
    np.testing.assert_allclose(
        session.consensus_params(), np.mean(locals_, axis=0), atol=1e-12
    )


def test_malicious_partial_update_detected_by_peer():
    """In the multi-aggregator sync, a tampered partial fails the
    per-aggregator accumulated-commitment check and the peer takes over."""
    shards, _ = make_shards(num_trainers=8)
    config = base_config(aggregators_per_partition=2, verifiable=True,
                         t_train=60.0, t_sync=300.0, takeover_grace=10.0)
    session = FLSession(
        config, model_factory(), shards, num_ipfs_nodes=4,
        behaviors={"aggregator-0": AlterUpdateBehavior(offset=1.0)},
    )
    metrics = session.run_iteration()
    assert any("partial_update" in failure
               for failure in metrics.verification_failures)


# -- merge-and-download ---------------------------------------------------------------


def test_merge_and_download_correctness():
    shards, _ = make_shards(num_trainers=8)
    config = base_config(merge_and_download=True,
                         providers_per_aggregator=2)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 8
    assert sum(node.merges_served for node in session.nodes) > 0
    template = model_factory()()
    locals_ = []
    for index in range(8):
        delta = local_update(template, shards[index], config.train,
                             seed=config.seed + index)
        locals_.append(template.get_params() + delta)
    np.testing.assert_allclose(
        session.consensus_params(), np.mean(locals_, axis=0), atol=1e-12
    )


def test_merge_and_download_verifiable():
    shards, _ = make_shards(num_trainers=8)
    config = base_config(merge_and_download=True,
                         providers_per_aggregator=2, verifiable=True)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 8
    assert not metrics.verification_failures


def test_merge_reduces_aggregator_download_bytes():
    shards, _ = make_shards(num_trainers=8)
    merged = FLSession(base_config(merge_and_download=True,
                                   providers_per_aggregator=2),
                       model_factory(), shards, num_ipfs_nodes=4)
    naive = FLSession(base_config(merge_and_download=False),
                      model_factory(), shards, num_ipfs_nodes=4)
    merged_metrics = merged.run_iteration()
    naive_metrics = naive.run_iteration()
    assert (merged_metrics.mean_bytes_received
            < naive_metrics.mean_bytes_received / 2)


def test_corrupt_merge_provider_falls_back_to_individual_downloads():
    shards, _ = make_shards(num_trainers=4)
    config = base_config(merge_and_download=True,
                         providers_per_aggregator=1, verifiable=True)
    session = FLSession(config, model_factory(), shards, num_ipfs_nodes=2)
    # Corrupt every node AFTER trainers upload would break gets too; so
    # corrupt only merge responses by flipping served merges: mark the
    # provider corrupt, which taints both merge and get responses from it,
    # and rely on get()'s integrity fallback to the second node... with a
    # single provider there is no fallback, so instead verify the merged
    # check itself: tamper detection is already covered at unit level.
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4


# -- telemetry ---------------------------------------------------------------------------


def test_telemetry_fields_populated():
    shards, _ = make_shards()
    session = FLSession(base_config(), model_factory(), shards,
                        num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert metrics.first_gradient_at is not None
    assert metrics.mean_upload_delay > 0
    assert metrics.total_aggregation_delay >= metrics.aggregation_delay
    assert all(value > 0 for value in metrics.bytes_received.values())
    assert metrics.duration > 0


def test_session_metrics_averaging():
    shards, _ = make_shards()
    session = FLSession(base_config(), model_factory(), shards,
                        num_ipfs_nodes=4)
    session.run(rounds=2)
    mean_delay = session.metrics.mean_over_iterations("aggregation_delay")
    assert mean_delay is not None and mean_delay > 0
    assert session.metrics.latest().iteration == 1


def test_session_validation():
    with pytest.raises(ValueError):
        FLSession(base_config(), model_factory(), datasets=[])
