"""The NetworkProfile API redesign: the composable profile, the legacy
keyword-argument shim, and the curated top-level ``repro`` surface."""

import warnings

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    FLSession,
    NetworkProfile,
    ProtocolConfig,
    RetryPolicy,
)
from repro.ml import LogisticRegression, make_classification, split_iid


def make_shards(num_trainers=4, seed=0):
    data = make_classification(num_samples=120, num_features=6,
                               class_separation=3.0, seed=seed)
    return split_iid(data, num_trainers, seed=seed)


def factory():
    return LogisticRegression(num_features=6, num_classes=2, seed=0)


def config():
    return ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0)


# -- profile validation -----------------------------------------------------------


def test_default_profile_matches_legacy_defaults():
    profile = NetworkProfile()
    assert profile.num_ipfs_nodes == 8
    assert profile.bandwidth_mbps == 10.0
    assert profile.dht_mode == "table"
    # Robustness knobs default to the legacy behaviour (single attempt,
    # wait forever) so honest runs stay bit-identical.
    assert profile.retry is None
    assert profile.directory_request_timeout is None


@pytest.mark.parametrize("kwargs", [
    {"num_ipfs_nodes": 0},
    {"bandwidth_mbps": 0.0},
    {"aggregator_bandwidth_mbps": -1.0},
    {"trainer_bandwidths_mbps": (10.0, -1.0)},
    {"latency": -0.1},
    {"dht_lookup_delay": -0.1},
    {"dht_mode": "gossip"},
    {"directory_processing_delay": -1.0},
    {"replication_factor": 0},
    {"directory_request_timeout": 0.0},
    {"ipfs_request_timeout": 0.0},
])
def test_profile_rejects_invalid_values(kwargs):
    with pytest.raises(ValueError):
        NetworkProfile(**kwargs)


# -- the legacy shim --------------------------------------------------------------


def test_legacy_kwargs_warn_and_build_identical_testbed():
    shards = make_shards()
    with pytest.warns(DeprecationWarning, match="NetworkProfile"):
        legacy = FLSession(config(), factory, shards,
                           num_ipfs_nodes=4, bandwidth_mbps=12.0,
                           latency=0.01, replication_factor=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the new path must not warn
        modern = FLSession(
            config(), factory, shards,
            network=NetworkProfile(num_ipfs_nodes=4, bandwidth_mbps=12.0,
                                   latency=0.01, replication_factor=2),
        )
    assert legacy.fingerprint() == modern.fingerprint()
    assert legacy.network_profile == modern.network_profile


def test_new_path_defaults_match_no_arguments_at_all():
    shards = make_shards()
    bare = FLSession(config(), factory, shards)
    explicit = FLSession(config(), factory, shards,
                         network=NetworkProfile())
    assert bare.fingerprint() == explicit.fingerprint()


def test_unknown_kwarg_raises_type_error():
    with pytest.raises(TypeError, match="unexpected keyword"):
        FLSession(config(), factory, make_shards(), bandwith_mbps=10.0)


def test_network_plus_legacy_kwargs_raises_type_error():
    with pytest.raises(TypeError, match="not both"):
        FLSession(config(), factory, make_shards(),
                  network=NetworkProfile(), num_ipfs_nodes=4)


# -- fault-plan robustness defaults ------------------------------------------------


def brownout_plan():
    return FaultPlan.of(
        FaultSpec(kind="directory_brownout", at=1.0,
                  processing_delay=1.0, duration=5.0),
    )


def test_fault_plan_turns_robustness_knobs_on():
    shards = make_shards()
    session = FLSession(config(), factory, shards, faults=brownout_plan())
    assert session.network_profile.retry == RetryPolicy()
    assert session.network_profile.directory_request_timeout == 15.0


def test_explicit_robustness_knobs_survive_fault_plan():
    shards = make_shards()
    pinned = NetworkProfile(retry=RetryPolicy(max_attempts=2),
                            directory_request_timeout=3.0)
    session = FLSession(config(), factory, shards, network=pinned,
                        faults=brownout_plan())
    assert session.network_profile.retry.max_attempts == 2
    assert session.network_profile.directory_request_timeout == 3.0


def test_no_fault_plan_keeps_legacy_single_attempt():
    shards = make_shards()
    session = FLSession(config(), factory, shards)
    assert session.network_profile.retry is None
    assert session.network_profile.directory_request_timeout is None
    assert session.faults is None


def test_empty_fault_plan_counts_as_honest():
    shards = make_shards()
    session = FLSession(config(), factory, shards, faults=FaultPlan())
    assert session.faults is None
    assert session.network_profile.retry is None


# -- the curated public surface ----------------------------------------------------


def test_top_level_surface_is_complete():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None, name
    # The headline types are importable from the package root.
    from repro import (  # noqa: F401
        EventBus,
        FaultPlan,
        FLSession,
        NetworkProfile,
        ProtocolConfig,
        SessionMetrics,
    )
