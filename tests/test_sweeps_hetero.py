"""Tests for the sweep utilities and heterogeneous-bandwidth topologies."""

import pytest

from repro.analysis import Sweep, SweepResults, grid
from repro.core import FLSession, ProtocolConfig
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.net import build_testbed, mbps


# -- Sweep / grid -----------------------------------------------------------------


def test_sweep_runs_in_order():
    sweep = Sweep("x", [3, 1, 2])
    results = sweep.run(lambda x: x * 10)
    assert results.parameters() == [3, 1, 2]
    assert results.values() == [30, 10, 20]


def test_sweep_argmin_argmax_shape():
    results = Sweep("p", [1, 2, 4, 8]).run(lambda p: (p - 4) ** 2)
    assert results.argmin() == 4
    assert results.argmax() == 8  # (8-4)^2 = 16 is the largest
    assert results.shape() == "u-shaped"


def test_sweep_with_key():
    results = Sweep("p", [1, 2]).run(lambda p: {"delay": 10.0 / p})
    assert results.argmin(key=lambda r: r["delay"]) == 2
    table = results.table("delay", key=lambda r: r["delay"])
    assert "delay" in table


def test_sweep_validation():
    with pytest.raises(ValueError):
        Sweep("x", [])
    with pytest.raises(ValueError):
        SweepResults("x").argmin()


def test_grid_cartesian_product():
    combos = grid(a=[1, 2], b=["x", "y"])
    assert len(combos) == 4
    assert {"a": 1, "b": "y"} in combos
    assert grid() == [{}]


# -- heterogeneous bandwidths ------------------------------------------------------------


def test_testbed_per_trainer_bandwidths():
    testbed = build_testbed(num_trainers=3, num_ipfs_nodes=1,
                            bandwidth_mbps=10.0,
                            trainer_bandwidths_mbps=[1.0, 10.0, 100.0])
    assert testbed.network.host("trainer-0").up_bandwidth == mbps(1.0)
    assert testbed.network.host("trainer-2").up_bandwidth == mbps(100.0)
    # Non-trainer hosts keep the base bandwidth.
    assert testbed.network.host("ipfs-0").up_bandwidth == mbps(10.0)


def test_testbed_bandwidth_list_length_checked():
    with pytest.raises(ValueError):
        build_testbed(num_trainers=3,
                      trainer_bandwidths_mbps=[1.0, 2.0])


def test_slow_trainer_stretches_upload_window():
    data = make_classification(num_samples=160, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    config = ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0)

    uniform = FLSession(
        config, lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4, bandwidth_mbps=10.0,
    )
    skewed = FLSession(
        config, lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4, bandwidth_mbps=10.0,
        trainer_bandwidths_mbps=[0.5, 10.0, 10.0, 10.0],
    )
    uniform_metrics = uniform.run_iteration()
    skewed_metrics = skewed.run_iteration()
    assert len(skewed_metrics.trainers_completed) == 4
    # The slow trainer's upload dominates its own delay and the round.
    assert (skewed_metrics.upload_delays["trainer-0"]
            > 10 * uniform_metrics.upload_delays["trainer-0"])
    assert (skewed_metrics.collection_time
            > uniform_metrics.collection_time)
    skewed.consensus_params()
