"""Incremental fair-share vs the from-scratch oracle.

The delta-based :class:`FlowScheduler` recomputation (only the
connected component whose flow set changed) and the numpy-vectorized
allocator must both be *float-equal* to the original progressive-fill
``max_min_rates`` — that equality is what lets the committed golden
manifests survive the scaling refactor.  Also covers the satellite
fixes that rode along: the residual clamp, the single-pass abort, the
wakeup cancellation counters, and the sub-ulp completion guard.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.bandwidth import (
    Flow,
    FlowScheduler,
    Link,
    TransferAbortedError,
    max_min_rates,
    max_min_rates_vectorized,
)
from repro.sim import Simulator

NUM_LINKS = 5

# One scheduler mutation: start a flow over a link subset, let simulated
# time pass, kill a link's flows, or mutate a link's capacity.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("start"),
            st.sets(st.integers(0, NUM_LINKS - 1), min_size=1, max_size=3),
            st.floats(1.0, 1000.0, allow_nan=False, allow_infinity=False),
        ),
        st.tuples(
            st.just("advance"),
            st.floats(0.01, 5.0, allow_nan=False, allow_infinity=False),
        ),
        st.tuples(st.just("abort"), st.integers(0, NUM_LINKS - 1)),
        st.tuples(
            st.just("capacity"),
            st.integers(0, NUM_LINKS - 1),
            st.floats(1.0, 500.0, allow_nan=False, allow_infinity=False),
        ),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_incremental_allocation_matches_oracle(ops):
    """After any interleaving, every live rate equals the oracle's.

    Equality is ``==``, not approx: the incremental path must follow
    the oracle's float arithmetic exactly, or seeded replays diverge.
    """
    sim = Simulator()
    # limit=0 forces component discovery even for tiny flow sets — the
    # production fast path would short-circuit to a global allocation.
    scheduler = FlowScheduler(sim, small_recompute_limit=0)
    links = [Link(f"l{i}", 10.0 * (i + 1)) for i in range(NUM_LINKS)]
    clock = 0.0
    for op in ops:
        if op[0] == "start":
            _, indices, size = op
            done = scheduler.start_flow(
                tuple(links[i] for i in sorted(indices)), size
            )
            done.defused()  # aborts are expected, not failures
        elif op[0] == "advance":
            clock += op[1]
            sim.run(until=clock)
        elif op[0] == "abort":
            scheduler.abort_flows([links[op[1]]])
        else:
            _, index, capacity = op
            links[index].capacity = capacity
            scheduler.rates_changed([links[index]])
        expected = max_min_rates(list(scheduler._flows))
        for flow in scheduler._flows:
            assert flow.rate == expected[flow]


@settings(max_examples=40, deadline=None)
@given(
    topology=st.lists(
        st.tuples(
            st.sets(st.integers(0, NUM_LINKS - 1), min_size=1, max_size=4),
            st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=60,
    ),
    capacities=st.lists(
        st.floats(0.5, 1e4, allow_nan=False, allow_infinity=False),
        min_size=NUM_LINKS,
        max_size=NUM_LINKS,
    ),
)
def test_vectorized_allocator_matches_oracle(topology, capacities):
    """The numpy path is bit-identical to the scalar progressive fill."""
    links = [Link(f"l{i}", capacities[i]) for i in range(NUM_LINKS)]
    flows = [
        Flow(flow_id, tuple(links[i] for i in sorted(indices)), size,
             done=None)
        for flow_id, (indices, size) in enumerate(topology)
    ]
    scalar = max_min_rates(flows)
    vectorized = max_min_rates_vectorized(flows)
    for flow in flows:
        assert vectorized[flow] == scalar[flow]


def test_small_recompute_fast_path_matches_component_path():
    """Below the limit the scheduler allocates globally; rates must be
    identical to component-restricted recomputation (components never
    interact, so the extra flows just re-receive their old rates)."""
    def run(limit):
        sim = Simulator()
        scheduler = FlowScheduler(sim, small_recompute_limit=limit)
        links = [Link(f"l{i}", 10.0 + i) for i in range(4)]
        # Two independent components: {l0, l1} and {l2, l3}.
        for pair in [(0, 1), (0,), (2, 3), (3,), (1,), (2,)]:
            scheduler.start_flow(
                tuple(links[i] for i in pair), 500.0
            ).defused()
        sim.run(until=1.0)
        scheduler.abort_flows([links[3]])
        return {f.flow_id: f.rate for f in scheduler._flows}

    assert run(limit=64) == run(limit=0)


def test_vectorized_allocator_handles_infinite_links():
    inf = Link("inf", math.inf)
    narrow = Link("narrow", 10.0)
    constrained = Flow(0, (inf, narrow), 100.0, done=None)
    free = Flow(1, (inf,), 100.0, done=None)
    rates = max_min_rates_vectorized([constrained, free])
    assert rates[constrained] == 10.0
    assert math.isinf(rates[free])


def test_scheduler_uses_vectorized_path_above_threshold():
    """A large component goes through numpy and still matches the oracle."""
    sim = Simulator()
    scheduler = FlowScheduler(sim, vectorize_threshold=8)
    shared = Link("shared", 100.0)
    spurs = [Link(f"spur{i}", 5.0 + i) for i in range(12)]
    for spur in spurs:
        scheduler.start_flow((shared, spur), 1000.0).defused()
    expected = max_min_rates(list(scheduler._flows))
    assert len(scheduler._flows) >= 8
    for flow in scheduler._flows:
        assert flow.rate == expected[flow]


# -- residual clamp (satellite) ------------------------------------------------


def test_progressive_fill_residual_never_negative():
    """Many equal flows on one link drive the float residual to exactly 0.

    Before the clamp, repeated ``residual -= share`` subtraction left a
    tiny negative residual on the bottleneck, which could surface as a
    (harmlessly) negative rate for a later-frozen flow.  The clamp pins
    the floor at 0.0.
    """
    link = Link("l", 0.1)  # 0.1 is not a dyadic float: drift-prone
    side = Link("side", 1000.0)
    flows = [Flow(i, (link, side), 100.0, done=None) for i in range(7)]
    rates = max_min_rates(flows)
    assert all(rate >= 0.0 for rate in rates.values())
    assert sum(rates.values()) <= link.capacity + 1e-9


# -- abort + counters (satellite) ---------------------------------------------


def test_abort_is_single_pass_and_sorted():
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    dead = Link("dead", 10.0)
    alive = Link("alive", 10.0)
    events = [scheduler.start_flow((dead,), 100.0),
              scheduler.start_flow((alive,), 100.0),
              scheduler.start_flow((dead, alive), 100.0)]
    for event in events:
        event.defused()
    aborted = scheduler.abort_flows([dead])
    assert [flow.flow_id for flow in aborted] == [0, 2]
    assert scheduler.active_flows == 1
    # Survivor reclaims the full link after the shared flow died.
    survivor = scheduler._flows[0]
    assert survivor.rate == 10.0


def test_abort_of_idle_link_is_a_noop():
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    idle = Link("idle", 10.0)
    assert scheduler.abort_flows([idle]) == []


def test_wakeup_cancellation_counters():
    """Superseded wakeups are cancelled (removed from the heap), and no
    wakeup ever fires against a dead epoch."""
    link = Link("l", 10.0)
    sim = Simulator()
    scheduler = FlowScheduler(sim)

    def driver():
        first = scheduler.start_flow((link,), 100.0)
        yield sim.timeout(1.0)
        second = scheduler.start_flow((link,), 100.0)  # re-arms the wakeup
        yield first
        yield second

    sim.process(driver())
    sim.run()
    assert scheduler.cancelled_wakeups > 0
    assert scheduler.stale_wakeups == 0
    assert scheduler.active_flows == 0


# -- sub-ulp completion guard --------------------------------------------------


def test_sub_resolution_flow_completes_instead_of_livelocking():
    """A residual whose finish delay is below the clock's float ulp.

    At cohort-scale rates (10^8+ B/s) a flow can be left with remaining
    bytes just above the epsilon while ``remaining / rate`` is smaller
    than one ulp of ``sim.now`` — the armed wakeup then fires at the
    *same* timestamp and no progress is ever possible.  The guard must
    deliver the flow rather than spin forever.
    """
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    fast = Link("fast", 1e9)

    def driver():
        # Park the clock high so one ulp is coarse (~1.5e-5 at 1e11).
        yield sim.timeout(1e11)
        done = scheduler.start_flow((fast,), 2e-3)  # finish delay 2e-12
        yield done

    process = sim.process(driver())
    sim.run()
    assert process.processed
    assert scheduler.active_flows == 0
    assert scheduler.bytes_delivered == pytest.approx(2e-3)


def test_transfer_abort_error_is_exported():
    assert issubclass(TransferAbortedError, Exception)
