"""Coverage for small public APIs not exercised elsewhere."""

import pytest

from repro.analysis import format_row
from repro.ipfs import Block, chunk_object
from repro.net import Message, gbps, kib, kilobytes, mib

from tests.util import make_ipfs_world


def test_format_row_alignment():
    row = format_row([1, 2.5, None], widths=[4, 8, 4])
    assert row == "   1     2.500     -"


def test_unit_helpers():
    assert gbps(1) == 125_000_000.0
    assert kilobytes(2) == 2000.0
    assert kib(1) == 1024.0
    assert mib(2) == 2 * 1024 * 1024


def test_message_defaults():
    message = Message(src="a", dst="b", kind="k")
    assert message.payload is None
    assert message.size == 0.0
    assert message.request_id is None


def test_node_object_blocks():
    world = make_ipfs_world(num_nodes=1)
    node = world.node(0)
    data = bytes(range(256)) * 10
    cid = node.store_object(data)
    blocks = node.object_blocks(cid)
    assert blocks is not None
    assert blocks[0].cid == cid  # manifest first
    root, leaves = chunk_object(data, node.chunk_size)
    assert len(blocks) == 1 + len(leaves)
    from repro.ipfs import compute_cid
    assert node.object_blocks(compute_cid(b"missing")) is None


def test_node_object_blocks_bare_block():
    world = make_ipfs_world(num_nodes=1)
    node = world.node(0)
    block = Block(b"raw bytes, no manifest")
    node.store.put(block)
    blocks = node.object_blocks(block.cid)
    assert blocks == [block]


def test_unpin_object_missing_is_noop():
    world = make_ipfs_world(num_nodes=1)
    from repro.ipfs import compute_cid
    world.node(0).unpin_object(compute_cid(b"never stored"))


def test_unknown_message_kind_ignored_by_node():
    world = make_ipfs_world(num_nodes=1, client_names=("client-0",))
    client_endpoint = world.transport.endpoint("client-0")
    client_endpoint.send("ipfs-0", "ipfs.bogus", payload=None, size=10)
    world.sim.run()  # must not crash


def test_point_from_bytes_non_residue_x():
    """An x with no curve point (x^3+7 a non-residue) must be rejected."""
    from repro.crypto import Point, SECP256K1
    from repro.crypto.field import is_quadratic_residue
    x = 2
    while is_quadratic_residue(
        (x * x * x + SECP256K1.b) % SECP256K1.p, SECP256K1.p
    ):
        x += 1
    data = b"\x02" + x.to_bytes(32, "big")
    with pytest.raises(ValueError):
        Point.from_bytes(SECP256K1, data)


def test_commitment_cost_model_repr_paths():
    from repro.core import CommitmentCostModel
    model = CommitmentCostModel(1e-6)
    assert model.commit_delay(0) == 0.0
