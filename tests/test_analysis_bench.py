"""Tests for the host-cost bench trajectory (repro.analysis.bench)."""

import json

import pytest

from repro.analysis.bench import (
    BENCH_VERSION,
    BenchRecord,
    BenchTrajectory,
    MIN_GATED_SHARE,
    SHARE_THRESHOLD,
)
from repro.obs.profiling import HostProfile, ScopeStat


def _profile(wall=2.0, sim=100.0):
    return HostProfile(
        wall_seconds=wall, sim_seconds=sim, dispatches=10,
        scopes=(
            ScopeStat("kernel", "dispatch", "trainer", 5, 0.6, 0.6),
            ScopeStat("crypto", "commit", "trainer", 2, 0.3, 0.3),
            ScopeStat("obs", "subscriber", "TelemetryCollector", 1,
                      0.001, 0.001),
        ),
    )


def _record(wall=2.0, sim=100.0, scenario="fig1"):
    return BenchRecord.from_profile(_profile(wall, sim), scenario,
                                    iterations=2)


def test_from_profile_distills_the_gauge_and_shares():
    record = _record()
    assert record.scenario == "fig1"
    assert record.iterations == 2
    assert record.wall_per_iteration == pytest.approx(1.0)
    assert record.wall_per_sim == pytest.approx(0.02)
    assert record.sim_per_wall == pytest.approx(50.0)
    assert record.shares["kernel"] == pytest.approx(0.6 / 0.901)
    assert sum(record.shares.values()) == pytest.approx(1.0)


def test_manifest_gates_higher_is_worse_and_drops_tiny_shares():
    manifest = _record().to_manifest()
    assert "bench.wall_per_iteration" in manifest.counters
    assert "bench.wall_per_sim" in manifest.counters
    assert "bench.share.kernel" in manifest.counters
    # obs share ~0.1% < MIN_GATED_SHARE: in the record, not the gate.
    assert _record().shares["obs"] < MIN_GATED_SHARE
    assert "bench.share.obs" not in manifest.counters
    # Same scenario -> same fingerprint digest, any wall numbers.
    other = _record(wall=9.0, sim=1.0).to_manifest()
    assert manifest.fingerprint["digest"] == other.fingerprint["digest"]
    assert _record(scenario="p1000").to_manifest().fingerprint["digest"] \
        != manifest.fingerprint["digest"]


def test_trajectory_round_trips_and_missing_file_is_empty(tmp_path):
    path = tmp_path / "BENCH_profile.json"
    assert BenchTrajectory.load(path).scenarios == {}
    trajectory = BenchTrajectory()
    trajectory.append(_record())
    trajectory.append(_record(wall=1.8))
    trajectory.append(_record(scenario="p1000"))
    trajectory.save(path)
    loaded = BenchTrajectory.load(path)
    assert sorted(loaded.scenarios) == ["fig1", "p1000"]
    assert len(loaded.scenarios["fig1"]) == 2
    assert loaded.latest("fig1") == _record(wall=1.8)
    assert loaded.latest("absent") is None
    data = json.loads(path.read_text())
    assert data["version"] == BENCH_VERSION
    with pytest.raises(ValueError):
        BenchTrajectory.from_dict({"version": 99})


def test_compare_returns_none_without_a_baseline_record():
    trajectory = BenchTrajectory()
    assert trajectory.compare(_record()) is None
    trajectory.append(_record(scenario="p1000"))
    assert trajectory.compare(_record(scenario="fig1")) is None


def test_compare_flags_a_wall_clock_regression():
    trajectory = BenchTrajectory()
    trajectory.append(_record(wall=1.0))
    clean = trajectory.compare(_record(wall=1.1), threshold=0.25)
    assert clean is not None and not clean.has_regressions
    slow = trajectory.compare(_record(wall=2.0), threshold=0.25)
    assert slow.has_regressions
    regressed = {entry.metric for entry in slow.regressions}
    assert "bench.wall_per_iteration" in regressed
    assert "bench.wall_per_sim" in regressed
    # Shares are unchanged (same profile shape): never flagged.
    assert not any(metric.startswith("bench.share.")
                   for metric in regressed)


def test_share_metrics_use_the_looser_threshold():
    baseline = _profile()
    current = HostProfile(
        wall_seconds=2.0, sim_seconds=100.0, dispatches=10,
        scopes=(
            # kernel share drifts 0.666 -> 0.555 (~17% relative): noise.
            ScopeStat("kernel", "dispatch", "trainer", 5, 0.5, 0.5),
            ScopeStat("crypto", "commit", "trainer", 2, 0.4, 0.4),
        ),
    )
    trajectory = BenchTrajectory()
    trajectory.append(BenchRecord.from_profile(baseline, "fig1"))
    diff = trajectory.compare(
        BenchRecord.from_profile(current, "fig1"), threshold=0.10)
    share_regressions = {
        entry.metric for entry in diff.regressions
        if entry.metric.startswith("bench.share.")
    }
    # crypto grew 0.333 -> 0.444 (~33% relative) — above the 10%
    # wall threshold but under SHARE_THRESHOLD, so not flagged.
    assert 0.33 < SHARE_THRESHOLD
    assert not share_regressions
