"""Unit tests for the typed event bus (repro.obs.bus)."""

import pytest

from repro.obs import CountersRegistry, EventBus
from repro.obs.events import (
    DirectoryRequest,
    IterationFinished,
    IterationStarted,
    TakeoverPerformed,
    TransferCompleted,
    TransferStarted,
    VerificationFailed,
)


def started(at=0.0, iteration=0):
    return IterationStarted(at=at, iteration=iteration)


def finished(at=1.0, iteration=0):
    return IterationFinished(at=at, iteration=iteration)


# -- subscription and dispatch ---------------------------------------------------


def test_typed_subscriber_receives_only_its_type():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, IterationStarted)
    bus.publish(started())
    bus.publish(finished())
    assert len(seen) == 1
    assert isinstance(seen[0], IterationStarted)


def test_multi_type_subscription():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, IterationStarted, IterationFinished)
    bus.publish(started())
    bus.publish(finished())
    bus.publish(DirectoryRequest(at=0.0, kind="dir.lookup"))
    assert [type(e).__name__ for e in seen] == [
        "IterationStarted", "IterationFinished"
    ]


def test_wildcard_subscriber_receives_everything():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.publish(started())
    bus.publish(DirectoryRequest(at=0.0, kind="dir.lookup"))
    assert len(seen) == 2


def test_typed_handlers_run_before_wildcards():
    bus = EventBus()
    order = []
    bus.subscribe(lambda e: order.append("all"))
    bus.subscribe(lambda e: order.append("typed"), IterationStarted)
    bus.publish(started())
    assert order == ["typed", "all"]


def test_handler_on_both_registrations_sees_event_twice():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.subscribe(seen.append, IterationStarted)
    bus.publish(started())
    assert len(seen) == 2


def test_publish_without_subscribers_is_noop():
    bus = EventBus()
    bus.publish(started())  # must not raise


def test_handler_exception_propagates():
    bus = EventBus()

    def broken(event):
        raise RuntimeError("boom")

    bus.subscribe(broken, IterationStarted)
    with pytest.raises(RuntimeError, match="boom"):
        bus.publish(started())


# -- wants() / active: the zero-overhead guard -----------------------------------


def test_wants_false_on_fresh_bus():
    bus = EventBus()
    assert not bus.active
    assert not bus.wants(IterationStarted)
    assert not bus.wants(TransferCompleted)


def test_wants_tracks_exact_type_only():
    bus = EventBus()
    bus.subscribe(lambda e: None, TransferStarted)
    assert bus.wants(TransferStarted)
    assert not bus.wants(TransferCompleted)


def test_wildcard_makes_every_type_wanted():
    bus = EventBus()
    subscription = bus.subscribe(lambda e: None)
    assert bus.wants(TransferCompleted)
    assert bus.wants(DirectoryRequest)
    subscription.cancel()
    assert not bus.wants(TransferCompleted)


def test_wants_false_again_after_cancel():
    bus = EventBus()
    subscription = bus.subscribe(lambda e: None, IterationStarted)
    assert bus.wants(IterationStarted) and bus.active
    subscription.cancel()
    assert not bus.wants(IterationStarted)
    assert not bus.active


# -- Subscription lifecycle ------------------------------------------------------


def test_cancel_stops_delivery():
    bus = EventBus()
    seen = []
    subscription = bus.subscribe(seen.append, IterationStarted)
    bus.publish(started())
    subscription.cancel()
    bus.publish(started())
    assert len(seen) == 1


def test_cancel_is_idempotent():
    bus = EventBus()
    subscription = bus.subscribe(lambda e: None, IterationStarted)
    subscription.cancel()
    subscription.cancel()  # must not raise
    assert not subscription.active


def test_subscription_as_context_manager():
    bus = EventBus()
    seen = []
    with bus.subscribe(seen.append, IterationStarted):
        bus.publish(started())
    bus.publish(started())
    assert len(seen) == 1


def test_cancel_one_of_many_subscribers():
    bus = EventBus()
    first, second = [], []
    sub_first = bus.subscribe(first.append, IterationStarted)
    bus.subscribe(second.append, IterationStarted)
    sub_first.cancel()
    bus.publish(started())
    assert not first and len(second) == 1


def test_handler_may_unsubscribe_itself_mid_dispatch():
    bus = EventBus()
    seen = []
    holder = {}

    def once(event):
        seen.append(event)
        holder["sub"].cancel()

    holder["sub"] = bus.subscribe(once, IterationStarted)
    bus.publish(started())
    bus.publish(started())
    assert len(seen) == 1


def test_handler_may_cancel_a_peer_mid_dispatch():
    bus = EventBus()
    peer_seen = []
    holder = {}

    def assassin(event):
        holder["peer"].cancel()

    # The assassin registers first, so it runs first; the peer must not
    # blow up dispatch by having been removed from the handler list.
    bus.subscribe(assassin, IterationStarted)
    holder["peer"] = bus.subscribe(peer_seen.append, IterationStarted)
    bus.publish(started())
    bus.publish(started())
    # The copy taken at dispatch time still delivers the first event.
    assert len(peer_seen) == 1


# -- adversarial-path counters ---------------------------------------------------
# (Honest runs emit neither event, so these paths need direct coverage.)


def test_counters_count_verification_failures_total_and_by_scope():
    bus = EventBus()
    counters = CountersRegistry(bus)
    bus.publish(VerificationFailed(at=1.0, iteration=0, label="u/p0/i0",
                                   scope="update"))
    bus.publish(VerificationFailed(at=2.0, iteration=0, label="p/p0/i0",
                                   scope="partial_update"))
    bus.publish(VerificationFailed(at=3.0, iteration=1, label="u/p1/i1",
                                   scope="update"))
    assert counters.get("protocol.verification_failures") == 3
    assert counters.get("protocol.verification_failures.update") == 2
    assert counters.get("protocol.verification_failures.partial_update") == 1
    assert counters.get("protocol.verification_failures.trainer") == 0.0


def test_counters_count_takeovers():
    bus = EventBus()
    counters = CountersRegistry(bus)
    bus.publish(TakeoverPerformed(at=5.0, iteration=2,
                                  aggregator="aggregator-0",
                                  peer="aggregator-1"))
    bus.publish(TakeoverPerformed(at=6.0, iteration=2,
                                  aggregator="aggregator-0",
                                  peer="aggregator-2"))
    assert counters.get("protocol.takeovers") == 2
    counters.close()
    bus.publish(TakeoverPerformed(at=7.0, iteration=3,
                                  aggregator="aggregator-0",
                                  peer="aggregator-1"))
    assert counters.get("protocol.takeovers") == 2  # closed: frozen
