"""Unit tests for Store, FilterStore, Resource and Container."""

import pytest

from repro.sim import (
    Container,
    FilterStore,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


# -- Store ------------------------------------------------------------------


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        yield store.put("item")

    def consumer(sim, store):
        item = yield store.get()
        got.append(item)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == ["item"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(5.0)
        yield store.put("late")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [(5.0, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [0, 1, 2]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim, store):
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(10.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert log == [("put-a", 0.0), ("got", "a", 10.0), ("put-b", 10.0)]


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    store.put("y")
    sim.run()
    assert len(store) == 2


def test_multiple_consumers_each_get_one():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store, name):
        item = yield store.get()
        got.append((name, item))

    sim.process(consumer(sim, store, "c1"))
    sim.process(consumer(sim, store, "c2"))
    store.put("first")
    store.put("second")
    sim.run()
    assert got == [("c1", "first"), ("c2", "second")]


# -- FilterStore --------------------------------------------------------------


def test_filter_store_selects_by_predicate():
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    sim.process(consumer(sim, store))
    store.put(1)
    store.put(3)
    store.put(4)
    sim.run()
    assert got == [4]
    assert store.items == [1, 3]


def test_filter_store_waits_for_matching_item():
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get(lambda x: x == "target")
        got.append((sim.now, item))

    def producer(sim, store):
        yield store.put("noise")
        yield sim.timeout(3.0)
        yield store.put("target")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [(3.0, "target")]


def test_filter_store_none_predicate_is_fifo():
    sim = Simulator()
    store = FilterStore(sim)
    store.put("a")
    store.put("b")
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append(item)

    sim.process(consumer(sim, store))
    sim.run()
    assert got == ["a"]


# -- Resource -----------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    log = []

    def user(sim, resource, name, hold):
        request = resource.request()
        yield request
        log.append((name, "acquired", sim.now))
        yield sim.timeout(hold)
        resource.release(request)

    sim.process(user(sim, resource, "u1", 5.0))
    sim.process(user(sim, resource, "u2", 5.0))
    sim.process(user(sim, resource, "u3", 1.0))
    sim.run()
    assert log == [
        ("u1", "acquired", 0.0),
        ("u2", "acquired", 0.0),
        ("u3", "acquired", 5.0),
    ]


def test_resource_count():
    sim = Simulator()
    resource = Resource(sim, capacity=3)

    def holder(sim, resource):
        request = resource.request()
        yield request
        yield sim.timeout(10.0)
        resource.release(request)

    sim.process(holder(sim, resource))
    sim.process(holder(sim, resource))
    sim.run(until=5.0)
    assert resource.count == 2
    sim.run()
    assert resource.count == 0


def test_resource_release_is_idempotent():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def user(sim, resource):
        request = resource.request()
        yield request
        resource.release(request)
        resource.release(request)  # second release is a no-op

    sim.process(user(sim, resource))
    sim.run()
    assert resource.count == 0


def test_resource_release_unknown_request_raises():
    sim = Simulator()
    r1 = Resource(sim, capacity=1)
    r2 = Resource(sim, capacity=1)
    request = r1.request()
    sim.run()
    with pytest.raises(SimulationError):
        r2.release(request)


def test_resource_cancel_waiting_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    sim.run()
    assert first.triggered and not second.triggered
    resource.release(second)  # cancel from the wait queue
    resource.release(first)
    sim.run()
    assert resource.count == 0


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# -- Container ----------------------------------------------------------------


def test_container_levels():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=50.0)
    assert tank.level == 50.0

    def producer(sim, tank):
        yield tank.put(25.0)

    def consumer(sim, tank):
        yield tank.get(60.0)

    sim.process(producer(sim, tank))
    sim.process(consumer(sim, tank))
    sim.run()
    assert tank.level == 15.0


def test_container_get_blocks_until_available():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    log = []

    def consumer(sim, tank):
        yield tank.get(5.0)
        log.append(sim.now)

    def producer(sim, tank):
        yield sim.timeout(7.0)
        yield tank.put(5.0)

    sim.process(consumer(sim, tank))
    sim.process(producer(sim, tank))
    sim.run()
    assert log == [7.0]


def test_container_put_blocks_when_full():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=10.0)
    log = []

    def producer(sim, tank):
        yield tank.put(3.0)
        log.append(sim.now)

    def consumer(sim, tank):
        yield sim.timeout(4.0)
        yield tank.get(5.0)

    sim.process(producer(sim, tank))
    sim.process(consumer(sim, tank))
    sim.run()
    assert log == [4.0]


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=10.0, init=11.0)
    tank = Container(sim, capacity=10.0)
    with pytest.raises(ValueError):
        tank.put(-1.0)
    with pytest.raises(ValueError):
        tank.get(0.0)
    with pytest.raises(ValueError):
        tank.put(11.0)
