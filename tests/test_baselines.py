"""Tests for the three baseline systems, including cross-system
model-equivalence (all four architectures compute the same FedAvg)."""

import numpy as np
import pytest

from repro.baselines import (
    Block,
    BlockchainFLSession,
    CentralizedSession,
    Chain,
    DirectIPLSSession,
)
from repro.baselines.blockchain import GENESIS, blob_hash
from repro.core import FLSession, ProtocolConfig
from repro.ml import LogisticRegression, make_classification, split_iid


def make_shards(num_trainers=4, seed=0):
    data = make_classification(num_samples=200, num_features=6,
                               class_separation=3.0, seed=seed)
    return split_iid(data, num_trainers, seed=seed)


def factory():
    return LogisticRegression(num_features=6, num_classes=2, seed=0)


def config(**overrides):
    defaults = dict(num_partitions=2, t_train=300.0, t_sync=500.0)
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


# -- DirectIPLSSession -----------------------------------------------------------


def test_direct_ipls_completes_round():
    shards = make_shards()
    session = DirectIPLSSession(config(), factory, shards)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    session.consensus_params()


def test_direct_ipls_multi_aggregator():
    shards = make_shards(num_trainers=8)
    session = DirectIPLSSession(config(aggregators_per_partition=2),
                                factory, shards)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 8
    assert metrics.sync_delays
    session.consensus_params()


def test_direct_ipls_faster_than_indirect_naive():
    """Fig. 1's point: direct beats indirect-without-merge."""
    shards = make_shards(num_trainers=8)
    direct = DirectIPLSSession(config(), factory, shards,
                               bandwidth_mbps=10.0)
    indirect = FLSession(config(merge_and_download=False), factory, shards,
                         num_ipfs_nodes=8, bandwidth_mbps=10.0)
    direct_metrics = direct.run_iteration()
    indirect_metrics = indirect.run_iteration()
    assert (direct_metrics.total_aggregation_delay
            < indirect_metrics.total_aggregation_delay)


def test_direct_ipls_validation():
    with pytest.raises(ValueError):
        DirectIPLSSession(config(), factory, datasets=[])


# -- CentralizedSession -------------------------------------------------------------


def test_centralized_completes_round():
    shards = make_shards()
    session = CentralizedSession(config(), factory, shards)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    assert metrics.bytes_received["server"] > 0
    session.consensus_params()


def test_centralized_server_is_bandwidth_bottleneck():
    """All updates funnel through one NIC: slower than the partitioned
    decentralized design at equal per-host bandwidth."""
    shards = make_shards(num_trainers=8)
    central = CentralizedSession(config(), factory, shards,
                                 bandwidth_mbps=10.0)
    central_metrics = central.run_iteration()
    # The server received all 8 full models.
    model_bytes = (factory().num_params() + 1) * 8
    assert central_metrics.bytes_received["server"] >= 8 * model_bytes


def test_centralized_validation():
    with pytest.raises(ValueError):
        CentralizedSession(config(), factory, datasets=[])


# -- BlockchainFLSession --------------------------------------------------------------


def test_chain_genesis_and_append():
    chain = Chain()
    assert chain.head is GENESIS
    block = Block(index=1, prev_hash=GENESIS.hash, iteration=0,
                  update_hashes=("a",), aggregate_hash="b")
    chain.append(block)
    assert chain.height == 1
    assert chain.validate()


def test_chain_rejects_bad_link():
    chain = Chain()
    bad = Block(index=1, prev_hash="f" * 64, iteration=0,
                update_hashes=(), aggregate_hash="")
    with pytest.raises(ValueError):
        chain.append(bad)


def test_chain_validate_detects_tampering():
    chain = Chain()
    b1 = Block(index=1, prev_hash=GENESIS.hash, iteration=0,
               update_hashes=("x",), aggregate_hash="y")
    chain.append(b1)
    chain.blocks[1] = Block(index=1, prev_hash=GENESIS.hash, iteration=0,
                            update_hashes=("TAMPERED",), aggregate_hash="y")
    b2 = Block(index=2, prev_hash=b1.hash, iteration=1,
               update_hashes=(), aggregate_hash="")
    chain.blocks.append(b2)
    assert not chain.validate()


def test_block_hash_changes_with_content():
    b1 = Block(index=1, prev_hash="0" * 64, iteration=0,
               update_hashes=("a",), aggregate_hash="h")
    b2 = Block(index=1, prev_hash="0" * 64, iteration=0,
               update_hashes=("b",), aggregate_hash="h")
    assert b1.hash != b2.hash


def test_bcfl_completes_round_and_chains_agree():
    shards = make_shards()
    session = BlockchainFLSession(config(), factory, shards, num_miners=3)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    assert session.chains_consistent()
    for chain in session.chains.values():
        assert chain.height == 1
    session.consensus_params()


def test_bcfl_storage_blowup():
    """Every miner stores every update: total storage ~ miners x updates."""
    shards = make_shards(num_trainers=4)
    session = BlockchainFLSession(config(), factory, shards, num_miners=4)
    session.run_iteration()
    update_bytes = (factory().num_params() + 1) * 8
    # 4 miners x (4 updates + 1 aggregate) payloads, plus headers.
    assert session.total_miner_storage() >= 4 * 4 * update_bytes


def test_bcfl_moves_more_bytes_than_decentralized():
    # A larger model so payloads dominate the fixed per-message overheads.
    data = make_classification(num_samples=400, num_features=200,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 8, seed=0)

    def big_factory():
        return LogisticRegression(num_features=200, num_classes=2, seed=0)

    bcfl = BlockchainFLSession(config(), big_factory, shards, num_miners=4)
    ours = FLSession(config(), big_factory, shards, num_ipfs_nodes=4)
    bcfl_metrics = bcfl.run_iteration()
    ours_metrics = ours.run_iteration()
    bcfl_bytes = sum(bcfl_metrics.bytes_received.values())
    ours_bytes = sum(ours_metrics.bytes_received.values())
    assert bcfl_bytes > 2 * ours_bytes


def test_bcfl_multiple_rounds_extend_chain():
    shards = make_shards()
    session = BlockchainFLSession(config(), factory, shards, num_miners=2)
    session.run(rounds=3)
    assert all(chain.height == 3 for chain in session.chains.values())
    assert session.chains_consistent()


def test_bcfl_validation():
    with pytest.raises(ValueError):
        BlockchainFLSession(config(), factory, datasets=[])
    with pytest.raises(ValueError):
        BlockchainFLSession(config(), factory, make_shards(), num_miners=0)


# -- cross-system equivalence -----------------------------------------------------------


def test_all_architectures_compute_identical_model():
    """Centralized, direct IPLS, BCFL and our protocol must produce the
    exact same FedAvg model from the same seeds — the strongest form of
    the paper's convergence-equivalence claim."""
    shards = make_shards(num_trainers=4, seed=9)
    cfg = config()
    ours = FLSession(cfg, factory, shards, num_ipfs_nodes=4)
    direct = DirectIPLSSession(cfg, factory, shards)
    central = CentralizedSession(cfg, factory, shards)
    bcfl = BlockchainFLSession(cfg, factory, shards, num_miners=2)
    ours.run_iteration()
    direct.run_iteration()
    central.run_iteration()
    bcfl.run_iteration()
    reference = ours.consensus_params()
    np.testing.assert_allclose(direct.consensus_params(), reference,
                               atol=1e-12)
    np.testing.assert_allclose(central.consensus_params(), reference,
                               atol=1e-12)
    np.testing.assert_allclose(bcfl.consensus_params(), reference,
                               atol=1e-12)
