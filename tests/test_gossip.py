"""Tests for the gossip FL baseline."""

import numpy as np
import pytest

from repro.baselines.gossip import GossipFLSession
from repro.core import ProtocolConfig
from repro.ml import (
    LogisticRegression,
    accuracy,
    make_classification,
    split_dirichlet,
    split_iid,
)


def factory():
    return LogisticRegression(num_features=8, num_classes=2, seed=0)


def config():
    return ProtocolConfig(num_partitions=2, t_train=300.0, t_sync=600.0)


def make_shards(num_trainers=6, seed=0):
    data = make_classification(num_samples=300, num_features=8,
                               class_separation=3.0, seed=seed)
    return split_iid(data, num_trainers, seed=seed)


def test_gossip_round_completes():
    session = GossipFLSession(config(), factory, make_shards(), fanout=2)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 6
    assert all(value > 0 for value in metrics.bytes_received.values())


def test_gossip_models_diverge_but_learn():
    session = GossipFLSession(config(), factory, make_shards(), fanout=2)
    session.run(rounds=3)
    assert session.model_divergence() > 0  # no consensus, by design
    data = make_classification(num_samples=300, num_features=8,
                               class_separation=3.0, seed=0)
    accuracies = [
        accuracy(session.models[name], data)
        for name in session.trainer_names
    ]
    assert np.mean(accuracies) > 0.8  # it does learn


def test_gossip_divergence_shrinks_with_full_fanout():
    shards = make_shards(num_trainers=4)
    sparse = GossipFLSession(config(), factory, shards, fanout=1, seed=3)
    dense = GossipFLSession(config(), factory, shards, fanout=3, seed=3)
    sparse.run(rounds=3)
    dense.run(rounds=3)
    assert dense.model_divergence() < sparse.model_divergence()


def test_gossip_bytes_scale_with_fanout():
    shards = make_shards(num_trainers=6)
    low = GossipFLSession(config(), factory, shards, fanout=1, seed=1)
    high = GossipFLSession(config(), factory, shards, fanout=4, seed=1)
    low_metrics = low.run_iteration()
    high_metrics = high.run_iteration()
    assert (sum(high_metrics.bytes_received.values())
            > 2 * sum(low_metrics.bytes_received.values()))


def test_gossip_fanout_capped_at_population():
    session = GossipFLSession(config(), factory, make_shards(3), fanout=99)
    assert session.fanout == 2
    session.run_iteration()


def test_gossip_validation():
    with pytest.raises(ValueError):
        GossipFLSession(config(), factory, [], fanout=2)
    with pytest.raises(ValueError):
        GossipFLSession(config(), factory, make_shards(), fanout=0)


def test_gossip_reproducible_given_seed():
    shards = make_shards(num_trainers=4)
    a = GossipFLSession(config(), factory, shards, fanout=2, seed=7)
    b = GossipFLSession(config(), factory, shards, fanout=2, seed=7)
    a.run(rounds=2)
    b.run(rounds=2)
    np.testing.assert_allclose(a.mean_params(), b.mean_params())
    assert a.model_divergence() == pytest.approx(b.model_divergence())
