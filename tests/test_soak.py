"""Soak test: many rounds with the full feature set enabled at once.

Catches cross-feature interactions (verifiability + merge + batching +
Kademlia + replication + GC + multi-aggregator) that single-feature
tests cannot."""

import numpy as np

from repro.core import FLSession, ProtocolConfig
from repro.ml import (
    LogisticRegression,
    TrainConfig,
    accuracy,
    make_classification,
    split_dirichlet,
    train_test_split,
)

ROUNDS = 6


def test_everything_on_for_many_rounds():
    data = make_classification(num_samples=800, num_features=12,
                               num_classes=3, class_separation=2.5, seed=31)
    train, test = train_test_split(data, seed=31)
    shards = split_dirichlet(train, 8, alpha=0.5, seed=31)
    config = ProtocolConfig(
        num_partitions=2,
        aggregators_per_partition=2,
        t_train=120.0,
        t_sync=400.0,
        takeover_grace=20.0,
        merge_and_download=True,
        providers_per_aggregator=2,
        verifiable=True,
        batch_registration=True,
        trainer_verification=True,
        trainer_jitter=5.0,
    )
    config.train = TrainConfig(epochs=1, learning_rate=0.4, batch_size=32)
    session = FLSession(
        config,
        lambda: LogisticRegression(num_features=12, num_classes=3, seed=0),
        shards,
        num_ipfs_nodes=4,
        dht_mode="kademlia",
        replication_factor=2,
    )
    storage_after_gc = []
    for _ in range(ROUNDS):
        metrics = session.run_iteration()
        assert len(metrics.trainers_completed) == 8
        assert metrics.verification_failures == []
        session.collect_garbage(keep_iterations=1)
        storage_after_gc.append(session.storage_bytes)
    # Consensus holds, learning happened, storage stayed bounded.
    session.consensus_params()
    assert accuracy(session.model_of(0), test) > 0.85
    assert max(storage_after_gc) < 3 * min(storage_after_gc)
    assert session.dht.rpcs > 0
    assert session.cluster.replications > 0
