"""Tests for datasets, federated partitioners, training and reference FedAvg."""

import numpy as np
import pytest

from repro.ml import (
    Dataset,
    LogisticRegression,
    TrainConfig,
    accuracy,
    compute_gradient,
    fedavg_aggregate,
    local_update,
    make_classification,
    make_regression,
    mean_loss,
    model_distance,
    run_fedavg,
    run_fedsgd,
    split_dirichlet,
    split_iid,
    split_shards,
    train_test_split,
)


# -- datasets --------------------------------------------------------------------


def test_make_classification_shapes():
    data = make_classification(num_samples=100, num_features=7,
                               num_classes=3)
    assert data.X.shape == (100, 7)
    assert data.y.shape == (100,)
    assert set(np.unique(data.y)) <= {0, 1, 2}
    assert data.num_features == 7
    assert len(data) == 100


def test_make_classification_reproducible():
    a = make_classification(seed=42)
    b = make_classification(seed=42)
    np.testing.assert_array_equal(a.X, b.X)


def test_make_regression_teacher_signal():
    data = make_regression(num_samples=2000, num_features=3,
                           noise=0.01, seed=1)
    # Targets should correlate strongly with a least-squares fit.
    coeffs, *_ = np.linalg.lstsq(data.X, data.y, rcond=None)
    residual = data.y - data.X @ coeffs
    assert np.std(residual) < 0.05


def test_dataset_validation():
    with pytest.raises(ValueError):
        Dataset(np.zeros((3, 2)), np.zeros(4))


def test_train_test_split_partitions():
    data = make_classification(num_samples=100)
    train, test = train_test_split(data, test_fraction=0.25, seed=0)
    assert len(train) == 75 and len(test) == 25
    with pytest.raises(ValueError):
        train_test_split(data, test_fraction=1.5)


# -- partitioners -----------------------------------------------------------------


def test_split_iid_covers_everything():
    data = make_classification(num_samples=103)
    shards = split_iid(data, 4)
    assert sum(len(s) for s in shards) == 103
    assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1


def test_split_iid_validation():
    data = make_classification(num_samples=10)
    with pytest.raises(ValueError):
        split_iid(data, 0)
    with pytest.raises(ValueError):
        split_iid(data, 11)


def test_split_dirichlet_covers_everything():
    data = make_classification(num_samples=300, num_classes=4)
    shards = split_dirichlet(data, 5, alpha=0.5, seed=1)
    assert sum(len(s) for s in shards) == 300
    assert all(len(s) >= 1 for s in shards)


def test_split_dirichlet_small_alpha_is_skewed():
    data = make_classification(num_samples=600, num_classes=3, seed=2)
    shards = split_dirichlet(data, 3, alpha=0.05, seed=3)
    # With tiny alpha, at least one client should be dominated by one class.
    dominances = []
    for shard in shards:
        _, counts = np.unique(shard.y, return_counts=True)
        dominances.append(counts.max() / counts.sum())
    assert max(dominances) > 0.8


def test_split_dirichlet_validation():
    data = make_classification(num_samples=50)
    with pytest.raises(ValueError):
        split_dirichlet(data, 0)
    with pytest.raises(ValueError):
        split_dirichlet(data, 2, alpha=0.0)


def test_split_shards_limits_classes_per_client():
    data = make_classification(num_samples=400, num_classes=8, seed=4)
    shards = split_shards(data, num_clients=8, shards_per_client=2, seed=5)
    assert sum(len(s) for s in shards) == 400
    for shard in shards:
        assert len(np.unique(shard.y)) <= 4  # few classes per client


def test_split_shards_validation():
    data = make_classification(num_samples=10)
    with pytest.raises(ValueError):
        split_shards(data, num_clients=0)
    with pytest.raises(ValueError):
        split_shards(data, num_clients=6, shards_per_client=2)


# -- training ----------------------------------------------------------------------


def test_train_config_validation():
    with pytest.raises(ValueError):
        TrainConfig(learning_rate=0.0)
    with pytest.raises(ValueError):
        TrainConfig(epochs=0)
    with pytest.raises(ValueError):
        TrainConfig(batch_size=0)


def test_compute_gradient_matches_model():
    data = make_classification(num_samples=50, num_features=4)
    model = LogisticRegression(num_features=4)
    gradient = compute_gradient(model, data)
    _, expected = model.loss_and_gradient(data.X, data.y)
    np.testing.assert_array_equal(gradient, expected)


def test_local_update_does_not_mutate_model():
    data = make_classification(num_samples=50, num_features=4)
    model = LogisticRegression(num_features=4)
    before = model.get_params().copy()
    local_update(model, data, TrainConfig(epochs=2))
    np.testing.assert_array_equal(model.get_params(), before)


def test_local_update_reduces_loss():
    data = make_classification(num_samples=200, num_features=4,
                               class_separation=3.0)
    model = LogisticRegression(num_features=4)
    delta = local_update(model, data, TrainConfig(epochs=5,
                                                  learning_rate=0.5))
    before = mean_loss(model, data)
    model.set_params(model.get_params() + delta)
    assert mean_loss(model, data) < before


def test_local_update_deterministic_given_seed():
    data = make_classification(num_samples=50, num_features=4)
    model = LogisticRegression(num_features=4)
    d1 = local_update(model, data, TrainConfig(), seed=7)
    d2 = local_update(model, data, TrainConfig(), seed=7)
    np.testing.assert_array_equal(d1, d2)


# -- reference FedAvg/FedSGD ----------------------------------------------------------


def test_fedavg_aggregate_is_mean():
    updates = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
    np.testing.assert_allclose(fedavg_aggregate(updates), [2.0, 3.0])
    with pytest.raises(ValueError):
        fedavg_aggregate([])


def test_run_fedavg_converges_iid():
    data = make_classification(num_samples=600, num_features=5,
                               num_classes=2, class_separation=3.0, seed=6)
    train, test = train_test_split(data, seed=6)
    clients = split_iid(train, 4, seed=6)
    model = LogisticRegression(num_features=5, num_classes=2)
    result = run_fedavg(model, clients, rounds=10,
                        config=TrainConfig(epochs=2, learning_rate=0.5),
                        test_set=test)
    assert result.test_accuracy[-1] > 0.9
    assert result.train_loss[-1] < result.train_loss[0]


def test_fedsgd_equals_centralized_gradient_descent():
    """With equal shard sizes, averaged FedSGD == centralized full-batch GD."""
    data = make_classification(num_samples=400, num_features=4, seed=7)
    clients = split_iid(data, 4, seed=7)
    fed_model = LogisticRegression(num_features=4, seed=8)
    central_model = LogisticRegression(num_features=4, seed=8)

    run_fedsgd(fed_model, clients, rounds=5, learning_rate=0.3)

    for _ in range(5):
        grads = [compute_gradient(central_model, shard) for shard in clients]
        step = np.mean(grads, axis=0)
        central_model.set_params(central_model.get_params() - 0.3 * step)

    assert model_distance(fed_model, central_model) < 1e-12


def test_metrics_accuracy_bounds():
    data = make_classification(num_samples=50, num_features=3,
                               class_separation=5.0)
    model = LogisticRegression(num_features=3)
    value = accuracy(model, data)
    assert 0.0 <= value <= 1.0
