"""Tests for the online anomaly watchdog and its detectors."""

import json

import pytest

from repro.obs import (
    ANOMALY_KINDS,
    AnomalyDetected,
    AnomalyWatchdog,
    ConvergenceDetector,
    CountersRegistry,
    Detector,
    EventBus,
    FakeWallClock,
    FlightRecorder,
    PerfettoExporter,
    ProgressReporter,
    QueueRunawayDetector,
    RetryStormDetector,
    SAMPLED_EVENT_FAMILIES,
    SamplingPolicy,
    SimStallDetector,
    ThroughputCollapseDetector,
    TrainingEvaluated,
    format_heartbeat,
)
from repro.obs.anomaly import default_detectors
from repro.obs.events import (
    GradientRegistered,
    IterationFinished,
    IterationStarted,
    RetryExhausted,
    TransferAborted,
    TransferStarted,
)
from repro.sim import Simulator


def abort(at):
    return TransferAborted(at=at, src="a", dst="b", size=1.0,
                           reason="link_down")


def exhausted(at):
    return RetryExhausted(at=at, actor="trainer-0",
                          operation="ipfs.get", attempts=3)


def registered(at, iteration=0, uploader="trainer-0"):
    return GradientRegistered(at=at, iteration=iteration,
                              uploader=uploader, partition_id=0)


# -- retry storm -----------------------------------------------------------------


def test_retry_storm_fires_once_then_rearms_after_quiet_window():
    detector = RetryStormDetector(window=60.0, min_events=3)
    assert not list(detector.observe(abort(1.0)))
    assert not list(detector.observe(abort(2.0)))
    fired = list(detector.observe(abort(3.0)))
    assert len(fired) == 1
    anomaly = fired[0]
    assert anomaly.kind == "retry_storm"
    assert anomaly.severity == "warning"  # aborts only, no exhaustion
    assert anomaly.evidence_dict()["events_in_window"] == 3
    # Disarmed: the sustained storm does not flood.
    assert not list(detector.observe(abort(4.0)))
    # A quiet tick far past the window re-arms ...
    detector.on_tick(500.0)
    # ... and a fresh burst fires again.
    assert not list(detector.observe(abort(501.0)))
    assert not list(detector.observe(abort(502.0)))
    assert len(list(detector.observe(abort(503.0)))) == 1


def test_retry_storm_exhaustion_escalates_to_critical():
    detector = RetryStormDetector(window=60.0, min_events=3)
    detector.observe(abort(1.0))
    detector.observe(abort(2.0))
    fired = list(detector.observe(exhausted(3.0)))
    assert fired[0].severity == "critical"
    assert fired[0].evidence_dict()["retry_exhausted"] == 1


def test_retry_storm_steady_rate_fires_at_most_once():
    # A steady abort rate is a storm only against the initial empty
    # baseline; once the trailing window is populated the 4x factor is
    # never met again and the disarmed detector stays quiet.
    detector = RetryStormDetector(window=60.0, min_events=3,
                                  storm_factor=4.0)
    fired = []
    for at in (10.0, 30.0, 50.0, 70.0, 90.0, 110.0, 130.0, 150.0):
        fired.extend(detector.observe(abort(at)))
        detector.on_tick(at)  # give it every chance to re-arm
    assert len(fired) == 1


# -- throughput collapse ---------------------------------------------------------


def test_throughput_collapse_gap_path_fires_once_per_round():
    detector = ThroughputCollapseDetector(
        expected_per_iteration=6, min_gap=5.0, gap_factor=8.0,
        warmup_gaps=3)
    detector.observe(IterationStarted(at=0.0, iteration=0,
                                      t_train=600.0, t_sync=1200.0))
    for at in (1.0, 1.5, 2.0):  # 2 gaps of 0.5 each
        detector.observe(registered(at))
    detector.observe(registered(2.5))  # 3rd gap -> warmup met
    assert not list(detector.on_tick(3.0))
    fired = list(detector.on_tick(60.0))  # 57.5s gap >> floor
    assert len(fired) == 1
    anomaly = fired[0]
    assert anomaly.kind == "throughput_collapse"
    assert anomaly.severity == "warning"
    evidence = anomaly.evidence_dict()
    assert evidence["observed"] == 4 and evidence["expected"] == 6
    # Fire-once per round.
    assert not list(detector.on_tick(80.0))


def test_throughput_collapse_deadline_path_is_critical():
    detector = ThroughputCollapseDetector(expected_per_iteration=2)
    detector.observe(IterationStarted(at=0.0, iteration=3,
                                      t_train=100.0, t_sync=200.0))
    detector.observe(registered(1.0, iteration=3))
    assert not list(detector.on_tick(50.0))  # before the deadline
    fired = list(detector.on_tick(150.0))
    assert len(fired) == 1
    assert fired[0].severity == "critical"
    assert fired[0].iteration == 3
    assert fired[0].evidence_dict()["observed"] == 1


def test_throughput_collapse_disarms_when_round_completes():
    detector = ThroughputCollapseDetector(expected_per_iteration=2)
    detector.observe(IterationStarted(at=0.0, iteration=0,
                                      t_train=100.0, t_sync=200.0))
    detector.observe(registered(1.0))
    detector.observe(registered(2.0, uploader="trainer-1"))
    assert not list(detector.on_tick(150.0))  # complete: no alarm
    detector.observe(IterationFinished(at=160.0, iteration=0))
    assert not list(detector.on_tick(500.0))  # closed: no alarm


def test_throughput_collapse_inert_without_expected_count():
    detector = ThroughputCollapseDetector()
    detector.observe(IterationStarted(at=0.0, iteration=0,
                                      t_train=10.0, t_sync=20.0))
    assert not list(detector.on_tick(1000.0))


# -- queue runaway ---------------------------------------------------------------


class _FakeDirectory:
    """Quacks like DirectoryService.inbox_depth() for the depth probe."""

    def __init__(self):
        class _Inbox:
            items = []

        class _Endpoint:
            inbox = _Inbox()

        self.endpoint = _Endpoint()

    def inbox_depth(self):
        return len(self.endpoint.inbox.items)


def test_queue_runaway_fires_and_rearms_on_drain():
    directory = _FakeDirectory()
    detector = QueueRunawayDetector(directory=directory, queue_limit=8)
    directory.endpoint.inbox.items = list(range(20))
    fired = list(detector.on_tick(10.0))
    assert len(fired) == 1
    assert fired[0].kind == "queue_runaway"
    assert fired[0].severity == "critical"
    assert fired[0].evidence_dict()["depth"] == 20
    # Still over the limit: disarmed, one anomaly per overload.
    assert not list(detector.on_tick(11.0))
    # Drains to half the limit -> re-arms -> fires on the next spike.
    directory.endpoint.inbox.items = list(range(4))
    assert not list(detector.on_tick(12.0))
    directory.endpoint.inbox.items = list(range(30))
    assert len(list(detector.on_tick(13.0))) == 1


def test_queue_runaway_inert_without_directory():
    assert not list(QueueRunawayDetector().on_tick(5.0))


# -- sim stall -------------------------------------------------------------------


def test_sim_stall_fires_past_sync_deadline_margin():
    detector = SimStallDetector(stall_factor=0.25)
    detector.observe(IterationStarted(at=0.0, iteration=0,
                                      t_train=600.0, t_sync=1200.0))
    assert not list(detector.on_tick(1400.0))  # inside the 300s margin
    fired = list(detector.on_tick(1600.0))
    assert len(fired) == 1
    assert fired[0].kind == "sim_stall"
    assert fired[0].severity == "critical"
    assert fired[0].evidence_dict()["overrun"] == pytest.approx(400.0)
    assert not list(detector.on_tick(1700.0))  # once per round


def test_sim_stall_quiet_when_round_closes():
    detector = SimStallDetector()
    detector.observe(IterationStarted(at=0.0, iteration=0,
                                      t_train=600.0, t_sync=1200.0))
    detector.observe(IterationFinished(at=1100.0, iteration=0))
    assert not list(detector.on_tick(5000.0))


# -- convergence -----------------------------------------------------------------


def _close_round(detector, iteration, loss, at):
    detector.observe(TrainingEvaluated(
        at=at - 1.0, iteration=iteration, trainer="trainer-0",
        loss=loss, samples=10))
    return list(detector.observe(
        IterationFinished(at=at, iteration=iteration)))


def test_convergence_stall_after_patience_rounds():
    detector = ConvergenceDetector(patience=2, min_improvement=0.1)
    assert not _close_round(detector, 0, 1.0, 10.0)
    assert not _close_round(detector, 1, 0.5, 20.0)  # improvement
    assert not _close_round(detector, 2, 0.5, 30.0)  # 1 flat round
    fired = _close_round(detector, 3, 0.49, 40.0)    # 2nd flat round
    assert len(fired) == 1
    assert fired[0].kind == "convergence_stall"
    assert fired[0].severity == "warning"
    assert detector.losses == [(0, 1.0), (1, 0.5), (2, 0.5), (3, 0.49)]


def test_convergence_divergence_is_critical():
    detector = ConvergenceDetector(divergence_factor=2.0)
    assert not _close_round(detector, 0, 0.5, 10.0)
    fired = _close_round(detector, 1, 5.0, 20.0)  # 10x the best
    assert any(a.kind == "divergence" and a.severity == "critical"
               for a in fired)


def test_convergence_divergence_on_nonfinite_loss():
    detector = ConvergenceDetector()
    fired = _close_round(detector, 0, float("nan"), 10.0)
    assert [a.kind for a in fired] == ["divergence"]


def test_convergence_averages_across_trainers_per_round():
    detector = ConvergenceDetector()
    detector.observe(TrainingEvaluated(at=1.0, iteration=0,
                                       trainer="a", loss=1.0))
    detector.observe(TrainingEvaluated(at=2.0, iteration=0,
                                       trainer="b", loss=3.0))
    detector.observe(IterationFinished(at=5.0, iteration=0))
    assert detector.losses == [(0, 2.0)]


def test_convergence_quiet_round_without_evaluations():
    detector = ConvergenceDetector()
    assert not list(detector.observe(
        IterationFinished(at=5.0, iteration=0)))
    assert detector.losses == []


# -- watchdog wiring -------------------------------------------------------------


def test_watchdog_rejects_detectors_tapping_sampled_families():
    class BadDetector(Detector):
        kind = "bad"
        event_types = (TransferStarted,)

    with pytest.raises(ValueError, match="sampled family"):
        AnomalyWatchdog(EventBus(), detectors=[BadDetector()])


def test_stock_detector_taps_are_disjoint_from_sampled_families():
    for detector in default_detectors():
        for event_type in detector.event_types:
            assert not issubclass(event_type, SAMPLED_EVENT_FAMILIES)


def test_stock_detectors_cover_the_published_kind_catalog():
    kinds = {detector.kind for detector in default_detectors()}
    kinds.add("divergence")  # ConvergenceDetector's second kind
    assert kinds == set(ANOMALY_KINDS)


def test_watchdog_publishes_observed_anomalies_on_the_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, AnomalyDetected)
    watchdog = AnomalyWatchdog(bus,
                               detectors=[RetryStormDetector()])
    for at in (1.0, 2.0, 3.0):
        bus.publish(abort(at))
    assert len(watchdog.anomalies) == 1
    assert seen == watchdog.anomalies
    assert watchdog.kinds() == ["retry_storm"]
    assert watchdog.summary() == {"retry_storm": 1}
    watchdog.finalize()
    bus.publish(abort(4.0))
    bus.publish(abort(5.0))
    assert len(watchdog.anomalies) == 1  # unsubscribed after finalize


def test_watchdog_detectors_see_firehose_despite_aggressive_sampling():
    # The sampled families can be thinned to near-zero without starving
    # a detector: taps are pre-sample by construction.
    bus = EventBus(sampling=SamplingPolicy.firehose(1e-9))
    watchdog = AnomalyWatchdog(bus, detectors=default_detectors())
    for event_type in watchdog._taps:
        assert all(bus.admits(event_type, key) for key in range(64))
    # Emission sites for sampled families *would* drop nearly all:
    assert not all(bus.admits(TransferStarted, key)
                   for key in range(64))
    for at in (1.0, 2.0, 3.0):
        bus.publish(abort(at))
    assert watchdog.kinds() == ["retry_storm"]


def test_watchdog_tick_loop_follows_sim_clock_and_stops():
    sim = Simulator()
    directory = _FakeDirectory()
    directory.endpoint.inbox.items = list(range(100))
    watchdog = AnomalyWatchdog(
        sim.bus, sim=sim, interval=5.0,
        detectors=[QueueRunawayDetector(directory=directory,
                                        queue_limit=8)])
    sim.run(until=26.0)
    assert watchdog.ticks == 5
    assert watchdog.summary() == {"queue_runaway": 1}
    watchdog.stop()
    sim.run(until=100.0)
    assert watchdog.ticks == 5  # epoch bump cancelled the loop


def test_watchdog_wall_stall_recorded_locally_never_published():
    sim = Simulator()
    published = []
    sim.bus.subscribe(published.append, AnomalyDetected)
    clock = FakeWallClock(tick=200.0)
    watchdog = AnomalyWatchdog(sim.bus, sim=sim, autostart=False,
                               wall_clock=clock,
                               wall_stall_seconds=300.0)
    assert watchdog.check_wall() is None  # baseline read
    assert watchdog.check_wall() is None  # 200s elapsed: under limit
    entry = watchdog.check_wall()         # 400s with no sim progress
    assert entry is not None
    assert entry["kind"] == "wall_stall"
    assert entry["wall_elapsed"] == pytest.approx(400.0)
    assert watchdog.wall_stalls == [entry]
    assert published == []  # wall-time evidence never hits the bus


def test_progress_heartbeat_surfaces_watchdog_state():
    bus = EventBus()
    watchdog = AnomalyWatchdog(bus,
                               detectors=[RetryStormDetector()],
                               wall_clock=FakeWallClock(tick=0.0))
    reporter = ProgressReporter(bus, watchdog=watchdog, stream=None,
                                clock=lambda: 0.0)
    for at in (1.0, 2.0, 3.0):
        bus.publish(abort(at))
    record = reporter.snapshot()
    assert record["anomalies"] == 1
    assert record["anomaly_kinds"] == ["retry_storm"]
    assert "wall_stalls" not in record
    assert "anomalies=1" in format_heartbeat(record)


# -- downstream consumers --------------------------------------------------------


def _storm_anomaly(at=3.0):
    detector = RetryStormDetector()
    detector.observe(abort(1.0))
    detector.observe(abort(2.0))
    return list(detector.observe(abort(at)))[0]


def test_counters_fold_anomaly_and_evaluation_events():
    bus = EventBus()
    counters = CountersRegistry(bus)
    bus.publish(TrainingEvaluated(at=1.0, iteration=0,
                                  trainer="t", loss=0.25, accuracy=0.9))
    bus.publish(_storm_anomaly())
    snapshot = counters.snapshot()
    assert snapshot["ml.evaluations"] == 1
    assert snapshot["obs.anomaly.detected"] == 1
    assert snapshot["obs.anomaly.detected.retry_storm"] == 1
    gauges = counters.gauges()
    assert gauges["ml.loss.last"] == 0.25
    assert gauges["ml.accuracy.last"] == 0.9
    assert gauges["obs.anomaly.last_at"] == 3.0


def test_flight_recorder_seals_on_anomaly():
    bus = EventBus()
    recorder = FlightRecorder(bus)
    bus.publish(abort(1.0))
    bus.publish(_storm_anomaly())
    recorder.close()
    assert len(recorder.incidents) == 1
    bundle = recorder.incidents[0]
    assert bundle.kind == "anomaly_detected"
    assert any(isinstance(e, AnomalyDetected) for e in bundle.events)
    trace = bundle.perfetto()
    names = {entry.get("name") for entry in trace["traceEvents"]}
    assert "anomaly:retry_storm" in names


def test_perfetto_add_anomalies_emits_instants_and_counter():
    exporter = PerfettoExporter()
    exporter.add_anomalies([_storm_anomaly()])
    events = exporter.to_dict()["traceEvents"]
    instants = [e for e in events if e.get("ph") == "i"]
    counters = [e for e in events if e.get("ph") == "C"
                and e.get("name") == "anomaly.count"]
    assert len(instants) == 1
    assert instants[0]["name"] == "anomaly:retry_storm"
    assert instants[0]["args"]["severity"] == "warning"
    assert counters[-1]["args"]["value"] == 1


def test_anomaly_event_round_trips_evidence():
    anomaly = _storm_anomaly()
    assert anomaly.evidence == tuple(sorted(anomaly.evidence))
    assert json.loads(json.dumps(anomaly.evidence_dict()))


# -- end to end ------------------------------------------------------------------

CHURN_CHAOS = [
    "chaos", "--rounds", "2", "--aggregators-per-partition", "2",
    "--request-timeout", "10", "--plan", "examples/plans/churn.json",
]


def test_churn_chaos_watchdog_classifies_storm_and_collapse(
        tmp_path, capsys):
    from repro.cli import main

    incidents = tmp_path / "incidents"
    code = main(CHURN_CHAOS + [
        "--watch",
        "--expect-anomaly", "retry_storm",
        "--expect-anomaly", "throughput_collapse",
        "--incidents-dir", str(incidents),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "ANOMALY [retry_storm/" in out
    assert "ANOMALY [throughput_collapse/" in out
    assert "[anomaly_detected]" in out
    assert "chaos clean" in out
    bundles = list(incidents.glob("*.json"))
    assert bundles  # anomalies auto-sealed incident bundles


def test_clean_chaos_run_reports_zero_anomalies(capsys):
    from repro.cli import main

    code = main(["chaos", "--rounds", "1", "--trainers", "4",
                 "--params", "2000", "--watch", "--forbid-anomalies"])
    out = capsys.readouterr().out
    assert code == 0
    assert "watchdog: no anomalies" in out
    assert "chaos clean" in out


def test_watchdog_attached_replay_is_byte_identical(tmp_path, capsys):
    from repro.cli import main
    from repro.obs import RunManifest

    paths = [tmp_path / name for name in
             ("watch-a.json", "watch-b.json", "bare.json")]
    for path, watch in zip(paths, (True, True, False)):
        argv = CHURN_CHAOS + ["--manifest", str(path)]
        assert main(argv + ["--watch"] if watch else argv) == 0
    capsys.readouterr()
    assert paths[0].read_bytes() == paths[1].read_bytes()
    watched = RunManifest.load(paths[0])
    bare = RunManifest.load(paths[2])
    # Watching is config-invisible: same fingerprint as the bare run.
    assert watched.fingerprint["digest"] == bare.fingerprint["digest"]
    # But the watched manifest carries the anomaly/evaluation counters.
    assert watched.counters["obs.anomaly.detected"] >= 2
    assert watched.counters["ml.evaluations"] > 0
    assert "obs.anomaly.detected" not in bare.counters
