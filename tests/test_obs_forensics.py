"""Tests for the flight recorder and blame classifier (repro.obs.forensics).

The adversary-catch matrix: every misbehaviour in
:mod:`repro.core.adversary` must (a) be *detected* by directory
verification and (b) be *classified* correctly by the blame report,
naming the guilty aggregator and the affected trainers.

The sessions use :class:`~repro.ml.LogisticRegression` on real data —
the synthetic model's gradients are constant, which would make a
replayed aggregate value-identical and hence undetectable by design.
"""

import json

import pytest

from repro.core import FLSession, ProtocolConfig
from repro.core.adversary import (
    AlterUpdateBehavior,
    DropGradientsBehavior,
    LazyBehavior,
    ReplayUpdateBehavior,
)
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.obs import (
    EventBus,
    FlightRecorder,
    InvariantMonitors,
    InvariantViolated,
)
from repro.obs.events import IterationStarted

NUM_TRAINERS = 4
TRAINERS = tuple(f"trainer-{i}" for i in range(NUM_TRAINERS))


def run_with_recorder(behavior=None, rounds=1):
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, NUM_TRAINERS, seed=0)
    config = ProtocolConfig(num_partitions=1, t_train=400.0, t_sync=800.0,
                            update_mode="gradient", verifiable=True,
                            poll_interval=0.25)
    behaviors = {"aggregator-0": behavior} if behavior else None
    session = FLSession(
        config,
        lambda: LogisticRegression(num_features=8, num_classes=2, seed=0),
        shards, num_ipfs_nodes=4, bandwidth_mbps=10.0,
        behaviors=behaviors,
    )
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    for _ in range(rounds):
        session.run_iteration()
    monitors.finalize()
    recorder.close()
    return recorder


# -- the adversary-catch matrix --------------------------------------------------


def test_honest_run_seals_nothing():
    recorder = run_with_recorder(rounds=2)
    assert recorder.incidents == []
    assert recorder.suppressed == 0


@pytest.mark.parametrize("behavior,rounds,classification,dropped", [
    (DropGradientsBehavior(keep_fraction=0.5), 1, "dropped",
     TRAINERS[2:]),                    # keeps sorted()[:2] -> drops 2, 3
    (AlterUpdateBehavior(offset=1.0), 1, "altered", ()),
    (LazyBehavior(), 1, "lazy", TRAINERS[1:]),  # keeps only trainer-0
    (ReplayUpdateBehavior(), 2, "replayed", TRAINERS),
], ids=["drop", "alter", "lazy", "replay"])
def test_misbehaviour_is_caught_and_classified(behavior, rounds,
                                               classification, dropped):
    recorder = run_with_recorder(behavior, rounds=rounds)
    assert recorder.incidents, f"{behavior.name} went undetected"
    bundle = recorder.incidents[0]
    assert bundle.kind == "verification_failed"
    blame = bundle.blame
    assert blame is not None
    assert blame.aggregator == "aggregator-0"
    assert blame.partition_id == 0
    assert blame.classification == classification
    assert blame.dropped_trainers == dropped
    # Every named trainer comes with its partition CID for retrieval.
    assert len(blame.dropped_cids) == len(dropped)
    assert all(blame.dropped_cids)


def test_drop_blame_names_the_exact_complement():
    recorder = run_with_recorder(DropGradientsBehavior(keep_fraction=0.5))
    blame = recorder.incidents[0].blame
    assert blame.kept_trainers == TRAINERS[:2]
    assert blame.expected_count == NUM_TRAINERS
    assert blame.claimed_counter == pytest.approx(2.0)


def test_replay_blame_points_at_the_stale_round():
    recorder = run_with_recorder(ReplayUpdateBehavior(), rounds=2)
    bundle = recorder.incidents[0]
    assert bundle.iteration == 1
    assert "iteration 0" in bundle.blame.detail


# -- incident bundle contents ----------------------------------------------------


def test_bundle_window_contains_the_trigger():
    recorder = run_with_recorder(DropGradientsBehavior(keep_fraction=0.5))
    bundle = recorder.incidents[0]
    assert bundle.events[-1] is bundle.trigger
    assert bundle.sealed_at == bundle.trigger.at


def test_bundle_has_span_tree_and_perfetto_slice():
    recorder = run_with_recorder(DropGradientsBehavior(keep_fraction=0.5))
    bundle = recorder.incidents[0]
    assert bundle.span_tree is not None
    assert bundle.span_tree.iteration == bundle.iteration
    trace = bundle.perfetto()
    assert trace["traceEvents"], "empty Perfetto slice"


def test_bundle_serializes_to_json(tmp_path):
    recorder = run_with_recorder(DropGradientsBehavior(keep_fraction=0.5))
    bundle = recorder.incidents[0]
    path = tmp_path / "incident.json"
    bundle.write(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["kind"] == "verification_failed"
    assert loaded["blame"]["classification"] == "dropped"
    assert loaded["blame"]["dropped_trainers"] == list(TRAINERS[2:])
    assert loaded["trigger"]["event"] == "VerificationFailed"
    assert len(loaded["events"]) == len(bundle.events)
    assert loaded["perfetto"]["traceEvents"]


def test_summary_names_the_accused_and_dropped():
    recorder = run_with_recorder(DropGradientsBehavior(keep_fraction=0.5))
    text = recorder.incidents[0].summary()
    assert "aggregator-0" in text
    assert "dropped" in text
    assert "trainer-2" in text and "trainer-3" in text


# -- ring buffer and incident-cap mechanics --------------------------------------


def test_ring_buffer_is_bounded():
    bus = EventBus()
    recorder = FlightRecorder(bus, capacity=4)
    for i in range(10):
        bus.publish(IterationStarted(at=float(i), iteration=i))
    assert len(recorder.window) == 4
    assert recorder.window[0].iteration == 6


def test_incident_cap_suppresses_overflow():
    bus = EventBus()
    recorder = FlightRecorder(bus, max_incidents=2)
    for i in range(5):
        bus.publish(InvariantViolated(
            at=float(i), iteration=0, invariant="clock-monotonic",
            subject="x", detail="synthetic"))
    assert len(recorder.incidents) == 2
    assert recorder.suppressed == 3


def test_invariant_incident_has_no_blame():
    bus = EventBus()
    recorder = FlightRecorder(bus)
    bus.publish(InvariantViolated(
        at=1.0, iteration=0, invariant="byte-conservation",
        subject="a0", detail="synthetic"))
    bundle = recorder.incidents[0]
    assert bundle.kind == "invariant_violated"
    assert bundle.blame is None
    assert bundle.to_dict()["blame"] is None


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(EventBus(), capacity=0)


def test_monitor_violation_reaches_a_recorder_subscribed_first():
    """The documented wiring order: recorder first, then monitors; the
    monitor's violation must land in the recorder as an incident whose
    window still holds the offending event."""
    bus = EventBus()
    recorder = FlightRecorder(bus)
    monitors = InvariantMonitors(bus)
    bus.publish(IterationStarted(at=5.0, iteration=0))
    bus.publish(IterationStarted(at=1.0, iteration=1))  # clock regression
    assert monitors.violations
    assert len(recorder.incidents) == 1
    bundle = recorder.incidents[0]
    assert bundle.kind == "invariant_violated"
    kinds = [type(event).__name__ for event in bundle.events]
    assert "IterationStarted" in kinds
