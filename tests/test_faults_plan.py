"""Unit tests for the pure-data fault plans and the shared retry policy."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    RetryExhaustedError,
    RetryPolicy,
)


# -- FaultSpec validation ---------------------------------------------------------


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor_strike", at=1.0)


def test_negative_at_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        FaultSpec(kind="crash_trainer", at=-1.0, target="trainer-0")


def test_non_positive_duration_rejected():
    with pytest.raises(ValueError, match="duration"):
        FaultSpec(kind="link_down", at=0.0, target="trainer-0",
                  duration=0.0)


@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
def test_each_kind_enforces_its_required_fields(kind):
    with pytest.raises(ValueError, match="requires"):
        FaultSpec(kind=kind, at=0.0)


def test_degrade_link_needs_factor_or_bandwidth():
    with pytest.raises(ValueError, match="factor.*bandwidth_mbps"):
        FaultSpec(kind="degrade_link", at=0.0, target="trainer-0",
                  duration=5.0)
    # Either one is sufficient.
    FaultSpec(kind="degrade_link", at=0.0, target="trainer-0",
              duration=5.0, factor=0.5)
    FaultSpec(kind="degrade_link", at=0.0, target="trainer-0",
              duration=5.0, bandwidth_mbps=1.0)


def test_degrade_link_factor_must_be_positive():
    with pytest.raises(ValueError, match="factor"):
        FaultSpec(kind="degrade_link", at=0.0, target="trainer-0",
                  duration=5.0, factor=0.0)


def test_probability_bounds():
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(kind="message_loss", at=0.0, probability=1.5,
                  duration=5.0)
    FaultSpec(kind="message_loss", at=0.0, probability=1.0, duration=5.0)


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultSpec fields"):
        FaultSpec.from_dict({"kind": "crash_trainer", "at": 0.0,
                             "target": "trainer-0", "severity": "high"})


def test_to_dict_elides_defaults():
    spec = FaultSpec(kind="crash_trainer", at=1.5, target="trainer-0")
    assert spec.to_dict() == {
        "kind": "crash_trainer", "at": 1.5, "target": "trainer-0",
    }


# -- FaultPlan --------------------------------------------------------------------


def sample_plan():
    return FaultPlan.of(
        FaultSpec(kind="crash_trainer", at=0.5, target="trainer-1",
                  duration=10.0),
        FaultSpec(kind="link_down", at=3.0, target="trainer-2",
                  duration=30.0),
        FaultSpec(kind="directory_brownout", at=1.0,
                  processing_delay=2.0, duration=10.0),
        FaultSpec(kind="crash_ipfs", at=2.0, target="ipfs-0",
                  duration=20.0, lose_storage=True),
        seed=7,
    )


def test_plan_truthiness_and_len():
    assert not FaultPlan()
    assert len(FaultPlan()) == 0
    plan = sample_plan()
    assert plan
    assert len(plan) == 4


def test_plan_specs_must_be_fault_specs():
    with pytest.raises(TypeError):
        FaultPlan(specs=({"kind": "crash_trainer"},))


def test_plan_json_round_trip():
    plan = sample_plan()
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    # And the serialised form itself is stable.
    assert again.to_json() == plan.to_json()


def test_plan_write_and_load(tmp_path):
    plan = sample_plan()
    path = tmp_path / "plan.json"
    plan.write(path)
    assert FaultPlan.load(path) == plan
    # The file is plain, diffable JSON.
    raw = json.loads(path.read_text())
    assert raw["seed"] == 7
    assert len(raw["specs"]) == 4


def test_plan_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_dict({"seed": 0, "specs": [], "color": "red"})


def test_plan_targets_in_first_appearance_order():
    assert list(sample_plan().targets()) == [
        "trainer-1", "trainer-2", "ipfs-0",
    ]


# -- RetryPolicy ------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=10.0, max_delay=5.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                         jitter=0.0)
    assert policy.backoff(0) == 1.0
    assert policy.backoff(1) == 2.0
    assert policy.backoff(2) == 4.0
    assert policy.backoff(3) == 5.0  # capped
    assert policy.backoff(10) == 5.0


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=30.0,
                         jitter=0.1)
    for attempt in range(4):
        first = policy.backoff(attempt, key="trainer-0:get:cid")
        again = policy.backoff(attempt, key="trainer-0:get:cid")
        assert first == again  # replayable
        raw = min(1.0 * 2.0 ** attempt, 30.0)
        assert raw * 0.9 <= first <= raw * 1.1


def test_backoff_jitter_varies_across_keys():
    policy = RetryPolicy(jitter=0.1)
    delays = {policy.backoff(0, key=f"actor-{i}") for i in range(8)}
    assert len(delays) > 1  # actors desynchronise


def test_backoff_rejects_negative_attempt():
    with pytest.raises(ValueError):
        RetryPolicy().backoff(-1)


def test_retry_exhausted_error_carries_context():
    cause = TimeoutError("boom")
    error = RetryExhaustedError("directory.lookup", 4, cause)
    assert error.operation == "directory.lookup"
    assert error.attempts == 4
    assert error.last_error is cause
    assert "directory.lookup" in str(error)
    assert "4 attempt" in str(error)
