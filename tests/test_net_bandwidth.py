"""Unit tests for the max-min fair flow scheduler."""

import math

import pytest

from repro.net.bandwidth import Flow, FlowScheduler, Link, max_min_rates
from repro.sim import Simulator


def make_flow(links, size=100.0):
    return Flow(0, tuple(links), size, done=None)


# -- max_min_rates (pure function) --------------------------------------------


def test_single_flow_gets_full_capacity():
    link = Link("l", 100.0)
    flow = make_flow([link])
    rates = max_min_rates([flow])
    assert rates[flow] == 100.0


def test_two_flows_share_link_equally():
    link = Link("l", 100.0)
    f1, f2 = make_flow([link]), make_flow([link])
    rates = max_min_rates([f1, f2])
    assert rates[f1] == rates[f2] == 50.0


def test_max_min_unequal_bottlenecks():
    """Flow through a narrow link frees capacity for the wide-link flow."""
    narrow = Link("narrow", 10.0)
    wide = Link("wide", 100.0)
    constrained = make_flow([narrow, wide])
    free = make_flow([wide])
    rates = max_min_rates([constrained, free])
    assert rates[constrained] == 10.0
    assert rates[free] == 90.0


def test_max_min_three_level():
    a = Link("a", 30.0)
    b = Link("b", 100.0)
    f1 = make_flow([a])       # shares a: 15
    f2 = make_flow([a, b])    # bottleneck a: 15
    f3 = make_flow([b])       # rest of b: 85
    rates = max_min_rates([f1, f2, f3])
    assert rates[f1] == pytest.approx(15.0)
    assert rates[f2] == pytest.approx(15.0)
    assert rates[f3] == pytest.approx(85.0)


def test_infinite_links_give_infinite_rate():
    link = Link("inf", math.inf)
    flow = make_flow([link])
    rates = max_min_rates([flow])
    assert math.isinf(rates[flow])


def test_infinite_and_finite_mixed():
    fast = Link("fast", math.inf)
    slow = Link("slow", 10.0)
    f_mixed = make_flow([fast, slow])
    f_free = make_flow([fast])
    rates = max_min_rates([f_mixed, f_free])
    assert rates[f_mixed] == 10.0
    assert math.isinf(rates[f_free])


def test_link_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Link("bad", 0.0)


# -- FlowScheduler (timing) -----------------------------------------------------


def run_flows(flow_specs):
    """Start flows per (start_time, links, size); return completion times."""
    sim = Simulator()
    completions = {}

    def starter(sim, scheduler, name, start, links, size):
        if start > 0:
            yield sim.timeout(start)
        done = scheduler.start_flow(links, size)
        yield done
        completions[name] = sim.now

    scheduler = FlowScheduler(sim)
    for name, (start, links, size) in flow_specs.items():
        sim.process(starter(sim, scheduler, name, start, links, size))
    sim.run()
    return completions


def test_single_flow_timing():
    link = Link("l", 10.0)
    completions = run_flows({"f": (0.0, (link,), 100.0)})
    assert completions["f"] == pytest.approx(10.0)


def test_two_concurrent_flows_halve_throughput():
    link = Link("l", 10.0)
    completions = run_flows({
        "a": (0.0, (link,), 100.0),
        "b": (0.0, (link,), 100.0),
    })
    assert completions["a"] == pytest.approx(20.0)
    assert completions["b"] == pytest.approx(20.0)


def test_flow_joining_mid_transfer_slows_existing():
    """A 100B flow alone for 5s (50B done), then sharing: 50B at rate 5."""
    link = Link("l", 10.0)
    completions = run_flows({
        "first": (0.0, (link,), 100.0),
        "late": (5.0, (link,), 100.0),
    })
    # first: 50B alone by t=5, then 50B at the shared 5 B/s -> t=15.
    assert completions["first"] == pytest.approx(15.0)
    # late: 50B during the shared decade (t=5..15), then 50B alone -> t=20.
    assert completions["late"] == pytest.approx(20.0)


def test_short_flow_finishing_speeds_up_long_flow():
    link = Link("l", 10.0)
    completions = run_flows({
        "short": (0.0, (link,), 10.0),   # shares 5 B/s -> done at 2s
        "long": (0.0, (link,), 100.0),   # 10B by 2s, then 90B at 10 B/s
    })
    assert completions["short"] == pytest.approx(2.0)
    assert completions["long"] == pytest.approx(11.0)


def test_zero_size_flow_completes_immediately():
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    done = scheduler.start_flow((Link("l", 10.0),), 0.0)
    assert done.triggered


def test_negative_size_rejected():
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    with pytest.raises(ValueError):
        scheduler.start_flow((Link("l", 10.0),), -1.0)


def test_bytes_delivered_accumulates():
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    link = Link("l", 10.0)

    def proc(sim, scheduler):
        yield scheduler.start_flow((link,), 30.0)
        yield scheduler.start_flow((link,), 70.0)

    sim.process(proc(sim, scheduler))
    sim.run()
    assert scheduler.bytes_delivered == pytest.approx(100.0)


def test_fan_in_congestion():
    """N uploads into one destination link serialize to N*size/capacity."""
    destination = Link("dst/down", 10.0)
    sources = [Link(f"src{i}/up", 100.0) for i in range(4)]
    specs = {
        f"f{i}": (0.0, (sources[i], destination), 25.0) for i in range(4)
    }
    completions = run_flows(specs)
    for i in range(4):
        assert completions[f"f{i}"] == pytest.approx(10.0)


def test_many_flows_complete():
    link = Link("l", 100.0)
    specs = {
        f"f{i}": (float(i % 7), (link,), 50.0 + i) for i in range(60)
    }
    completions = run_flows(specs)
    assert len(completions) == 60
