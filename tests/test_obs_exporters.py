"""JSONL trace export, the counters registry, and the trace CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.net import Network, TransferTrace, mbps
from repro.obs import CountersRegistry, EventBus, JsonlTraceExporter
from repro.obs.events import (
    BlockFetched,
    BlockStored,
    DhtLookup,
    DirectoryRequest,
    IterationFinished,
    IterationStarted,
    TrainerCompleted,
    TransferCompleted,
    VerificationFailed,
)
from repro.sim import Simulator


# -- JsonlTraceExporter ----------------------------------------------------------


def test_exporter_writes_one_parseable_line_per_event():
    bus = EventBus()
    stream = io.StringIO()
    exporter = JsonlTraceExporter(bus, stream)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(TransferCompleted(at=1.5, src="a", dst="b", size=100.0,
                                  started_at=0.5))
    bus.publish(IterationFinished(at=2.0, iteration=0))
    exporter.close()
    lines = stream.getvalue().splitlines()
    assert exporter.events_written == 3 == len(lines)
    records = [json.loads(line) for line in lines]
    assert [r["event"] for r in records] == [
        "IterationStarted", "TransferCompleted", "IterationFinished"
    ]
    assert records[1] == {
        "event": "TransferCompleted", "at": 1.5, "src": "a", "dst": "b",
        "size": 100.0, "started_at": 0.5,
    }


def test_exporter_stringifies_non_json_values():
    bus = EventBus()
    stream = io.StringIO()
    with JsonlTraceExporter(bus, stream):
        bus.publish(BlockStored(at=0.0, node="ipfs-0", cid=object(),
                                size=10))
    record = json.loads(stream.getvalue())
    assert isinstance(record["cid"], str)


def test_exporter_close_detaches_and_keeps_callers_stream_open():
    bus = EventBus()
    stream = io.StringIO()
    exporter = JsonlTraceExporter(bus, stream)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    exporter.close()
    bus.publish(IterationStarted(at=1.0, iteration=1))
    assert exporter.events_written == 1
    assert not stream.closed  # caller-owned stream stays usable
    assert not bus.active


def test_exporter_owns_path_destination(tmp_path):
    bus = EventBus()
    path = tmp_path / "run.jsonl"
    with JsonlTraceExporter(bus, path) as exporter:
        bus.publish(IterationStarted(at=0.0, iteration=0))
        assert exporter.events_written == 1
    assert exporter._stream.closed
    [record] = [json.loads(line) for line in path.read_text().splitlines()]
    assert record == {"event": "IterationStarted", "at": 0.0, "iteration": 0,
                      "t_train": None, "t_sync": None}


def test_exporter_truncates_path_by_default(tmp_path):
    path = tmp_path / "run.jsonl"
    for iteration in range(2):
        bus = EventBus()
        with JsonlTraceExporter(bus, path):
            bus.publish(IterationStarted(at=0.0, iteration=iteration))
    [record] = [json.loads(line) for line in path.read_text().splitlines()]
    assert record["iteration"] == 1  # second run replaced the first


def test_exporter_append_mode_extends_an_existing_timeline(tmp_path):
    path = tmp_path / "run.jsonl"
    for iteration in range(2):
        bus = EventBus()
        with JsonlTraceExporter(bus, path, append=True):
            bus.publish(IterationStarted(at=0.0, iteration=iteration))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["iteration"] for r in records] == [0, 1]


def test_exporter_buffers_until_the_line_bound(tmp_path):
    bus = EventBus()
    stream = io.StringIO()
    exporter = JsonlTraceExporter(bus, stream, flush_lines=3,
                                  flush_bytes=1 << 20)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    bus.publish(IterationStarted(at=1.0, iteration=1))
    assert exporter.buffered == 2
    assert stream.getvalue() == ""  # nothing reaches the stream yet
    bus.publish(IterationStarted(at=2.0, iteration=2))
    assert exporter.buffered == 0
    assert exporter.flushes == 1
    assert len(stream.getvalue().splitlines()) == 3
    exporter.close()
    assert exporter.flushes == 1  # empty buffer: close adds no flush


def test_exporter_flushes_on_the_byte_bound():
    bus = EventBus()
    stream = io.StringIO()
    exporter = JsonlTraceExporter(bus, stream, flush_lines=10_000,
                                  flush_bytes=64)
    bus.publish(IterationStarted(at=0.0, iteration=0))
    assert exporter.buffered <= 1
    bus.publish(IterationStarted(at=1.0, iteration=1))
    # Two ~45-byte lines exceed 64 buffered bytes: drained.
    assert exporter.buffered == 0
    assert len(stream.getvalue().splitlines()) == 2
    exporter.close()


def test_exporter_final_flush_is_crash_safe(tmp_path):
    """A run that dies mid-buffer still leaves every event on disk:
    the context manager's error path drains the buffer."""
    bus = EventBus()
    path = tmp_path / "trace.jsonl"
    with pytest.raises(RuntimeError):
        with JsonlTraceExporter(bus, path, flush_lines=1000) as exporter:
            for index in range(5):
                bus.publish(IterationStarted(at=float(index),
                                             iteration=index))
            assert exporter.buffered == 5  # below both bounds
            raise RuntimeError("simulated crash")
    lines = path.read_text().splitlines()
    assert len(lines) == 5
    assert [json.loads(line)["iteration"] for line in lines] == \
        [0, 1, 2, 3, 4]


def test_exporter_rejects_bad_buffer_bounds():
    bus = EventBus()
    with pytest.raises(ValueError):
        JsonlTraceExporter(bus, io.StringIO(), flush_lines=0)
    with pytest.raises(ValueError):
        JsonlTraceExporter(bus, io.StringIO(), flush_bytes=0)


# -- CountersRegistry ------------------------------------------------------------


def test_counters_fold_the_event_stream():
    bus = EventBus()
    counters = CountersRegistry(bus)
    bus.publish(TransferCompleted(at=1.0, src="a", dst="b", size=100.0,
                                  started_at=0.0))
    bus.publish(TransferCompleted(at=2.0, src="b", dst="a", size=50.0,
                                  started_at=1.0))
    bus.publish(BlockFetched(at=2.0, client="t", node="ipfs-0", cid="x",
                             size=40.0))
    bus.publish(DhtLookup(at=2.5, querier="t", cid="x", providers=3, hops=2))
    bus.publish(DirectoryRequest(at=3.0, kind="dir.lookup"))
    bus.publish(DirectoryRequest(at=3.0, kind="dir.register"))
    bus.publish(VerificationFailed(at=4.0, iteration=0, label="bad",
                                   scope="update"))
    bus.publish(TrainerCompleted(at=5.0, iteration=0, trainer="t"))
    assert counters.get("net.transfers") == 2
    assert counters.get("net.bytes") == 150.0
    assert counters.get("ipfs.fetches") == 1
    assert counters.get("dht.hops") == 2
    assert counters.get("dht.providers_found") == 3
    assert counters.get("directory.requests") == 2
    assert counters.get("directory.requests.dir.lookup") == 1
    assert counters.get("protocol.verification_failures.update") == 1
    assert counters.get("protocol.trainers_completed") == 1
    assert counters.get("never.touched") == 0.0


def test_counters_manual_api_and_snapshot():
    bus = EventBus()
    counters = CountersRegistry(bus)
    counters.increment("custom.count")
    counters.increment("custom.count", by=2.0)
    counters.set_gauge("custom.level", 7.0)
    assert counters.get("custom.count") == 3.0
    assert counters.get("custom.level") == 7.0
    snapshot = counters.snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert snapshot["custom.count"] == 3.0
    assert "custom.level" in counters.gauges()
    counters.close()
    bus.publish(TrainerCompleted(at=0.0, iteration=0, trainer="t"))
    assert counters.get("protocol.trainers_completed") == 0.0


def test_counters_close_detaches_every_subscription():
    """Regression pin for the counters lifecycle: ``close()`` must
    detach the registry's one-and-only subscription, after which the
    bus reports inactive and no event mutates the registry."""
    bus = EventBus()
    counters = CountersRegistry(bus)
    assert bus.active
    bus.publish(TrainerCompleted(at=0.0, iteration=0, trainer="t"))
    counters.close()
    assert not bus.active
    before = counters.snapshot()
    bus.publish(TrainerCompleted(at=1.0, iteration=0, trainer="t"))
    bus.publish(TransferCompleted(at=1.0, src="a", dst="b", size=9.0,
                                  started_at=0.0))
    assert counters.snapshot() == before
    counters.close()  # idempotent
    assert counters.get("protocol.trainers_completed") == 1


def test_two_counters_registries_never_double_count():
    """Two registries on one bus each see every event exactly once,
    and closing one leaves the other recording."""
    bus = EventBus()
    first = CountersRegistry(bus)
    second = CountersRegistry(bus)
    bus.publish(TransferCompleted(at=1.0, src="a", dst="b", size=100.0,
                                  started_at=0.0))
    assert first.get("net.transfers") == 1
    assert second.get("net.transfers") == 1
    first.close()
    assert bus.active  # second is still attached
    bus.publish(TransferCompleted(at=2.0, src="a", dst="b", size=100.0,
                                  started_at=1.0))
    assert first.get("net.transfers") == 1
    assert second.get("net.transfers") == 2
    second.close()
    assert not bus.active


# -- TransferTrace on the bus (satellite: detach-order regression) ---------------


def make_network():
    sim = Simulator()
    network = Network(sim)
    for name in ("a", "b"):
        network.add_host(name, up_bandwidth=mbps(10))
    return sim, network


def run_transfer(sim, network, size=1000.0):
    def proc():
        yield network.transfer("a", "b", size)

    sim.process(proc())
    sim.run()


def test_two_traces_detach_in_any_order():
    # The legacy monkey-patch implementation restored ``network.transfer``
    # on detach, so detaching traces out of LIFO order re-attached a dead
    # trace's wrapper.  On the bus each trace is an independent
    # subscription, so any detach order works.
    sim, network = make_network()
    first = TransferTrace(network)
    second = TransferTrace(network)
    run_transfer(sim, network)
    assert len(first) == len(second) == 1

    first.detach()  # out of LIFO order: second is still attached
    run_transfer(sim, network)
    assert len(first) == 1  # detached trace stays frozen
    assert len(second) == 2  # survivor keeps recording

    second.detach()
    run_transfer(sim, network)
    assert len(first) == 1 and len(second) == 2


def test_trace_detach_is_idempotent():
    sim, network = make_network()
    trace = TransferTrace(network)
    run_transfer(sim, network)
    trace.detach()
    trace.detach()
    assert len(trace) == 1


# -- the trace CLI ---------------------------------------------------------------


def test_cli_trace_writes_parseable_jsonl(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code = main([
        "trace", "--output", str(out), "--trainers", "2", "--rounds", "1",
        "--partitions", "1", "--ipfs-nodes", "2", "--params", "2000",
    ])
    assert code == 0
    records = [json.loads(line)
               for line in out.read_text().splitlines()]
    assert records, "trace must contain events"
    assert all("event" in r and "at" in r for r in records)
    kinds = {r["event"] for r in records}
    assert {"IterationStarted", "IterationFinished",
            "TransferCompleted"} <= kinds
    # Counter summary lands on stderr, one "name value" pair per line.
    err = capsys.readouterr().err
    assert f"{len(records)} events" in err
    assert "net.transfers" in err


def test_cli_trace_streams_to_stdout(capsys):
    code = main([
        "trace", "--trainers", "2", "--rounds", "1", "--partitions", "1",
        "--ipfs-nodes", "2", "--params", "2000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    records = [json.loads(line) for line in out.splitlines()]
    assert records and all("event" in r for r in records)


def test_cli_trace_failing_run_still_leaves_valid_jsonl(
        tmp_path, capsys, monkeypatch):
    # A run that dies mid-round must exit non-zero yet leave the events
    # written so far as a valid, parseable timeline (the exporter is
    # closed/flushed via its context manager).
    from repro.core import FLSession
    from repro.obs.events import IterationStarted as Started

    def exploding_run(self, rounds):
        bus = self.sim.bus
        bus.publish(Started(at=0.0, iteration=0))
        bus.publish(Started(at=1.0, iteration=1))
        raise RuntimeError("mid-round crash")

    monkeypatch.setattr(FLSession, "run", exploding_run)
    out = tmp_path / "trace.jsonl"
    code = main([
        "trace", "--output", str(out), "--trainers", "2", "--rounds", "1",
        "--partitions", "1", "--ipfs-nodes", "2", "--params", "2000",
    ])
    assert code == 1
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert [r["iteration"] for r in records] == [0, 1]
    assert "run failed" in capsys.readouterr().err


def test_cli_timeline_failing_run_still_writes_valid_json(
        tmp_path, capsys, monkeypatch):
    from repro.core import FLSession

    def exploding_run(self, rounds):
        raise RuntimeError("mid-round crash")

    monkeypatch.setattr(FLSession, "run", exploding_run)
    out = tmp_path / "timeline.json"
    code = main([
        "timeline", "--output", str(out), "--trainers", "2", "--rounds",
        "1", "--partitions", "1", "--ipfs-nodes", "2", "--params", "2000",
    ])
    assert code == 1
    trace = json.loads(out.read_text())  # still well-formed JSON
    assert "traceEvents" in trace
    assert "run failed" in capsys.readouterr().err
