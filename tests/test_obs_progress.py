"""Deterministic event sampling and the live progress layer."""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scale import ScaleScenario, run_scale_point, scale_manifest
from repro.obs import (
    EventBus,
    FlightRecorder,
    InvariantMonitors,
    MetricsRegistry,
    ProgressReporter,
    SAMPLED_EVENT_FAMILIES,
    SamplingPolicy,
    TelemetryCollector,
    format_heartbeat,
    read_progress,
    sample_key,
)
from repro.obs.events import (
    IterationFinished,
    IterationStarted,
    TransferCompleted,
    TransferStarted,
)
from repro.obs.forensics import DEFAULT_WINDOW_EVENTS


# -- sample_key / SamplingPolicy -------------------------------------------------


def test_sample_key_is_a_pure_function_of_its_parts():
    assert sample_key("a", 1, 2.5) == sample_key("a", 1, 2.5)
    assert sample_key("a", 1) != sample_key("a", 2)
    assert 0 <= sample_key("x") < (1 << 64)
    # Joined with a separator, so field boundaries matter.
    assert sample_key("ab", "c") != sample_key("a", "bc")


def test_sampling_policy_rejects_exact_families_and_bad_rates():
    with pytest.raises(ValueError):
        SamplingPolicy({IterationStarted: 0.5})
    with pytest.raises(ValueError):
        SamplingPolicy({TransferStarted: 0.0})
    with pytest.raises(ValueError):
        SamplingPolicy({TransferStarted: 1.5})


def test_firehose_covers_every_samplable_family():
    policy = SamplingPolicy.firehose(0.25)
    assert set(policy.rates) == set(SAMPLED_EVENT_FAMILIES)
    assert policy.describe() == {
        family.__name__: 0.25 for family in SAMPLED_EVENT_FAMILIES
    }
    assert list(policy.describe()) == sorted(policy.describe())


def test_admission_is_deterministic_and_near_the_rate():
    policy = SamplingPolicy.firehose(0.25)
    decisions = [
        policy.admits(TransferCompleted, "src", "dst", float(index))
        for index in range(4000)
    ]
    replay = [
        policy.admits(TransferCompleted, "src", "dst", float(index))
        for index in range(4000)
    ]
    assert decisions == replay
    admitted = sum(decisions)
    assert 0.20 * 4000 < admitted < 0.30 * 4000  # SHA-256 is uniform
    assert all(
        policy.admits(TransferCompleted, "s", "d", index)
        for index in range(100)
    ) is False


@given(
    rate=st.sampled_from([0.1, 0.25, 0.5, 0.75]),
    salt=st.integers(min_value=0, max_value=1_000_000),
)
@settings(max_examples=20, deadline=None)
def test_admitted_fraction_of_distinct_identities_tracks_the_rate(
        rate, salt):
    """Property: over any population of distinct identities, keyed
    sampling admits ≈rate of them (SHA-256 behaves uniformly), and the
    decision for each identity is stable."""
    policy = SamplingPolicy.firehose(rate)
    population = 4096
    decisions = [
        policy.admits(TransferStarted, f"id-{salt}-{index}", salt)
        for index in range(population)
    ]
    fraction = sum(decisions) / population
    assert abs(fraction - rate) < 0.05
    replay = [
        policy.admits(TransferStarted, f"id-{salt}-{index}", salt)
        for index in range(population)
    ]
    assert replay == decisions


def test_rate_one_admits_everything():
    policy = SamplingPolicy.firehose(1.0)
    assert all(policy.admits(family, index)
               for family in SAMPLED_EVENT_FAMILIES
               for index in range(50))


def test_bus_without_policy_admits_everything():
    bus = EventBus()
    assert bus.admits(TransferStarted, "anything")
    bus.sampling = SamplingPolicy.firehose(1e-9)
    assert not any(bus.admits(TransferStarted, index) for index in range(100))


# -- pre-sample taps: exact consumers never read sampled families ----------------


def test_sampled_families_are_disjoint_from_every_exact_consumer():
    """The exactness contracts (byte conservation, telemetry, forensics
    default window) hold under any sampling rate because their inputs
    are never sampled."""
    sampled = set(SAMPLED_EVENT_FAMILIES)
    monitors = InvariantMonitors(EventBus())
    assert sampled.isdisjoint(monitors._dispatch.keys())
    monitors.close()
    assert sampled.isdisjoint(TelemetryCollector.handled_event_types())
    assert sampled.isdisjoint(DEFAULT_WINDOW_EVENTS)


def test_monitors_stay_clean_under_aggressive_sampling():
    from repro.analysis.scale import _build_session

    scenario = ScaleScenario()
    session = _build_session(500, scenario)
    session.sim.bus.sampling = SamplingPolicy.firehose(0.05)
    monitors = InvariantMonitors(session.sim.bus)
    session.run_iteration()
    assert monitors.violations == []
    monitors.close()


# -- sampled replay determinism --------------------------------------------------


def _observed_run(population=500):
    scenario = ScaleScenario(observed=True, event_sample_rate=0.25)
    point = run_scale_point(population, scenario)
    manifest = scale_manifest([point], scenario)
    counters = {
        name: value for name, value in manifest.counters.items()
        if not name.endswith("wall_per_iteration")
    }
    return manifest.fingerprint, counters, point


def test_sampled_observed_replay_is_byte_identical():
    fp_a, counters_a, point_a = _observed_run()
    fp_b, counters_b, point_b = _observed_run()
    assert fp_a == fp_b
    assert counters_a == counters_b
    assert point_a.telemetry_peak_bytes == point_b.telemetry_peak_bytes > 0
    assert point_a.events_observed == point_b.events_observed > 0


def test_sampling_rate_enters_the_scenario_fingerprint():
    base = scale_manifest([], ScaleScenario(observed=True,
                                            event_sample_rate=0.25))
    other = scale_manifest([], ScaleScenario(observed=True,
                                             event_sample_rate=0.5))
    unobserved = scale_manifest([], ScaleScenario())
    assert base.fingerprint != other.fingerprint
    assert base.fingerprint != unobserved.fingerprint


def test_session_fingerprint_records_the_sampling_policy():
    from repro.analysis.scale import _build_session

    scenario = ScaleScenario()
    plain = _build_session(200, scenario).fingerprint()
    sampled_session = _build_session(200, scenario)
    sampled_session.sim.bus.sampling = SamplingPolicy.firehose(0.25)
    sampled = sampled_session.fingerprint()
    assert plain != sampled


def test_sampling_reduces_observed_events():
    full = run_scale_point(500, ScaleScenario(observed=True))
    thinned = run_scale_point(
        500, ScaleScenario(observed=True, event_sample_rate=0.25))
    assert 0 < thinned.events_observed < full.events_observed


# -- ProgressReporter ------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_heartbeat_schema_and_pacing():
    bus = EventBus()
    clock = FakeClock()
    human = io.StringIO()
    jsonl = io.StringIO()
    reporter = ProgressReporter(bus, stream=human, jsonl=jsonl,
                                interval=1.0, label="demo", clock=clock)
    bus.publish(IterationStarted(at=10.0, iteration=0))
    assert reporter.heartbeats == 0  # no wall time elapsed yet
    clock.now = 1.5
    bus.publish(IterationFinished(at=42.0, iteration=0))
    assert reporter.heartbeats == 1
    record = json.loads(jsonl.getvalue().splitlines()[0])
    assert record["seq"] == 0
    assert record["label"] == "demo"
    assert record["iteration"] == 0
    assert record["sim_seconds"] == 42.0
    assert record["events"] == 2
    assert record["events_per_s"] > 0
    assert "[demo]" in human.getvalue()
    # Within the interval: no new beat.
    bus.publish(IterationStarted(at=43.0, iteration=1))
    assert reporter.heartbeats == 1
    reporter.close()
    assert reporter.heartbeats == 2  # close always flushes a final beat
    final = json.loads(jsonl.getvalue().splitlines()[-1])
    assert final["iteration"] == 1
    assert final["events"] == 3


def test_heartbeat_reports_registry_and_recorder_occupancy():
    bus = EventBus()
    registry = MetricsRegistry(bus)
    recorder = FlightRecorder(bus, capacity=16)
    clock = FakeClock()
    reporter = ProgressReporter(bus, registry=registry, recorder=recorder,
                                stream=None, interval=1.0, clock=clock)
    bus.publish(IterationStarted(at=1.0, iteration=0))
    record = reporter.snapshot()
    assert record["events_observed"] == registry.events_observed
    assert record["peak_telemetry_bytes"] == registry.peak_telemetry_bytes
    assert record["telemetry_bytes"] >= 0
    assert record["recorder_occupancy"] == recorder.occupancy == 1
    assert "telemetry_peak=" in format_heartbeat(record)
    reporter.close()
    recorder.close()
    registry.close()


def test_reporter_validates_interval_and_owns_path_files(tmp_path):
    bus = EventBus()
    with pytest.raises(ValueError):
        ProgressReporter(bus, interval=0.0, stream=None)
    path = tmp_path / "progress.jsonl"
    clock = FakeClock()
    with ProgressReporter(bus, stream=None, jsonl=path, clock=clock,
                          label="a"):
        bus.publish(IterationStarted(at=1.0, iteration=0))
    # Append mode: a second reporter extends the same file.
    with ProgressReporter(bus, stream=None, jsonl=path, clock=clock,
                          label="b"):
        pass
    records = read_progress(path)
    assert [record["label"] for record in records] == ["a", "b"]


def test_read_progress_tolerates_a_truncated_tail(tmp_path):
    path = tmp_path / "progress.jsonl"
    path.write_text('{"seq": 0, "label": "x"}\n{"seq": 1, "lab')
    records = read_progress(path)
    assert len(records) == 1
    assert records[0]["seq"] == 0
    assert read_progress(io.StringIO("")) == []


def test_reporter_never_touches_the_simulated_clock():
    from repro.analysis.scale import _build_session

    scenario = ScaleScenario()
    bare = _build_session(200, scenario)
    bare.run_iteration()
    watched = _build_session(200, scenario)
    reporter = ProgressReporter(watched.sim.bus, stream=None,
                                jsonl=io.StringIO(), interval=1e-9)
    watched.run_iteration()
    reporter.close()
    assert reporter.heartbeats > 0
    assert watched.sim.now == bare.sim.now
    assert watched.fingerprint() == bare.fingerprint()
