"""ProtocolConfig must reject schedules and sizes that silently break the
protocol (an inverted t_train/t_sync used to produce zero-progress
iterations with no error at all)."""

import pytest

from repro.core import ProtocolConfig


def test_default_config_is_valid():
    ProtocolConfig()


def test_inverted_schedule_rejected():
    with pytest.raises(ValueError, match="t_train < t_sync"):
        ProtocolConfig(t_train=600.0, t_sync=300.0)


def test_equal_deadlines_rejected():
    with pytest.raises(ValueError, match="t_train < t_sync"):
        ProtocolConfig(t_train=600.0, t_sync=600.0)


def test_non_positive_t_train_rejected():
    with pytest.raises(ValueError, match="t_train"):
        ProtocolConfig(t_train=0.0, t_sync=600.0)


def test_non_positive_num_partitions_rejected():
    with pytest.raises(ValueError, match="num_partitions"):
        ProtocolConfig(num_partitions=0)


def test_non_positive_aggregators_per_partition_rejected():
    with pytest.raises(ValueError, match="aggregators_per_partition"):
        ProtocolConfig(aggregators_per_partition=0)


def test_non_positive_chunk_size_rejected():
    with pytest.raises(ValueError, match="chunk_size"):
        ProtocolConfig(chunk_size=0)
    with pytest.raises(ValueError, match="chunk_size"):
        ProtocolConfig(chunk_size=-1)


def test_negative_takeover_grace_rejected():
    with pytest.raises(ValueError, match="takeover_grace"):
        ProtocolConfig(takeover_grace=-1.0)


def test_zero_takeover_grace_allowed():
    ProtocolConfig(takeover_grace=0.0)


def test_non_positive_poll_interval_rejected():
    with pytest.raises(ValueError, match="poll_interval"):
        ProtocolConfig(poll_interval=0.0)
