"""Tests for the Sec. VI extensions: batch registration, directory map
snapshots on IPFS, and batch verification of Pedersen openings."""

import numpy as np
import pytest

from repro.core import (
    Address,
    FLSession,
    GRADIENT,
    PartitionCommitter,
    ProtocolConfig,
    SnapshotPublisher,
    SnapshotReader,
    accumulate_cids,
    decode_snapshot,
    encode_snapshot,
)
from repro.core.directory import DirectoryClient
from repro.crypto import (
    PedersenParams,
    SECP256K1,
    batch_verify,
    random_scalars,
)
from repro.ipfs import IPFSClient, compute_cid
from repro.ml import LogisticRegression, make_classification, split_iid

from tests.test_core_directory import make_world, run


# -- CID accumulation -------------------------------------------------------------


def test_accumulate_cids_order_independent():
    cids = [compute_cid(bytes([i])) for i in range(5)]
    assert accumulate_cids(cids) == accumulate_cids(list(reversed(cids)))


def test_accumulate_cids_detects_substitution():
    cids = [compute_cid(bytes([i])) for i in range(5)]
    swapped = cids[:4] + [compute_cid(b"intruder")]
    assert accumulate_cids(cids) != accumulate_cids(swapped)


def test_accumulate_cids_detects_omission():
    cids = [compute_cid(bytes([i])) for i in range(5)]
    assert accumulate_cids(cids) != accumulate_cids(cids[:4])


def test_accumulate_empty():
    assert accumulate_cids([]) == bytes(32)


# -- batch registration --------------------------------------------------------------


def test_batch_registration_accepted_and_queryable():
    sim, transport, dht, node, directory, committer = make_world()
    client = DirectoryClient("client-0", transport)
    cids = [node.store_object(bytes([i])) for i in range(3)]
    records = [
        {"address": Address("t0", i, 0, GRADIENT), "cid": cids[i],
         "commitment": None}
        for i in range(3)
    ]

    def scenario():
        ack = yield from client.register_batch(records)
        assert ack["accepted"]
        found = []
        for partition in range(3):
            rows = yield from client.lookup(partition, 0, GRADIENT)
            found.append(len(rows))
        return found

    assert run(sim, scenario()) == [1, 1, 1]
    assert directory.register_count == 1  # one message for three records


def test_batch_registration_rejects_bad_accumulation():
    sim, transport, dht, node, directory, committer = make_world()
    client = DirectoryClient("client-0", transport)
    cid = node.store_object(b"data")
    records = [{"address": Address("t0", 0, 0, GRADIENT), "cid": cid,
                "commitment": None}]

    def scenario():
        # Bypass the client helper to send a corrupted accumulation.
        from repro.core.directory import KIND_REGISTER_BATCH, REGISTER_SIZE
        response = yield from client.endpoint.request(
            "directory", KIND_REGISTER_BATCH,
            payload={"records": records, "accumulation": bytes(32)},
            size=REGISTER_SIZE,
        )
        rows = yield from client.lookup(0, 0, GRADIENT)
        return response.payload, rows

    ack, rows = run(sim, scenario())
    assert not ack["accepted"]
    assert rows == []


def test_session_with_batch_registration_matches_plain():
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    factory = lambda: LogisticRegression(num_features=8, seed=0)  # noqa

    plain = FLSession(
        ProtocolConfig(num_partitions=3, t_train=300, t_sync=500),
        factory, shards, num_ipfs_nodes=4,
    )
    batched = FLSession(
        ProtocolConfig(num_partitions=3, t_train=300, t_sync=500,
                       batch_registration=True),
        factory, shards, num_ipfs_nodes=4,
    )
    plain.run_iteration()
    metrics = batched.run_iteration()
    assert len(metrics.trainers_completed) == 4
    np.testing.assert_allclose(batched.consensus_params(),
                               plain.consensus_params(), atol=1e-12)
    # 4 trainers x 3 partitions: 12 registrations -> 4 batched messages
    # (plus the per-partition update registrations from aggregators).
    assert batched.directory.register_count < plain.directory.register_count


def test_batch_registration_with_verifiability():
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    session = FLSession(
        ProtocolConfig(num_partitions=2, t_train=300, t_sync=500,
                       batch_registration=True, verifiable=True),
        lambda: LogisticRegression(num_features=8, seed=0),
        shards, num_ipfs_nodes=4,
    )
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    assert not metrics.verification_failures


# -- map snapshots ----------------------------------------------------------------------


def test_snapshot_encode_decode_roundtrip():
    committer = PartitionCommitter(partition_len=4)
    blob, commitment = committer.encode_and_commit(np.ones(4))
    rows = [
        {"uploader_id": "t0", "cid": compute_cid(b"a"),
         "commitment": commitment},
        {"uploader_id": "t1", "cid": compute_cid(b"b"),
         "commitment": None},
    ]
    encoded = encode_snapshot(2, 7, rows)
    partition_id, iteration, decoded = decode_snapshot(
        encoded, curve=committer.curve
    )
    assert (partition_id, iteration) == (2, 7)
    assert decoded[0]["uploader_id"] == "t0"
    assert decoded[0]["cid"] == compute_cid(b"a")
    assert decoded[0]["commitment"] == commitment
    assert decoded[1]["commitment"] is None


def test_decode_snapshot_rejects_garbage():
    with pytest.raises(ValueError):
        decode_snapshot(b'{"kind": "something-else", "rows": []}')


def test_snapshot_publish_and_fetch_over_ipfs():
    sim, transport, dht, node, directory, committer = make_world()
    client = DirectoryClient("client-0", transport)
    reader_ipfs = IPFSClient("client-1", transport, dht)
    publisher_ipfs = IPFSClient("client-2", transport, dht)
    publisher = SnapshotPublisher(directory, publisher_ipfs, node="ipfs-0")
    reader = SnapshotReader(reader_ipfs, curve=committer.curve)
    data_cid = node.store_object(b"gradient bytes")
    box = {}

    def scenario():
        for trainer in ("t0", "t1", "t2"):
            yield from client.register(
                Address(trainer, 0, 0, GRADIENT), data_cid
            )
        snapshot_cid = yield from publisher.seal(0, 0)
        box["snapshot_cid"] = snapshot_cid
        rows = yield from reader.fetch(snapshot_cid)
        return rows

    rows = run(sim, scenario())
    assert sorted(row["uploader_id"] for row in rows) == ["t0", "t1", "t2"]
    assert all(row["cid"] == data_cid for row in rows)
    assert publisher.snapshot_cid(0, 0) == box["snapshot_cid"]
    assert publisher.snapshot_cid(1, 0) is None


# -- batch verification ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def pedersen():
    return PedersenParams.setup(SECP256K1, 6)


def make_openings(pedersen, count, seed=0):
    rng = np.random.default_rng(seed)
    openings = []
    for _ in range(count):
        values = [int(v) for v in rng.integers(-1000, 1000, size=6)]
        openings.append((values, pedersen.commit(values)))
    return openings


def test_batch_verify_accepts_valid(pedersen):
    openings = make_openings(pedersen, 5)
    assert batch_verify(pedersen, openings, seed=42)


def test_batch_verify_rejects_one_bad(pedersen):
    openings = make_openings(pedersen, 5)
    values, commitment = openings[2]
    tampered = list(values)
    tampered[0] += 1
    openings[2] = (tampered, commitment)
    assert not batch_verify(pedersen, openings, seed=42)


def test_batch_verify_rejects_swapped_commitments(pedersen):
    openings = make_openings(pedersen, 3)
    swapped = [
        (openings[0][0], openings[1][1]),
        (openings[1][0], openings[0][1]),
        openings[2],
    ]
    assert not batch_verify(pedersen, swapped, seed=42)


def test_batch_verify_empty_is_true(pedersen):
    assert batch_verify(pedersen, [])


def test_batch_verify_mixed_lengths(pedersen):
    openings = [
        ([1, 2], pedersen.commit([1, 2])),
        ([3, 4, 5, 6], pedersen.commit([3, 4, 5, 6])),
    ]
    assert batch_verify(pedersen, openings, seed=1)


def test_batch_verify_identity_commitments(pedersen):
    openings = [([0, 0], pedersen.commit([0, 0]))]
    assert batch_verify(pedersen, openings, seed=1)
    openings.append(([7], pedersen.commit([7])))
    assert batch_verify(pedersen, openings, seed=1)


def test_random_scalars_properties():
    scalars = random_scalars(10, SECP256K1.n, seed=3)
    assert len(scalars) == 10
    assert all(0 < s < (1 << 128) for s in scalars)
    assert random_scalars(10, SECP256K1.n, seed=3) == scalars
