"""Perfetto / Chrome trace-event export (repro.obs.perfetto)."""

import io
import json

from repro.obs import EventBus, PerfettoExporter, SpanCollector, \
    build_span_tree
from repro.obs.events import (
    BlockFetched,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    UpdateRegistered,
    UploadCompleted,
)


def round_events(iteration=0, base=0.0):
    return [
        IterationStarted(at=base, iteration=iteration, t_train=600.0,
                         t_sync=1200.0),
        GradientRegistered(at=base + 1.0, iteration=iteration,
                           uploader="trainer-0", partition_id=0),
        UploadCompleted(at=base + 1.2, iteration=iteration,
                        trainer="trainer-0", delay=1.0, started_at=base),
        BlockFetched(at=base + 2.5, client="aggregator-0", node="ipfs-0",
                     cid="c", size=64, started_at=base + 1.5),
        GradientsAggregated(at=base + 3.0, iteration=iteration,
                            aggregator="aggregator-0", partition_id=0,
                            started_at=base + 0.1),
        UpdateRegistered(at=base + 4.0, iteration=iteration,
                         aggregator="aggregator-0", partition_id=0,
                         started_at=base + 3.0),
        IterationFinished(at=base + 4.5, iteration=iteration),
    ]


def exported_trace():
    tree = build_span_tree(round_events())
    return PerfettoExporter([tree]).to_dict(), tree


# -- schema well-formedness ------------------------------------------------------


def test_trace_is_json_object_format():
    trace, _tree = exported_trace()
    assert isinstance(trace["traceEvents"], list)
    assert trace["displayTimeUnit"] == "ms"
    json.loads(json.dumps(trace))  # fully JSON-serializable


def test_every_record_is_well_formed():
    trace, _tree = exported_trace()
    for record in trace["traceEvents"]:
        assert record["ph"] in {"X", "i", "M"}
        assert isinstance(record["name"], str) and record["name"]
        assert isinstance(record["pid"], int)
        if record["ph"] == "M":
            assert record["name"] in {"process_name", "thread_name"}
            assert isinstance(record["args"]["name"], str)
            continue
        assert isinstance(record["tid"], int)
        assert isinstance(record["ts"], float)
        assert record["ts"] >= 0.0
        if record["ph"] == "X":
            assert isinstance(record["dur"], float)
            assert record["dur"] >= 0.0
        else:  # instant
            assert record["s"] == "t"
            assert "dur" not in record


def test_timestamps_are_sim_seconds_in_microseconds():
    trace, tree = exported_trace()
    slices = {record["name"]: record for record in trace["traceEvents"]
              if record["ph"] == "X"}
    [collect] = tree.named("collect")
    assert slices["collect"]["ts"] == collect.start * 1e6
    assert slices["collect"]["dur"] == collect.duration * 1e6
    assert slices["collect"]["args"]["iteration"] == 0
    assert slices["collect"]["args"]["partition_id"] == 0


def test_one_thread_track_per_node():
    trace, tree = exported_trace()
    thread_names = {record["tid"]: record["args"]["name"]
                    for record in trace["traceEvents"]
                    if record["ph"] == "M"
                    and record["name"] == "thread_name"}
    assert sorted(thread_names.values()) == sorted(tree.nodes())
    assert thread_names[0] == "session"  # the root track is tid 0
    # Slices reference only declared tracks.
    for record in trace["traceEvents"]:
        if record["ph"] in {"X", "i"}:
            assert record["tid"] in thread_names


def test_multiple_iterations_share_node_tracks():
    first = build_span_tree(round_events(iteration=0, base=0.0))
    second = build_span_tree(round_events(iteration=1, base=10.0))
    exporter = PerfettoExporter()
    exporter.add_tree(first)
    exporter.add_tree(second)
    trace = exporter.to_dict()
    uploads = [record for record in trace["traceEvents"]
               if record["ph"] == "X" and record["name"] == "upload"]
    assert len(uploads) == 2
    assert uploads[0]["tid"] == uploads[1]["tid"]
    iterations = {record["args"]["iteration"] for record in uploads}
    assert iterations == {0, 1}


# -- destinations ----------------------------------------------------------------


def test_write_to_path_and_stream(tmp_path):
    tree = build_span_tree(round_events())
    exporter = PerfettoExporter([tree])
    target = tmp_path / "timeline.json"
    exporter.write(target)
    assert json.loads(target.read_text())["traceEvents"]
    stream = io.StringIO()
    exporter.write(stream)
    assert json.loads(stream.getvalue()) == exporter.to_dict()
    assert exporter.to_json().startswith("{")


def test_export_from_a_live_collector():
    bus = EventBus()
    collector = SpanCollector(bus)
    for event in round_events():
        bus.publish(event)
    trace = PerfettoExporter(collector.trees.values()).to_dict()
    names = {record["name"] for record in trace["traceEvents"]
             if record["ph"] in {"X", "i"}}
    assert {"iteration", "upload", "collect", "publish_update",
            "register", "fetch"} <= names
