"""Tests for models: gradient correctness (vs numerical differentiation),
parameter flattening, and training behaviour."""

import numpy as np
import pytest

from repro.ml import (
    Dataset,
    LinearRegression,
    LogisticRegression,
    MLPClassifier,
    make_classification,
    make_regression,
)


def numerical_gradient(model, X, y, epsilon=1e-6):
    """Central-difference gradient of the model loss."""
    base = model.get_params()
    grad = np.zeros_like(base)
    for i in range(base.shape[0]):
        bumped = base.copy()
        bumped[i] += epsilon
        model.set_params(bumped)
        loss_plus, _ = model.loss_and_gradient(X, y)
        bumped[i] -= 2 * epsilon
        model.set_params(bumped)
        loss_minus, _ = model.loss_and_gradient(X, y)
        grad[i] = (loss_plus - loss_minus) / (2 * epsilon)
    model.set_params(base)
    return grad


# -- parameter flattening ----------------------------------------------------------


@pytest.mark.parametrize("model_factory", [
    lambda: LinearRegression(num_features=5),
    lambda: LogisticRegression(num_features=5, num_classes=3),
    lambda: MLPClassifier(num_features=5, hidden=7, num_classes=3),
])
def test_param_roundtrip(model_factory):
    model = model_factory()
    flat = model.get_params()
    assert flat.shape == (model.num_params(),)
    rng = np.random.default_rng(1)
    new = rng.normal(size=flat.shape)
    model.set_params(new)
    np.testing.assert_allclose(model.get_params(), new)


@pytest.mark.parametrize("model_factory", [
    lambda: LinearRegression(num_features=4),
    lambda: LogisticRegression(num_features=4, num_classes=2),
    lambda: MLPClassifier(num_features=4, hidden=3),
])
def test_set_params_wrong_size_raises(model_factory):
    model = model_factory()
    with pytest.raises(ValueError):
        model.set_params(np.zeros(model.num_params() + 1))


def test_num_params_formulas():
    assert LinearRegression(num_features=10).num_params() == 11
    assert LogisticRegression(num_features=10, num_classes=3).num_params() == 33
    assert MLPClassifier(num_features=10, hidden=8,
                         num_classes=4).num_params() == 10 * 8 + 8 + 8 * 4 + 4


def test_clone_is_independent():
    model = LogisticRegression(num_features=4, num_classes=2)
    copy = model.clone()
    np.testing.assert_allclose(copy.get_params(), model.get_params())
    copy.set_params(copy.get_params() + 1.0)
    assert not np.allclose(copy.get_params(), model.get_params())


def test_constructor_validation():
    with pytest.raises(ValueError):
        LinearRegression(num_features=0)
    with pytest.raises(ValueError):
        LogisticRegression(num_features=3, num_classes=1)
    with pytest.raises(ValueError):
        MLPClassifier(num_features=3, hidden=0)


# -- gradient correctness -----------------------------------------------------------


def test_linear_regression_gradient_exact():
    data = make_regression(num_samples=50, num_features=4, seed=2)
    model = LinearRegression(num_features=4, l2=0.01, seed=3)
    _, analytic = model.loss_and_gradient(data.X, data.y)
    numeric = numerical_gradient(model, data.X, data.y)
    np.testing.assert_allclose(analytic, numeric, atol=1e-5)


def test_logistic_regression_gradient_exact():
    data = make_classification(num_samples=60, num_features=4,
                               num_classes=3, seed=2)
    model = LogisticRegression(num_features=4, num_classes=3,
                               l2=0.01, seed=3)
    _, analytic = model.loss_and_gradient(data.X, data.y)
    numeric = numerical_gradient(model, data.X, data.y)
    np.testing.assert_allclose(analytic, numeric, atol=1e-5)


def test_mlp_gradient_exact():
    data = make_classification(num_samples=40, num_features=3,
                               num_classes=2, seed=2)
    model = MLPClassifier(num_features=3, hidden=5, num_classes=2,
                          l2=0.01, seed=3)
    _, analytic = model.loss_and_gradient(data.X, data.y)
    numeric = numerical_gradient(model, data.X, data.y)
    np.testing.assert_allclose(analytic, numeric, atol=1e-4)


# -- learning behaviour -------------------------------------------------------------


def test_linear_regression_fits_teacher():
    data = make_regression(num_samples=500, num_features=5,
                           noise=0.01, seed=4)
    model = LinearRegression(num_features=5, seed=5)
    for _ in range(300):
        loss, grad = model.loss_and_gradient(data.X, data.y)
        model.set_params(model.get_params() - 0.1 * grad)
    final_loss, _ = model.loss_and_gradient(data.X, data.y)
    assert final_loss < 0.01


def test_logistic_regression_separates_blobs():
    data = make_classification(num_samples=400, num_features=5,
                               num_classes=2, class_separation=3.0, seed=6)
    model = LogisticRegression(num_features=5, num_classes=2, seed=7)
    for _ in range(200):
        _, grad = model.loss_and_gradient(data.X, data.y)
        model.set_params(model.get_params() - 0.5 * grad)
    predictions = model.predict(data.X)
    assert np.mean(predictions == data.y) > 0.95


def test_mlp_learns_xor():
    rng = np.random.default_rng(8)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    model = MLPClassifier(num_features=2, hidden=16, num_classes=2, seed=9)
    for _ in range(600):
        _, grad = model.loss_and_gradient(X, y)
        model.set_params(model.get_params() - 1.0 * grad)
    assert np.mean(model.predict(X) == y) > 0.9


def test_predict_proba_sums_to_one():
    data = make_classification(num_samples=20, num_features=3,
                               num_classes=4, seed=10)
    model = LogisticRegression(num_features=3, num_classes=4)
    proba = model.predict_proba(data.X)
    np.testing.assert_allclose(proba.sum(axis=1), np.ones(20))
    mlp = MLPClassifier(num_features=3, hidden=4, num_classes=4)
    np.testing.assert_allclose(
        mlp.predict_proba(data.X).sum(axis=1), np.ones(20)
    )
