"""Shared test fixtures: small emulated IPFS deployments."""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.ipfs import DHT, IPFSClient, IPFSNode, PubSub
from repro.net import Network, Transport, mbps
from repro.sim import Simulator


@dataclass
class IPFSWorld:
    """A ready-made simulator + network + IPFS nodes + clients."""

    sim: Simulator
    network: Network
    transport: Transport
    dht: DHT
    pubsub: PubSub
    nodes: List[IPFSNode] = field(default_factory=list)
    clients: Dict[str, IPFSClient] = field(default_factory=dict)

    def node(self, index: int) -> IPFSNode:
        return self.nodes[index]

    def client(self, name: str) -> IPFSClient:
        return self.clients[name]


def make_ipfs_world(
    num_nodes: int = 2,
    client_names=("client-0",),
    bandwidth_mbps: float = 10.0,
    lookup_delay: float = 0.0,
    latency: float = 0.0,
    request_timeout: float = 120.0,
) -> IPFSWorld:
    """Build a world with ``num_nodes`` IPFS nodes and the given clients."""
    sim = Simulator()
    network = Network(sim, default_latency=latency)
    bandwidth = mbps(bandwidth_mbps)
    node_names = [f"ipfs-{i}" for i in range(num_nodes)]
    for name in list(client_names) + node_names:
        network.add_host(name, up_bandwidth=bandwidth,
                         down_bandwidth=bandwidth)
    transport = Transport(network)
    dht = DHT(sim, lookup_delay=lookup_delay)
    pubsub = PubSub(transport)
    nodes = [
        IPFSNode(sim, transport, dht, name) for name in node_names
    ]
    clients = {
        name: IPFSClient(name, transport, dht,
                         request_timeout=request_timeout)
        for name in client_names
    }
    return IPFSWorld(
        sim=sim, network=network, transport=transport, dht=dht,
        pubsub=pubsub, nodes=nodes, clients=clients,
    )


def run_proc(world: IPFSWorld, generator):
    """Run one client process to completion and return its value."""
    process = world.sim.process(generator)
    world.sim.run()
    if not process.ok:
        raise process.value
    return process.value
