"""QuantileSketch: exactness below the threshold, bounds above it."""

import math
import random

import pytest

from repro.analysis.stats import percentile
from repro.obs.sketch import (
    DEFAULT_EXACT_THRESHOLD,
    DEFAULT_RELATIVE_ERROR,
    QuantileSketch,
)


# -- exact mode ------------------------------------------------------------------


def test_exact_mode_percentiles_are_float_equal_to_the_golden():
    """Below the threshold the sketch must be indistinguishable from
    analysis.stats.percentile — the PR-3 exactness contract."""
    rng = random.Random(11)
    values = [rng.lognormvariate(0.0, 2.0) for _ in range(1000)]
    sketch = QuantileSketch(max_exact=4096)
    for value in values:
        sketch.add(value)
    assert sketch.exact
    for q in (0.0, 12.5, 50.0, 75.0, 95.0, 99.0, 99.9, 100.0):
        assert sketch.percentile(q) == percentile(values, q)


def test_exact_mode_accounting_and_values():
    sketch = QuantileSketch(max_exact=16)
    for value in (3.0, 1.0, 2.0):
        sketch.add(value)
    assert sketch.count == 3
    assert sketch.total == 6.0
    assert sketch.minimum == 1.0
    assert sketch.maximum == 3.0
    assert sketch.mean == 2.0
    assert sketch.values() == [3.0, 1.0, 2.0]  # arrival order
    assert list(sketch.iter_values()) == [3.0, 1.0, 2.0]


def test_empty_sketch_is_safe():
    sketch = QuantileSketch()
    assert sketch.count == 0
    assert sketch.percentile(50.0) == 0.0
    assert sketch.mean == 0.0
    assert sketch.values() == []


def test_percentile_validates_q():
    sketch = QuantileSketch()
    sketch.add(1.0)
    with pytest.raises(ValueError):
        sketch.percentile(101.0)
    with pytest.raises(ValueError):
        sketch.percentile(-1.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        QuantileSketch(max_exact=-1)
    with pytest.raises(ValueError):
        QuantileSketch(relative_error=0.0)
    with pytest.raises(ValueError):
        QuantileSketch(relative_error=1.0)


# -- spill / sketch mode ---------------------------------------------------------


def test_spill_happens_strictly_above_max_exact():
    sketch = QuantileSketch(max_exact=10)
    for index in range(10):
        sketch.add(float(index + 1))
    assert sketch.exact  # exactly at the threshold: still exact
    sketch.add(11.0)
    assert not sketch.exact
    assert sketch.count == 11


def test_values_raise_after_spill():
    sketch = QuantileSketch(max_exact=2)
    for value in (1.0, 2.0, 3.0):
        sketch.add(value)
    with pytest.raises(ValueError):
        sketch.values()
    with pytest.raises(ValueError):
        sketch.iter_values()


def test_sketch_mode_percentiles_respect_the_relative_error_bound():
    """Every quantile estimate must land within relative_error of the
    true quantile's neighbourhood (values at the floor/ceil ranks)."""
    eps = 0.01
    rng = random.Random(23)
    values = [rng.lognormvariate(1.0, 1.5) for _ in range(20_000)]
    sketch = QuantileSketch(max_exact=256, relative_error=eps)
    for value in values:
        sketch.add(value)
    assert not sketch.exact
    ordered = sorted(values)
    slack = 1e-9
    for q in (1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9):
        position = (len(ordered) - 1) * q / 100.0
        lo = ordered[math.floor(position)]
        hi = ordered[math.ceil(position)]
        estimate = sketch.percentile(q)
        assert lo * (1.0 - eps) - slack <= estimate \
            <= hi * (1.0 + eps) + slack, (q, estimate, lo, hi)


def test_sketch_extrema_and_sum_stay_exact_after_spill():
    sketch = QuantileSketch(max_exact=4)
    values = [0.5, 100.0, 2.0, 8.0, 0.125, 64.0]
    for value in values:
        sketch.add(value)
    assert not sketch.exact
    assert sketch.minimum == 0.125
    assert sketch.maximum == 100.0
    assert sketch.total == sum(values)
    # The tail quantiles honour the relative-error bound around the
    # exact extrema (and never escape [minimum, maximum]).
    eps = sketch.relative_error
    assert 0.125 <= sketch.percentile(0.0) <= 0.125 * (1.0 + eps)
    assert 100.0 * (1.0 - eps) <= sketch.percentile(100.0) <= 100.0


def test_sketch_handles_zeros_and_negatives():
    sketch = QuantileSketch(max_exact=2, relative_error=0.01)
    values = [-8.0, -1.0, 0.0, 0.0, 1.0, 8.0]
    for value in values:
        sketch.add(value)
    assert not sketch.exact
    assert sketch.minimum == -8.0
    assert sketch.maximum == 8.0
    median = sketch.percentile(50.0)
    assert -0.011 <= median <= 0.011  # true median is 0.0
    low = sketch.percentile(10.0)
    assert low < 0.0
    assert abs(low - (-8.0)) <= 8.0 * 0.01 + 1e-9


def test_memory_is_bounded_by_buckets_not_observations():
    sketch = QuantileSketch(max_exact=64, relative_error=0.01)
    rng = random.Random(5)
    for _ in range(50_000):
        sketch.add(rng.uniform(1.0, 1000.0))
    # log_gamma(1000) buckets at 1% error is ~346; far below 50k values.
    assert sketch.bucket_count < 400
    assert sketch.footprint_bytes() < 64 * 1024
    exact = QuantileSketch(max_exact=100_000)
    for _ in range(50_000):
        exact.add(1.0)
    assert sketch.footprint_bytes() < exact.footprint_bytes()


# -- merging ---------------------------------------------------------------------


def _filled(values, **kwargs):
    sketch = QuantileSketch(**kwargs)
    for value in values:
        sketch.add(value)
    return sketch


def test_merge_order_independence_in_sketch_mode():
    rng = random.Random(7)
    shard_a = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
    shard_b = [rng.expovariate(0.1) for _ in range(5000)]
    ab = _filled(shard_a, max_exact=64).merge(_filled(shard_b, max_exact=64))
    ba = _filled(shard_b, max_exact=64).merge(_filled(shard_a, max_exact=64))
    assert ab.count == ba.count == 10_000
    assert ab.minimum == ba.minimum
    assert ab.maximum == ba.maximum
    assert ab.total == ba.total  # pairwise float addition commutes
    assert ab.bucket_bounds() == ba.bucket_bounds()
    for q in (1.0, 25.0, 50.0, 75.0, 95.0, 99.0):
        assert ab.percentile(q) == ba.percentile(q)


def test_merge_of_exact_sketches_stays_exact_under_the_threshold():
    a = _filled([1.0, 2.0], max_exact=8)
    b = _filled([3.0, 4.0], max_exact=8)
    a.merge(b)
    assert a.exact
    assert a.count == 4
    assert a.percentile(50.0) == percentile([1.0, 2.0, 3.0, 4.0], 50.0)


def test_merge_spills_when_the_union_exceeds_the_threshold():
    a = _filled([float(i + 1) for i in range(5)], max_exact=8)
    b = _filled([float(i + 6) for i in range(5)], max_exact=8)
    a.merge(b)
    assert not a.exact
    assert a.count == 10
    assert a.minimum == 1.0 and a.maximum == 10.0


def test_merge_mixed_modes_and_empty():
    exact = _filled([2.0, 4.0], max_exact=8)
    spilled = _filled([float(i + 1) for i in range(20)], max_exact=4)
    spilled.merge(exact)
    assert not spilled.exact
    assert spilled.count == 22
    before = spilled.count
    spilled.merge(QuantileSketch(max_exact=8))  # empty: no-op
    assert spilled.count == before


def test_merge_rejects_mismatched_relative_error():
    a = QuantileSketch(relative_error=0.01)
    b = QuantileSketch(relative_error=0.02)
    b.add(1.0)
    with pytest.raises(ValueError, match=r"relative_error.*0\.01.*0\.02"):
        a.merge(b)


def test_merge_layout_mismatch_leaves_the_target_untouched():
    """The error path must not half-apply: a rejected merge leaves
    count/total/extrema exactly as they were."""
    a = QuantileSketch(relative_error=0.01)
    for value in (1.0, 2.0, 3.0):
        a.add(value)
    before = (a.count, a.total, a.minimum, a.maximum, a.exact)
    b = QuantileSketch(relative_error=0.05)
    b.add(99.0)
    with pytest.raises(ValueError):
        a.merge(b)
    assert (a.count, a.total, a.minimum, a.maximum, a.exact) == before
    assert percentile(a.values(), 50) == 2.0


def test_merge_mismatch_direction_is_reported_from_the_target():
    """Both merge directions fail; each message leads with the
    target's own relative_error."""
    a = QuantileSketch(relative_error=0.01)
    b = QuantileSketch(relative_error=0.02)
    a.add(1.0)
    b.add(2.0)
    with pytest.raises(ValueError, match=r"0\.01 vs 0\.02"):
        a.merge(b)
    with pytest.raises(ValueError, match=r"0\.02 vs 0\.01"):
        b.merge(a)


def test_defaults_are_sane():
    assert DEFAULT_EXACT_THRESHOLD == 4096
    assert DEFAULT_RELATIVE_ERROR == 0.01
