"""Unit tests for prime-field arithmetic and curve parameters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    SECP256K1,
    SECP256R1,
    curve_by_name,
    inverse_mod,
    is_quadratic_residue,
    legendre_symbol,
    sqrt_mod,
)


# -- field ----------------------------------------------------------------------


def test_inverse_mod_small():
    assert inverse_mod(3, 7) == 5  # 3*5 = 15 ≡ 1 (mod 7)


def test_inverse_mod_zero_raises():
    with pytest.raises(ZeroDivisionError):
        inverse_mod(0, 7)
    with pytest.raises(ZeroDivisionError):
        inverse_mod(14, 7)


@given(st.integers(min_value=1, max_value=10**9))
def test_inverse_mod_property(value):
    p = SECP256K1.p
    assert value * inverse_mod(value, p) % p == 1


def test_legendre_symbol_values():
    # mod 7: residues are {1, 2, 4}.
    assert legendre_symbol(1, 7) == 1
    assert legendre_symbol(2, 7) == 1
    assert legendre_symbol(3, 7) == -1
    assert legendre_symbol(0, 7) == 0


def test_sqrt_mod_p3mod4():
    p = SECP256K1.p  # ≡ 3 (mod 4)
    root = sqrt_mod(4, p)
    assert root * root % p == 4


def test_sqrt_mod_p1mod4_tonelli_shanks():
    p = 13  # ≡ 1 (mod 4)
    for value in (1, 3, 4, 9, 10, 12):
        root = sqrt_mod(value, p)
        assert root * root % p == value


def test_sqrt_mod_non_residue_raises():
    with pytest.raises(ValueError):
        sqrt_mod(3, 7)


def test_sqrt_mod_zero():
    assert sqrt_mod(0, 7) == 0


@settings(max_examples=20)
@given(st.integers(min_value=1, max_value=10**12))
def test_sqrt_of_square_property(value):
    p = SECP256R1.p
    square = value * value % p
    root = sqrt_mod(square, p)
    assert root * root % p == square


def test_is_quadratic_residue():
    assert is_quadratic_residue(2, 7)
    assert not is_quadratic_residue(3, 7)


# -- curve parameters --------------------------------------------------------------


def test_base_points_on_curve():
    for curve in (SECP256K1, SECP256R1):
        assert curve.is_on_curve(curve.gx, curve.gy)


def test_field_primes_are_probable_primes():
    """Fermat checks with several bases (full primality is standardized)."""
    for curve in (SECP256K1, SECP256R1):
        for modulus in (curve.p, curve.n):
            for base in (2, 3, 5, 7):
                assert pow(base, modulus - 1, modulus) == 1


def test_curve_sizes():
    assert SECP256K1.bit_length == 256
    assert SECP256K1.byte_length == 32
    assert SECP256R1.bit_length == 256


def test_curve_lookup():
    assert curve_by_name("secp256k1") is SECP256K1
    assert curve_by_name("secp256r1") is SECP256R1
    with pytest.raises(ValueError):
        curve_by_name("ed25519")


def test_curves_differ():
    assert SECP256K1.p != SECP256R1.p
    assert SECP256K1.a == 0 and SECP256R1.a != 0
