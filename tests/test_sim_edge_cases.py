"""Edge-case tests for the simulation kernel and primitives — the corner
paths the protocol stack relies on implicitly."""

import pytest

from repro.sim import (
    AnyOf,
    Event,
    FilterStore,
    Interrupt,
    SimulationError,
    Simulator,
    Store,
)


# -- run_until -------------------------------------------------------------------


def test_run_until_stops_at_event_not_queue_drain():
    sim = Simulator()
    late_noise = sim.timeout(1000.0)  # would drag the clock to 1000

    def quick(sim):
        yield sim.timeout(5.0)

    proc = sim.process(quick(sim))
    sim.run_until(proc)
    assert sim.now == 5.0
    assert not late_noise.processed  # still queued, untouched


def test_run_until_deadlock_detected():
    sim = Simulator()
    never = sim.event()  # nobody will trigger this

    def waiter(sim, event):
        yield event

    proc = sim.process(waiter(sim, never))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until(proc)


def test_run_until_already_processed_event():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    sim.run_until(proc)  # no-op, returns immediately
    assert sim.now == 1.0


def test_leftover_events_fire_harmlessly_later():
    """Stale timeouts from a finished phase must not disturb the next."""
    sim = Simulator()
    stale = sim.timeout(50.0)

    def phase_one(sim):
        yield sim.timeout(1.0)

    def phase_two(sim, log):
        yield sim.timeout(100.0)
        log.append(sim.now)

    proc1 = sim.process(phase_one(sim))
    sim.run_until(proc1)
    log = []
    proc2 = sim.process(phase_two(sim, log))
    sim.run_until(proc2)
    assert log == [101.0]
    assert stale.processed


# -- conditions on edge inputs ---------------------------------------------------------


def test_any_of_with_already_fired_event():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()  # process it
    log = []

    def waiter(sim, done):
        outcome = yield sim.any_of([done, sim.timeout(100.0)])
        log.append((sim.now, list(outcome.values())))

    sim.process(waiter(sim, done))
    sim.run(until=50.0)
    assert log == [(0.0, ["early"])]


def test_any_of_duplicate_events():
    sim = Simulator()
    t = sim.timeout(2.0, value="v")
    log = []

    def waiter(sim):
        outcome = yield AnyOf(sim, [t, t])
        log.append(list(outcome.values()))

    sim.process(waiter(sim))
    sim.run()
    assert log == [["v"]]


def test_all_of_mixed_simulators_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    event_a = sim_a.event()
    event_b = sim_b.event()
    with pytest.raises(SimulationError):
        sim_a.all_of([event_a, event_b])


# -- interrupts in primitive waits ------------------------------------------------------


def test_interrupt_while_waiting_on_store_get():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer(sim, store):
        try:
            yield store.get()
        except Interrupt:
            log.append(("interrupted", sim.now))

    def interrupter(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt()

    victim = sim.process(consumer(sim, store))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", 3.0)]


def test_abandoned_get_still_consumes_item():
    """A get waiter abandoned after an interrupt still owns its slot in
    the queue — documents the FilterStore contract the clients rely on
    (which is why they filter by request id)."""
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer(sim, store, tag):
        item = yield store.get(lambda x: x == tag)
        got.append((tag, item))

    sim.process(consumer(sim, store, "a"))
    sim.process(consumer(sim, store, "b"))
    store.put("b")
    store.put("a")
    sim.run()
    assert sorted(got) == [("a", "a"), ("b", "b")]


# -- event misc ------------------------------------------------------------------------


def test_defused_failure_does_not_crash():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("contained"))
    event.defused()
    sim.run()  # no raise


def test_undefused_failure_crashes_run():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("uncontained"))
    with pytest.raises(RuntimeError, match="uncontained"):
        sim.run()


def test_event_repr_states():
    sim = Simulator()
    event = sim.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    sim.run()
    assert "processed" in repr(event)


def test_timeout_zero_fires_this_instant_after_queue_order():
    sim = Simulator()
    order = []

    def a(sim):
        yield sim.timeout(0)
        order.append("a")

    def b(sim):
        yield sim.timeout(0)
        order.append("b")

    sim.process(a(sim))
    sim.process(b(sim))
    sim.run()
    assert order == ["a", "b"]
    assert sim.now == 0.0


def test_process_failure_value_propagates_to_run_until():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    proc = sim.process(bad(sim))
    with pytest.raises(ValueError, match="exploded"):
        sim.run_until(proc)
