"""Tests for differential run diagnosis (``python -m repro.cli explain``)."""

import json

import pytest

from repro.analysis import (
    Attribution,
    DiagnosisReport,
    diagnose_runs,
    load_run_artifact,
)
from repro.cli import main
from repro.obs import HostProfile, RunManifest, ScopeStat


def scope(subsystem, self_seconds, phase="dispatch"):
    return ScopeStat(subsystem=subsystem, phase=phase, actor="",
                     calls=100, self_seconds=self_seconds,
                     total_seconds=self_seconds)


def fast_profile():
    return HostProfile(
        fingerprint={"digest": "abc", "trainers": 4},
        wall_seconds=2.0, sim_seconds=1200.0, dispatches=1000,
        scopes=(scope("kernel", 0.5), scope("net", 0.4)),
    )


def slow_profile():
    # net blew up 0.4s -> 3.4s; kernel barely moved.
    return HostProfile(
        fingerprint={"digest": "abc", "trainers": 4},
        wall_seconds=5.0, sim_seconds=1200.0, dispatches=1000,
        scopes=(scope("net", 3.4), scope("kernel", 0.6)),
    )


def manifest(counters=None, gauges=None, fingerprint=None):
    return RunManifest(
        fingerprint=fingerprint or {"digest": "abc", "trainers": 4},
        counters=dict(counters or {}), gauges=dict(gauges or {}),
    )


# -- diagnose_runs ---------------------------------------------------------------


def test_diagnose_requires_at_least_one_artifact_pair():
    with pytest.raises(ValueError, match="two manifests or two profiles"):
        diagnose_runs(base_manifest=manifest())
    with pytest.raises(ValueError):
        diagnose_runs(base_profile=fast_profile())


def test_profile_pair_names_the_regressing_subsystem():
    report = diagnose_runs(base_profile=fast_profile(),
                           current_profile=slow_profile())
    top = report.top_attribution()
    assert top is not None
    assert top.kind == "subsystem"
    assert top.subject == "net"
    assert top.magnitude == pytest.approx(3.0)
    assert "+750%" in top.detail
    assert report.slowdown == pytest.approx(2.5)
    # Shifts are sorted by grown self-seconds, worst first.
    assert [s.subsystem for s in report.subsystem_shifts[:2]] \
        == ["net", "kernel"]


def test_anomaly_differential_is_attributed_by_kind():
    base = manifest(counters={"obs.anomaly.detected": 0.0})
    current = manifest(counters={
        "obs.anomaly.detected": 3.0,
        "obs.anomaly.detected.retry_storm": 2.0,
        "obs.anomaly.detected.sim_stall": 1.0,
    })
    report = diagnose_runs(base_manifest=base, current_manifest=current)
    assert report.anomalies_base == {}
    assert report.anomalies_current == {"retry_storm": 2, "sim_stall": 1}
    anomaly_attrs = [a for a in report.attributions
                     if a.kind == "anomaly"]
    assert [a.subject for a in anomaly_attrs] \
        == ["retry_storm", "sim_stall"]  # sorted by count delta
    assert "fired 2x in current run only" in anomaly_attrs[0].detail


def test_config_drift_flags_fingerprint_mismatch():
    base = manifest(fingerprint={"digest": "abc", "trainers": 4})
    current = manifest(fingerprint={"digest": "xyz", "trainers": 8})
    report = diagnose_runs(base_manifest=base, current_manifest=current)
    assert not report.fingerprint_matches
    assert report.config_changes == {"trainers": (4, 8)}
    assert any(a.kind == "config" and a.subject == "trainers"
               for a in report.attributions)
    assert "WARNING: different config fingerprints" in report.format()
    # The ignored digest key never shows up as a config change.
    assert "digest" not in report.config_changes


def test_metric_regressions_rank_in_the_attribution_list():
    base = manifest(counters={"net.transfers_aborted": 2.0,
                              "dht.lookups": 100.0})
    current = manifest(counters={"net.transfers_aborted": 10.0,
                                 "dht.lookups": 101.0})
    report = diagnose_runs(base_manifest=base, current_manifest=current)
    metric_attrs = [a for a in report.attributions if a.kind == "metric"]
    assert [a.subject for a in metric_attrs] == ["net.transfers_aborted"]
    assert metric_attrs[0].magnitude == pytest.approx(4.0)
    assert report.metrics.unchanged == 1  # dht.lookups within threshold


def test_fused_report_ranks_subsystems_before_anomalies_and_metrics():
    base = manifest(counters={"x": 1.0})
    current = manifest(counters={
        "x": 5.0, "obs.anomaly.detected.queue_runaway": 1.0})
    report = diagnose_runs(
        base_manifest=base, current_manifest=current,
        base_profile=fast_profile(), current_profile=slow_profile())
    kinds = [a.kind for a in report.attributions]
    assert kinds.index("subsystem") < kinds.index("anomaly") \
        < kinds.index("metric")


def test_identical_runs_have_nothing_to_attribute():
    report = diagnose_runs(base_manifest=manifest(counters={"x": 1.0}),
                           current_manifest=manifest(counters={"x": 1.0}))
    assert report.attributions == []
    assert "no differences worth attributing" in report.format()


def test_report_to_dict_is_json_serializable():
    report = diagnose_runs(
        base_manifest=manifest(counters={"x": 1.0}),
        current_manifest=manifest(
            counters={"x": 9.0, "obs.anomaly.detected.divergence": 1.0}),
        base_profile=fast_profile(), current_profile=slow_profile())
    payload = json.loads(json.dumps(report.to_dict(), default=str))
    assert payload["slowdown"] == pytest.approx(2.5)
    assert payload["anomalies"]["current"] == {"divergence": 1}
    assert payload["attributions"][0]["subject"] == "net"
    assert payload["metrics"]["regressions"]


def test_top_attribution_of_empty_report_is_none():
    assert DiagnosisReport().top_attribution() is None
    assert Attribution("net", "subsystem", "grew").to_dict()["kind"] \
        == "subsystem"


# -- load_run_artifact -----------------------------------------------------------


def test_load_run_artifact_sniffs_manifest_and_profile(tmp_path):
    manifest_path = tmp_path / "manifest.json"
    manifest(counters={"x": 1.0}).write(manifest_path)
    profile_path = tmp_path / "profile.json"
    fast_profile().write(profile_path)
    kind, artifact = load_run_artifact(manifest_path)
    assert kind == "manifest" and isinstance(artifact, RunManifest)
    kind, artifact = load_run_artifact(profile_path)
    assert kind == "profile" and isinstance(artifact, HostProfile)


def test_load_run_artifact_rejects_unknown_shapes(tmp_path):
    junk = tmp_path / "junk.json"
    junk.write_text('{"neither": true}')
    with pytest.raises(ValueError, match="neither a RunManifest"):
        load_run_artifact(junk)
    array = tmp_path / "array.json"
    array.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="not a JSON object"):
        load_run_artifact(array)


# -- the explain CLI -------------------------------------------------------------


def test_explain_cli_names_the_regressing_subsystem(tmp_path, capsys):
    base = tmp_path / "base.json"
    current = tmp_path / "current.json"
    fast_profile().write(base)
    slow_profile().write(current)
    assert main(["explain", str(base), str(current)]) == 0
    out = capsys.readouterr().out
    assert "attribution (most suspicious first)" in out
    assert "1. [subsystem] net:" in out
    assert "wall clock: 2.50x base" in out


def test_explain_cli_json_output_round_trips(tmp_path, capsys):
    base = tmp_path / "base.json"
    current = tmp_path / "current.json"
    manifest(counters={"x": 1.0}).write(base)
    manifest(counters={
        "x": 1.0, "obs.anomaly.detected.retry_storm": 2.0,
    }).write(current)
    assert main(["explain", str(base), str(current), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["fingerprint_matches"] is True
    assert payload["attributions"][0]["subject"] == "retry_storm"


def test_explain_cli_mixes_manifests_with_profile_flags(tmp_path, capsys):
    base = tmp_path / "base.json"
    current = tmp_path / "current.json"
    manifest(counters={"x": 1.0}).write(base)
    manifest(counters={"x": 1.0}).write(current)
    pb = tmp_path / "pb.json"
    pc = tmp_path / "pc.json"
    fast_profile().write(pb)
    slow_profile().write(pc)
    assert main(["explain", str(base), str(current),
                 "--profile-base", str(pb),
                 "--profile-current", str(pc)]) == 0
    out = capsys.readouterr().out
    assert "[subsystem] net:" in out


def test_explain_cli_rejects_manifest_as_profile_flag(tmp_path, capsys):
    base = tmp_path / "base.json"
    current = tmp_path / "current.json"
    manifest(counters={"x": 1.0}).write(base)
    manifest(counters={"x": 1.0}).write(current)
    assert main(["explain", str(base), str(current),
                 "--profile-base", str(base)]) == 1
    assert "expected a HostProfile" in capsys.readouterr().err


def test_explain_cli_fails_cleanly_on_missing_file(tmp_path, capsys):
    assert main(["explain", str(tmp_path / "nope.json"),
                 str(tmp_path / "nope2.json")]) == 1
    assert "explain:" in capsys.readouterr().err
