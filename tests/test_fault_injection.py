"""Failure-injection tests: node deaths, slow trainers, churn + replication.

The paper's availability discussion (Sec. VI) argues gradients need only
short-lived availability, achievable by replicating across a few nodes
with rendezvous placement.  These tests exercise the protocol's behaviour
when storage nodes die and deadlines pass.
"""

import numpy as np
import pytest

from repro.core import FLSession, ProtocolConfig
from repro.ipfs import IPFSClient, IPFSError, NotFoundError
from repro.ml import LogisticRegression, make_classification, split_iid


def make_shards(num_trainers=4, seed=0):
    data = make_classification(num_samples=200, num_features=8,
                               class_separation=3.0, seed=seed)
    return split_iid(data, num_trainers, seed=seed)


def factory():
    return LogisticRegression(num_features=8, num_classes=2, seed=0)


def test_dead_upload_node_falls_back_to_live_nodes():
    """Without merge-and-download the upload target is arbitrary, so a
    trainer whose assigned node is down retries on a live one and the
    whole round completes."""
    shards = make_shards(num_trainers=4)
    config = ProtocolConfig(num_partitions=2, t_train=400.0, t_sync=800.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4,
                        bandwidth_mbps=10.0)
    dead_node = session.nodes[0]
    dead_node.online = False
    victims = {
        trainer for (trainer, _), node in
        session.assignment.upload_node.items() if node == dead_node.name
    }
    assert victims  # someone was assigned to the dead node
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    session.consensus_params()


def test_all_trainers_too_slow_round_times_out_cleanly():
    """local training longer than t_train: everyone aborts, nothing is
    registered, no update is produced, and the session doesn't crash."""
    shards = make_shards()
    config = ProtocolConfig(num_partitions=2, t_train=10.0, t_sync=30.0,
                            local_train_seconds=20.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    metrics = session.run_iteration()
    assert metrics.trainers_completed == []
    assert metrics.update_registered_at == {}
    assert metrics.first_gradient_at is None


def test_next_iteration_recovers_after_failed_round():
    shards = make_shards()
    config = ProtocolConfig(num_partitions=2, t_train=10.0, t_sync=30.0,
                            local_train_seconds=20.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    session.run_iteration()  # fails: everyone too slow
    for trainer in session.trainers:
        trainer.local_train_seconds = 0.0
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    session.consensus_params()


def test_replication_keeps_gradients_available_after_origin_death():
    """With the rendezvous replication cluster, killing the origin node
    after a round still leaves every gradient retrievable."""
    shards = make_shards()
    config = ProtocolConfig(num_partitions=2, t_train=200.0, t_sync=400.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4,
                        replication_factor=2)
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4

    gradient_cids = [
        entry.cid
        for partition in range(2)
        for entry in session.directory.entries_for(partition, 0, "gradient")
    ]
    assert len(gradient_cids) == 8

    # Kill the origin of every object; replicas must still serve them.
    for node in session.nodes[:2]:
        node.online = False
    fetcher = IPFSClient("trainer-0", session.testbed.transport,
                         session.dht, request_timeout=5.0)
    recovered = []

    def fetch_all():
        for cid in gradient_cids:
            try:
                blob = yield from fetcher.get(cid)
            except IPFSError:
                continue
            recovered.append(blob)

    proc = session.sim.process(fetch_all())
    session.sim.run_until(proc)
    live_replicas = sum(
        1 for cid in gradient_cids
        if any(node.online and node.store.has(cid)
               for node in session.nodes)
    )
    # Everything with a live replica must have been retrieved.
    assert len(recovered) == live_replicas
    # And replication must have actually placed extra copies.
    assert session.cluster.replications > 0


def test_merge_mode_with_dead_provider_partial_round():
    """Merge-and-download with one provider down: the trainers uploading
    there miss the round; the merged aggregate covers the rest."""
    shards = make_shards(num_trainers=8)
    config = ProtocolConfig(num_partitions=2, t_train=200.0, t_sync=400.0,
                            merge_and_download=True,
                            providers_per_aggregator=2)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)
    # Kill one provider of aggregator-0.
    dead_name = session.assignment.providers_of["aggregator-0"][0]
    next(node for node in session.nodes if node.name == dead_name) \
        .online = False
    metrics = session.run_iteration()
    survivors = set(metrics.trainers_completed)
    victims = {
        trainer for (trainer, _), node in
        session.assignment.upload_node.items() if node == dead_name
    }
    assert survivors
    assert survivors.isdisjoint(victims)


def test_mid_iteration_node_death_times_out_gracefully():
    """A node dying mid-round (after uploads began) must not wedge the
    session: affected requests time out and the round ends."""
    shards = make_shards()
    config = ProtocolConfig(num_partitions=2, t_train=200.0, t_sync=400.0)
    session = FLSession(config, factory, shards, num_ipfs_nodes=4)

    def killer():
        yield session.sim.timeout(0.05)  # mid-upload for some trainer
        session.nodes[1].online = False

    session.sim.process(killer())
    metrics = session.run_iteration()  # must terminate
    assert metrics.finished_at > metrics.started_at
    # The session can still make progress afterwards with the live nodes.
    session.nodes[1].online = True
    metrics2 = session.run_iteration()
    assert len(metrics2.trainers_completed) == 4
