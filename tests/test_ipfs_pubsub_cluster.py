"""Tests for pub/sub, replication cluster, and merger registry."""

import numpy as np
import pytest

from repro.ipfs import (
    MergeError,
    ReplicationCluster,
    compute_cid,
    get_merger,
    merger_names,
    register_merger,
    rendezvous_rank,
    sum_f64,
)

from tests.util import make_ipfs_world


# -- PubSub --------------------------------------------------------------------


def test_publish_reaches_all_subscribers():
    world = make_ipfs_world(
        num_nodes=1, client_names=("alice", "bob", "carol")
    )
    pubsub = world.pubsub
    sub_bob = pubsub.subscribe("updates", "bob")
    sub_carol = pubsub.subscribe("updates", "carol")
    got = {}

    def listener(name, subscription):
        message = yield subscription.get()
        got[name] = message.payload

    def publisher():
        yield pubsub.publish("updates", "alice", payload="hash123", size=64)

    world.sim.process(listener("bob", sub_bob))
    world.sim.process(listener("carol", sub_carol))
    world.sim.process(publisher())
    world.sim.run()
    assert got == {"bob": "hash123", "carol": "hash123"}


def test_publish_without_subscribers_is_noop():
    world = make_ipfs_world(num_nodes=1)
    done = world.pubsub.publish("empty-topic", "client-0", payload="x")
    world.sim.run()
    assert done.triggered


def test_unsubscribe_stops_delivery():
    world = make_ipfs_world(num_nodes=1, client_names=("alice", "bob"))
    pubsub = world.pubsub
    subscription = pubsub.subscribe("topic", "bob")
    subscription.cancel()
    pubsub.publish("topic", "alice", payload="after-cancel")
    world.sim.run()
    assert len(subscription.queue) == 0
    assert pubsub.peers("topic") == 0


def test_sender_receives_own_message_if_subscribed():
    world = make_ipfs_world(num_nodes=1, client_names=("alice",))
    pubsub = world.pubsub
    subscription = pubsub.subscribe("topic", "alice")
    got = []

    def listener(subscription):
        message = yield subscription.get()
        got.append(message.sender)

    world.sim.process(listener(subscription))
    pubsub.publish("topic", "alice", payload="self")
    world.sim.run()
    assert got == ["alice"]


def test_publish_charges_network():
    world = make_ipfs_world(
        num_nodes=1, client_names=("alice", "bob"), bandwidth_mbps=10.0
    )
    pubsub = world.pubsub
    subscription = pubsub.subscribe("topic", "bob")
    arrival = {}

    def listener(sim, subscription):
        message = yield subscription.get()
        arrival["t"] = sim.now

    world.sim.process(listener(world.sim, subscription))
    pubsub.publish("topic", "alice", payload=b"x", size=1_000_000)
    world.sim.run()
    assert arrival["t"] > 0.7  # ~0.8s for 1MB at 10Mbps


def test_publish_telemetry():
    world = make_ipfs_world(num_nodes=1)
    world.pubsub.publish("t", "client-0", payload=1)
    world.pubsub.publish("t", "client-0", payload=2)
    world.sim.run()
    assert world.pubsub.published["t"] == 2


# -- rendezvous hashing / cluster --------------------------------------------------


def test_rendezvous_rank_is_deterministic():
    cid = compute_cid(b"object")
    names = [f"node-{i}" for i in range(5)]
    assert rendezvous_rank(cid, names) == rendezvous_rank(cid, names)


def test_rendezvous_rank_is_permutation():
    cid = compute_cid(b"object")
    names = [f"node-{i}" for i in range(5)]
    assert sorted(rendezvous_rank(cid, names)) == names


def test_rendezvous_distributes_uniformly():
    """Across many CIDs, each node should win a fair share of placements."""
    names = [f"node-{i}" for i in range(4)]
    wins = {name: 0 for name in names}
    for i in range(400):
        top = rendezvous_rank(compute_cid(str(i).encode()), names)[0]
        wins[top] += 1
    for count in wins.values():
        assert 50 <= count <= 150  # fair within generous bounds


def test_cluster_replicates_puts():
    world = make_ipfs_world(num_nodes=3, bandwidth_mbps=100.0)
    cluster = ReplicationCluster(world.sim, world.nodes, replication_factor=2)
    client = world.client("client-0")
    box = {}

    def scenario(sim):
        cid = yield from client.put(b"replicate me", node="ipfs-0")
        yield sim.timeout(60.0)  # let background replication finish
        box["cid"] = cid

    world.sim.process(scenario(world.sim))
    world.sim.run()
    holders = cluster.live_holders(box["cid"])
    assert "ipfs-0" in holders  # origin keeps it
    assert len(holders) >= 2


def test_cluster_validation():
    world = make_ipfs_world(num_nodes=1)
    with pytest.raises(ValueError):
        ReplicationCluster(world.sim, world.nodes, replication_factor=0)


def test_cluster_skips_offline_targets():
    world = make_ipfs_world(num_nodes=3, bandwidth_mbps=100.0)
    cluster = ReplicationCluster(world.sim, world.nodes, replication_factor=3)
    world.node(1).online = False
    world.node(2).online = False
    client = world.client("client-0")

    def scenario(sim):
        yield from client.put(b"data", node="ipfs-0")
        yield sim.timeout(60.0)

    world.sim.process(scenario(world.sim))
    world.sim.run()  # must not hang or crash


# -- merger registry ----------------------------------------------------------------


def test_sum_f64_adds_vectors():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([10.0, 20.0, 30.0])
    merged = np.frombuffer(sum_f64([a.tobytes(), b.tobytes()]), dtype=np.float64)
    np.testing.assert_allclose(merged, [11.0, 22.0, 33.0])


def test_sum_f64_rejects_empty():
    with pytest.raises(MergeError):
        sum_f64([])


def test_sum_f64_rejects_length_mismatch():
    with pytest.raises(MergeError, match="mismatch"):
        sum_f64([np.zeros(3).tobytes(), np.zeros(4).tobytes()])


def test_sum_f64_rejects_non_f64():
    with pytest.raises(MergeError):
        sum_f64([b"abc"])  # not a multiple of 8


def test_register_merger_conflict():
    with pytest.raises(ValueError):
        register_merger("sum-f64", sum_f64)
    register_merger("sum-f64", sum_f64, replace=True)  # explicit replace ok


def test_get_unknown_merger():
    with pytest.raises(MergeError):
        get_merger("does-not-exist")


def test_merger_names_contains_default():
    assert "sum-f64" in merger_names()
