"""Exhaustiveness: every event type is mapped into counters or metrics,
or is on the explicit exclusion list.

This is the test that fails when someone adds an event to
``repro.obs.events`` and forgets to give it a counter — the silent
observability gap the registries otherwise can't detect.
"""

import inspect

import pytest

from repro.obs import CountersRegistry, EventBus, MetricsRegistry
from repro.obs import events as events_module
from repro.obs.events import (
    BytesReceived,
    Event,
    IterationStarted,
    SyncPhaseStarted,
    TransferStarted,
)

#: Events deliberately absent from both registries, with the reason.
#: Grow this list consciously — never to make the test pass.
EXCLUDED = {
    TransferStarted: "start marker; TransferCompleted carries the "
                     "duration and size",
    IterationStarted: "start marker; IterationFinished is counted",
    SyncPhaseStarted: "start marker; SyncPhaseEnded carries the "
                      "duration",
    BytesReceived: "folded into per-iteration telemetry by "
                   "TelemetryCollector, not a counter",
}


def all_event_types():
    return sorted(
        (obj for _, obj in inspect.getmembers(events_module, inspect.isclass)
         if issubclass(obj, Event) and obj is not Event),
        key=lambda cls: cls.__name__,
    )


def mapped_event_types():
    return set(CountersRegistry.handled_event_types()) \
        | set(MetricsRegistry.handled_event_types())


@pytest.mark.parametrize("event_type", all_event_types(),
                         ids=lambda cls: cls.__name__)
def test_event_is_counted_or_explicitly_excluded(event_type):
    if event_type in EXCLUDED:
        return
    assert event_type in mapped_event_types(), (
        f"{event_type.__name__} is observed by neither CountersRegistry "
        f"nor MetricsRegistry; map it or add it to EXCLUDED with a "
        f"reason"
    )


def test_exclusion_list_is_disjoint_from_the_mapped_set():
    stale = [cls.__name__ for cls in EXCLUDED if cls in mapped_event_types()]
    assert not stale, f"now mapped, drop from EXCLUDED: {stale}"


def test_class_level_maps_match_live_subscriptions():
    """handled_event_types() must reflect what an instance actually
    subscribes to, or the coverage guarantee above is hollow."""
    bus = EventBus()
    counters = CountersRegistry(bus)
    metrics = MetricsRegistry(bus, counters=counters)
    try:
        assert set(counters._dispatch) == set(
            CountersRegistry.handled_event_types())
        assert set(metrics._dispatch) == set(
            MetricsRegistry.handled_event_types())
    finally:
        metrics.close()
        counters.close()
