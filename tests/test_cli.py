"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_train_defaults():
    args = build_parser().parse_args(["train"])
    assert args.trainers == 8
    assert not args.verifiable


def test_train_small_run(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "2",
        "--features", "6", "--samples", "120",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "accuracy" in out
    assert "identical global model" in out


def test_train_verifiable_run(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "2",
        "--features", "6", "--samples", "120", "--verifiable",
    ])
    assert code == 0
    assert "verifiable" in capsys.readouterr().out


def test_train_non_iid_merge(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "4",
        "--features", "6", "--samples", "200",
        "--non-iid", "--merge-and-download", "--providers", "2",
    ])
    assert code == 0
    assert "merge-and-download" in capsys.readouterr().out


def test_providers_sweep_small(capsys):
    code = main([
        "providers-sweep", "--trainers", "4",
        "--partition-mb", "0.1", "--providers", "1", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "analytic optimum" in out
    assert "providers" in out


def test_commit_cost_small(capsys):
    code = main([
        "commit-cost", "--sizes", "64", "--curves", "secp256k1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "secp256k1" in out
    assert "sha256" in out


def test_reproduce_parser():
    args = build_parser().parse_args(["reproduce", "--figures", "fig1"])
    assert args.figures == ["fig1"]
    args = build_parser().parse_args(["reproduce"])
    assert args.figures == ["fig1", "fig2", "fig3"]


SMALL_SESSION = [
    "--trainers", "2", "--rounds", "1", "--partitions", "1",
    "--ipfs-nodes", "2", "--params", "2000",
]


def test_timeline_writes_a_loadable_perfetto_trace(tmp_path, capsys):
    import json
    out = tmp_path / "timeline.json"
    code = main(["timeline", "--output", str(out)] + SMALL_SESSION)
    assert code == 0
    trace = json.loads(out.read_text())
    slices = [record for record in trace["traceEvents"]
              if record["ph"] == "X"]
    assert slices and all("ts" in r and "dur" in r and "tid" in r
                          for r in slices)
    assert {record["name"] for record in slices} >= {
        "iteration", "upload", "collect", "publish_update",
    }
    assert "ui.perfetto.dev" in capsys.readouterr().err


def test_timeline_streams_to_stdout(capsys):
    import json
    code = main(["timeline"] + SMALL_SESSION)
    assert code == 0
    trace = json.loads(capsys.readouterr().out)
    assert trace["traceEvents"]


def test_critical_path_prints_the_decomposition(capsys):
    code = main(["critical-path", "--straggler-threshold", "0.1"]
                + SMALL_SESSION)
    assert code == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "upload" in out and "publish_update" in out
    assert "stragglers (threshold 0.100 s)" in out
    assert "<-- straggler" in out


# -- audit / incidents -------------------------------------------------------------

AUDIT_SESSION = [
    "--trainers", "4", "--rounds", "1", "--partitions", "1",
    "--ipfs-nodes", "4", "--params", "64",
]


def test_audit_honest_run_exits_zero(capsys):
    code = main(["audit"] + AUDIT_SESSION + ["--verifiable"])
    assert code == 0
    assert "audit clean" in capsys.readouterr().out


def test_audit_injected_drop_exits_nonzero(tmp_path, capsys):
    code = main(["audit"] + AUDIT_SESSION
                + ["--inject", "drop", "--incidents-dir", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "audit FAILED" in out
    assert "classification: dropped" in out
    assert "aggregator-0" in out
    assert list(tmp_path.glob("incident-*.json"))


def test_audit_warn_only_reports_but_exits_zero(capsys):
    code = main(["audit"] + AUDIT_SESSION
                + ["--inject", "drop", "--warn-only"])
    assert code == 0
    assert "audit FAILED" in capsys.readouterr().out


def test_audit_inject_forces_verifiable(capsys):
    # No --verifiable on the command line; detection still works.
    code = main(["audit"] + AUDIT_SESSION + ["--inject", "lazy",
                                             "--warn-only"])
    assert code == 0
    captured = capsys.readouterr()
    assert "forces --verifiable" in captured.err
    assert "classification: lazy" in captured.out


def test_incidents_writes_loadable_bundles(tmp_path, capsys):
    import json
    out_dir = tmp_path / "inc"
    code = main(["incidents"] + AUDIT_SESSION
                + ["--inject", "drop", "--output-dir", str(out_dir)])
    assert code == 0
    bundles = sorted(out_dir.glob("incident-*.json"))
    assert bundles
    loaded = json.loads(bundles[0].read_text())
    assert loaded["blame"]["classification"] == "dropped"
    assert loaded["blame"]["aggregator"] == "aggregator-0"
    assert "trainer-2" in loaded["blame"]["dropped_trainers"]
    assert "bundle ->" in capsys.readouterr().out


def test_scale_parser_defaults():
    args = build_parser().parse_args(["scale"])
    assert args.populations == [100, 1_000, 10_000, 100_000]
    assert args.threshold == 0.20
    assert args.repeats == 1


def test_scale_writes_manifest_and_compares_clean(tmp_path, capsys):
    """Sweep a small point, then diff a rerun against it: the
    deterministic counters must match exactly, so no regressions."""
    baseline = tmp_path / "BENCH_scale.json"
    small = ["scale", "--populations", "40", "--sample", "4",
             "--cohorts", "4", "--partitions", "2", "--params", "2000",
             "--ipfs-nodes", "4"]
    code = main(small + ["--output", str(baseline)])
    assert code == 0
    out = capsys.readouterr().out
    assert "population" in out and "40" in out
    assert baseline.exists()

    code = main(small + ["--baseline", str(baseline),
                         "--threshold", "0.5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out


def test_scale_detects_a_regression(tmp_path, capsys):
    """A baseline doctored to claim a faster wall-clock must trip the
    gate (and --warn-only must downgrade it to exit 0)."""
    import json

    baseline = tmp_path / "BENCH_scale.json"
    small = ["scale", "--populations", "40", "--sample", "4",
             "--cohorts", "4", "--partitions", "2", "--params", "2000",
             "--ipfs-nodes", "4"]
    assert main(small + ["--output", str(baseline)]) == 0
    capsys.readouterr()

    doctored = json.loads(baseline.read_text())
    key = "scale.p40.wall_per_iteration"
    doctored["counters"][key] = doctored["counters"][key] / 1e6
    baseline.write_text(json.dumps(doctored))

    code = main(small + ["--baseline", str(baseline)])
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out

    code = main(small + ["--baseline", str(baseline), "--warn-only"])
    assert code == 0


def test_scale_observed_with_progress_and_status(tmp_path, capsys):
    """An observed sweep reports telemetry cost in the table and the
    manifest, streams heartbeats to JSONL, and `status` reads them."""
    import json

    manifest_path = tmp_path / "BENCH_scale.json"
    progress_path = tmp_path / "progress.jsonl"
    observed = ["scale", "--populations", "40", "--sample", "4",
                "--cohorts", "4", "--partitions", "2", "--params", "2000",
                "--ipfs-nodes", "4", "--observe",
                "--event-sample-rate", "0.5",
                "--progress", str(progress_path)]
    assert main(observed + ["--output", str(manifest_path)]) == 0
    out = capsys.readouterr().out
    assert "telemetry peak (B)" in out

    manifest = json.loads(manifest_path.read_text())
    assert manifest["counters"]["scale.p40.telemetry_peak_bytes"] > 0
    assert manifest["counters"]["scale.p40.events_observed"] > 0

    records = [json.loads(line)
               for line in progress_path.read_text().splitlines()]
    assert records
    assert records[-1]["label"] == "p40"
    assert records[-1]["peak_telemetry_bytes"] > 0

    # A rerun against the observed baseline is regression-free: the
    # telemetry counters are deterministic.
    assert main(observed + ["--baseline", str(manifest_path),
                            "--threshold", "0.5"]) == 0
    assert "0 regression(s)" in capsys.readouterr().out

    assert main(["status", str(progress_path)]) == 0
    status_out = capsys.readouterr().out
    assert "p40" in status_out


def test_status_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["status", str(tmp_path / "absent.jsonl")]) == 1
    capsys.readouterr()


def test_status_tail_limits_records(tmp_path, capsys):
    import json

    path = tmp_path / "progress.jsonl"
    path.write_text("".join(
        json.dumps({"seq": index, "label": "p40", "iteration": index,
                    "sim_seconds": float(index), "events": index,
                    "events_per_s": 1.0, "wall_seconds": 0.1}) + "\n"
        for index in range(5)))
    assert main(["status", str(path), "--tail", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("[p40]") == 2
