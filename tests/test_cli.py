"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_train_defaults():
    args = build_parser().parse_args(["train"])
    assert args.trainers == 8
    assert not args.verifiable


def test_train_small_run(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "2",
        "--features", "6", "--samples", "120",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "accuracy" in out
    assert "identical global model" in out


def test_train_verifiable_run(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "2",
        "--features", "6", "--samples", "120", "--verifiable",
    ])
    assert code == 0
    assert "verifiable" in capsys.readouterr().out


def test_train_non_iid_merge(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "4",
        "--features", "6", "--samples", "200",
        "--non-iid", "--merge-and-download", "--providers", "2",
    ])
    assert code == 0
    assert "merge-and-download" in capsys.readouterr().out


def test_providers_sweep_small(capsys):
    code = main([
        "providers-sweep", "--trainers", "4",
        "--partition-mb", "0.1", "--providers", "1", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "analytic optimum" in out
    assert "providers" in out


def test_commit_cost_small(capsys):
    code = main([
        "commit-cost", "--sizes", "64", "--curves", "secp256k1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "secp256k1" in out
    assert "sha256" in out


def test_reproduce_parser():
    args = build_parser().parse_args(["reproduce", "--figures", "fig1"])
    assert args.figures == ["fig1"]
    args = build_parser().parse_args(["reproduce"])
    assert args.figures == ["fig1", "fig2", "fig3"]


SMALL_SESSION = [
    "--trainers", "2", "--rounds", "1", "--partitions", "1",
    "--ipfs-nodes", "2", "--params", "2000",
]


def test_timeline_writes_a_loadable_perfetto_trace(tmp_path, capsys):
    import json
    out = tmp_path / "timeline.json"
    code = main(["timeline", "--output", str(out)] + SMALL_SESSION)
    assert code == 0
    trace = json.loads(out.read_text())
    slices = [record for record in trace["traceEvents"]
              if record["ph"] == "X"]
    assert slices and all("ts" in r and "dur" in r and "tid" in r
                          for r in slices)
    assert {record["name"] for record in slices} >= {
        "iteration", "upload", "collect", "publish_update",
    }
    assert "ui.perfetto.dev" in capsys.readouterr().err


def test_timeline_streams_to_stdout(capsys):
    import json
    code = main(["timeline"] + SMALL_SESSION)
    assert code == 0
    trace = json.loads(capsys.readouterr().out)
    assert trace["traceEvents"]


def test_critical_path_prints_the_decomposition(capsys):
    code = main(["critical-path", "--straggler-threshold", "0.1"]
                + SMALL_SESSION)
    assert code == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "upload" in out and "publish_update" in out
    assert "stragglers (threshold 0.100 s)" in out
    assert "<-- straggler" in out


# -- audit / incidents -------------------------------------------------------------

AUDIT_SESSION = [
    "--trainers", "4", "--rounds", "1", "--partitions", "1",
    "--ipfs-nodes", "4", "--params", "64",
]


def test_audit_honest_run_exits_zero(capsys):
    code = main(["audit"] + AUDIT_SESSION + ["--verifiable"])
    assert code == 0
    assert "audit clean" in capsys.readouterr().out


def test_audit_injected_drop_exits_nonzero(tmp_path, capsys):
    code = main(["audit"] + AUDIT_SESSION
                + ["--inject", "drop", "--incidents-dir", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "audit FAILED" in out
    assert "classification: dropped" in out
    assert "aggregator-0" in out
    assert list(tmp_path.glob("incident-*.json"))


def test_audit_warn_only_reports_but_exits_zero(capsys):
    code = main(["audit"] + AUDIT_SESSION
                + ["--inject", "drop", "--warn-only"])
    assert code == 0
    assert "audit FAILED" in capsys.readouterr().out


def test_audit_inject_forces_verifiable(capsys):
    # No --verifiable on the command line; detection still works.
    code = main(["audit"] + AUDIT_SESSION + ["--inject", "lazy",
                                             "--warn-only"])
    assert code == 0
    captured = capsys.readouterr()
    assert "forces --verifiable" in captured.err
    assert "classification: lazy" in captured.out


def test_incidents_writes_loadable_bundles(tmp_path, capsys):
    import json
    out_dir = tmp_path / "inc"
    code = main(["incidents"] + AUDIT_SESSION
                + ["--inject", "drop", "--output-dir", str(out_dir)])
    assert code == 0
    bundles = sorted(out_dir.glob("incident-*.json"))
    assert bundles
    loaded = json.loads(bundles[0].read_text())
    assert loaded["blame"]["classification"] == "dropped"
    assert loaded["blame"]["aggregator"] == "aggregator-0"
    assert "trainer-2" in loaded["blame"]["dropped_trainers"]
    assert "bundle ->" in capsys.readouterr().out


def test_scale_parser_defaults():
    args = build_parser().parse_args(["scale"])
    assert args.populations == [100, 1_000, 10_000, 100_000]
    assert args.threshold == 0.20
    assert args.repeats == 1


def test_scale_writes_manifest_and_compares_clean(tmp_path, capsys):
    """Sweep a small point, then diff a rerun against it: the
    deterministic counters must match exactly, so no regressions."""
    baseline = tmp_path / "BENCH_scale.json"
    small = ["scale", "--populations", "40", "--sample", "4",
             "--cohorts", "4", "--partitions", "2", "--params", "2000",
             "--ipfs-nodes", "4"]
    code = main(small + ["--output", str(baseline)])
    assert code == 0
    out = capsys.readouterr().out
    assert "population" in out and "40" in out
    assert baseline.exists()

    code = main(small + ["--baseline", str(baseline),
                         "--threshold", "0.5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out


def test_scale_detects_a_regression(tmp_path, capsys):
    """A baseline doctored to claim a faster wall-clock must trip the
    gate (and --warn-only must downgrade it to exit 0)."""
    import json

    baseline = tmp_path / "BENCH_scale.json"
    small = ["scale", "--populations", "40", "--sample", "4",
             "--cohorts", "4", "--partitions", "2", "--params", "2000",
             "--ipfs-nodes", "4"]
    assert main(small + ["--output", str(baseline)]) == 0
    capsys.readouterr()

    doctored = json.loads(baseline.read_text())
    key = "scale.p40.wall_per_iteration"
    doctored["counters"][key] = doctored["counters"][key] / 1e6
    baseline.write_text(json.dumps(doctored))

    code = main(small + ["--baseline", str(baseline)])
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out

    code = main(small + ["--baseline", str(baseline), "--warn-only"])
    assert code == 0


def test_scale_observed_with_progress_and_status(tmp_path, capsys):
    """An observed sweep reports telemetry cost in the table and the
    manifest, streams heartbeats to JSONL, and `status` reads them."""
    import json

    manifest_path = tmp_path / "BENCH_scale.json"
    progress_path = tmp_path / "progress.jsonl"
    observed = ["scale", "--populations", "40", "--sample", "4",
                "--cohorts", "4", "--partitions", "2", "--params", "2000",
                "--ipfs-nodes", "4", "--observe",
                "--event-sample-rate", "0.5",
                "--progress", str(progress_path)]
    assert main(observed + ["--output", str(manifest_path)]) == 0
    out = capsys.readouterr().out
    assert "telemetry peak (B)" in out

    manifest = json.loads(manifest_path.read_text())
    assert manifest["counters"]["scale.p40.telemetry_peak_bytes"] > 0
    assert manifest["counters"]["scale.p40.events_observed"] > 0

    records = [json.loads(line)
               for line in progress_path.read_text().splitlines()]
    assert records
    assert records[-1]["label"] == "p40"
    assert records[-1]["peak_telemetry_bytes"] > 0

    # A rerun against the observed baseline is regression-free: the
    # telemetry counters are deterministic.
    assert main(observed + ["--baseline", str(manifest_path),
                            "--threshold", "0.5"]) == 0
    assert "0 regression(s)" in capsys.readouterr().out

    assert main(["status", str(progress_path)]) == 0
    status_out = capsys.readouterr().out
    assert "p40" in status_out


def test_dirshard_parser_defaults():
    args = build_parser().parse_args(["dirshard"])
    assert args.populations == [1_000, 100_000]
    assert args.shards == [1, 2, 4]
    assert args.placement == "modulo"
    assert args.replication == 1
    assert args.threshold == 0.20


def test_dirshard_sweep_compares_clean_and_shares_never_gate(tmp_path,
                                                             capsys):
    """A small sweep diffs clean against its own rerun, and doctored
    load-share counters only warn (the shares move with placement and
    shard lists, which the fingerprint guards)."""
    import json

    baseline = tmp_path / "BENCH_dirshard.json"
    small = ["dirshard", "--populations", "40", "--shards", "1", "2",
             "--sample", "4", "--cohorts", "4", "--partitions", "2",
             "--params", "2000", "--ipfs-nodes", "4"]
    code = main(small + ["--output", str(baseline)])
    assert code == 0
    out = capsys.readouterr().out
    assert "regs/sec" in out
    assert baseline.exists()

    code = main(small + ["--baseline", str(baseline),
                         "--threshold", "0.5"])
    assert code == 0
    assert "0 regression(s)" in capsys.readouterr().out

    doctored = json.loads(baseline.read_text())
    share_key = "dirshard.p40.s2.share.directory-shard-0"
    assert share_key in doctored["counters"]
    doctored["counters"][share_key] /= 100.0
    baseline.write_text(json.dumps(doctored))
    assert main(small + ["--baseline", str(baseline),
                         "--threshold", "0.5"]) == 0


def test_dirshard_detects_a_throughput_regression(tmp_path, capsys):
    """A baseline doctored to claim a much less loaded busiest shard
    must trip the gate (max_busy_seconds carries the throughput
    direction); --warn-only downgrades it to exit 0."""
    import json

    baseline = tmp_path / "BENCH_dirshard.json"
    small = ["dirshard", "--populations", "40", "--shards", "2",
             "--sample", "4", "--cohorts", "4", "--partitions", "2",
             "--params", "2000", "--ipfs-nodes", "4"]
    assert main(small + ["--output", str(baseline)]) == 0
    capsys.readouterr()

    doctored = json.loads(baseline.read_text())
    key = "dirshard.p40.s2.max_busy_seconds"
    doctored["counters"][key] = doctored["counters"][key] / 1e6
    baseline.write_text(json.dumps(doctored))

    code = main(small + ["--baseline", str(baseline)])
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out

    assert main(small + ["--baseline", str(baseline),
                         "--warn-only"]) == 0


def test_status_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["status", str(tmp_path / "absent.jsonl")]) == 1
    capsys.readouterr()


def test_status_tail_limits_records(tmp_path, capsys):
    import json

    path = tmp_path / "progress.jsonl"
    path.write_text("".join(
        json.dumps({"seq": index, "label": "p40", "iteration": index,
                    "sim_seconds": float(index), "events": index,
                    "events_per_s": 1.0, "wall_seconds": 0.1}) + "\n"
        for index in range(5)))
    assert main(["status", str(path), "--tail", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("[p40]") == 2


def test_status_json_prints_the_latest_heartbeat(tmp_path, capsys):
    import json

    path = tmp_path / "progress.jsonl"
    path.write_text("".join(
        json.dumps({"seq": index, "label": "p40", "iteration": index,
                    "sim_seconds": float(index), "events": index,
                    "events_per_s": 1.0, "wall_seconds": 0.1}) + "\n"
        for index in range(3)))
    assert main(["status", str(path), "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["seq"] == 2  # the latest record, as one JSON object
    assert record["label"] == "p40"


def test_status_json_preserves_the_exit_contract(tmp_path, capsys):
    assert main(["status", str(tmp_path / "absent.jsonl"),
                 "--json"]) == 1
    assert "not found" in capsys.readouterr().err
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["status", str(empty), "--json"]) == 1
    assert "no heartbeats" in capsys.readouterr().err


# -- chaos --watch -----------------------------------------------------------


CLEAN_CHAOS = ["chaos", "--rounds", "1", "--trainers", "4",
               "--params", "2000"]


def test_chaos_expect_anomaly_implies_watch_and_fails_when_absent(
        capsys):
    # A clean run cannot produce a retry storm, so the expectation
    # fails; --expect-anomaly alone must attach the watchdog.
    assert main(CLEAN_CHAOS + ["--expect-anomaly", "retry_storm"]) == 1
    out = capsys.readouterr().out
    assert "expected anomaly kind(s) not detected: retry_storm" in out
    assert "watchdog: no anomalies" in out


def test_chaos_forbid_anomalies_passes_on_a_clean_run(capsys):
    assert main(CLEAN_CHAOS + ["--forbid-anomalies"]) == 0
    out = capsys.readouterr().out
    assert "watchdog: no anomalies" in out
    assert "chaos clean" in out


def test_chaos_without_watch_reports_nothing_from_the_watchdog(capsys):
    assert main(CLEAN_CHAOS) == 0
    assert "watchdog" not in capsys.readouterr().out


# -- profile -----------------------------------------------------------------


def _profile_args(extra=()):
    return [
        "profile", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "4",
        "--params", "2000", "--verifiable",
    ] + list(extra)


def test_profile_prints_the_hotspot_report(capsys):
    assert main(_profile_args()) == 0
    out = capsys.readouterr().out
    assert "host-cost profile:" in out
    assert "sim-s/wall-s" in out
    assert "shares:" in out
    assert "crypto" in out


def test_profile_writes_artifacts_and_shares_sum_to_one(tmp_path, capsys):
    import json

    out_path = tmp_path / "profile.json"
    trace_path = tmp_path / "profile.perfetto.json"
    code = main(_profile_args([
        "--observe", "--output", str(out_path),
        "--perfetto", str(trace_path),
    ]))
    capsys.readouterr()
    assert code == 0
    data = json.loads(out_path.read_text())
    assert data["version"] == 1
    assert sum(data["shares"].values()) == pytest.approx(1.0)
    assert "obs" in data["shares"]  # --observe priced the registry
    assert data["dispatches"] > 0
    assert data["fingerprint"]["digest"]
    trace = json.loads(trace_path.read_text())
    assert any(event.get("ph") == "X" and event.get("pid") == 2
               for event in trace["traceEvents"])


def test_profile_records_then_gates_a_doctored_regression(tmp_path, capsys):
    import json

    trajectory_path = tmp_path / "BENCH_profile.json"
    assert main(_profile_args([
        "--scenario", "smoke", "--record", str(trajectory_path),
    ])) == 0
    capsys.readouterr()

    # Doctor the committed record to claim the run used to be 100x
    # faster: the next gated run must regress.
    data = json.loads(trajectory_path.read_text())
    (record,) = data["scenarios"]["smoke"]
    record["wall_per_iteration"] /= 100.0
    record["wall_per_sim"] /= 100.0
    trajectory_path.write_text(json.dumps(data))

    assert main(_profile_args([
        "--scenario", "smoke", "--baseline", str(trajectory_path),
    ])) == 1
    out = capsys.readouterr().out
    assert "regression" in out
    assert main(_profile_args([
        "--scenario", "smoke", "--baseline", str(trajectory_path),
        "--warn-only",
    ])) == 0
    capsys.readouterr()


def test_profile_baseline_without_scenario_is_a_usage_error(
        tmp_path, capsys):
    assert main(_profile_args(
        ["--baseline", str(tmp_path / "t.json")])) == 2
    assert "--scenario" in capsys.readouterr().err


def test_profile_baseline_without_a_record_reports_and_passes(
        tmp_path, capsys):
    path = tmp_path / "empty.json"
    assert main(_profile_args(
        ["--scenario", "fresh", "--baseline", str(path)])) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_profile_with_a_population_covers_the_cohort_role(
        tmp_path, capsys):
    out_path = tmp_path / "profile.json"
    code = main([
        "profile", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "4", "--params", "2000",
        "--population", "200", "--cohorts", "8", "--seed", "7",
        "--output", str(out_path),
    ])
    capsys.readouterr()
    assert code == 0
    import json
    data = json.loads(out_path.read_text())
    actors = {scope["actor"] for scope in data["scopes"]
              if scope["subsystem"] == "kernel"}
    assert "cohort" in actors


# -- status exit-code contract / clock injection ------------------------------


def test_status_missing_file_names_the_path_on_stderr(tmp_path, capsys):
    missing = tmp_path / "absent.jsonl"
    assert main(["status", str(missing)]) == 1
    err = capsys.readouterr().err
    assert "not found" in err
    assert str(missing) in err


def test_status_empty_file_fails_with_a_message(tmp_path, capsys):
    path = tmp_path / "progress.jsonl"
    path.write_text("")
    assert main(["status", str(path)]) == 1
    captured = capsys.readouterr()
    assert "no heartbeats" in captured.err
    assert captured.out == ""


def test_commit_cost_uses_the_injectable_wall_clock(capsys):
    from repro.cli import _run_commit_cost, build_parser
    from repro.obs import FakeWallClock

    args = build_parser().parse_args(
        ["commit-cost", "--sizes", "64", "--curves", "secp256k1"])
    clock = FakeWallClock(tick=0.5)
    assert _run_commit_cost(args, clock=clock) == 0
    out = capsys.readouterr().out
    # Each measurement brackets with two reads: 0.5 s per column.
    assert clock.reads == 4
    assert "5.000e-01" in out or "0.5" in out
