"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_train_defaults():
    args = build_parser().parse_args(["train"])
    assert args.trainers == 8
    assert not args.verifiable


def test_train_small_run(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "2",
        "--features", "6", "--samples", "120",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "accuracy" in out
    assert "identical global model" in out


def test_train_verifiable_run(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "2",
        "--features", "6", "--samples", "120", "--verifiable",
    ])
    assert code == 0
    assert "verifiable" in capsys.readouterr().out


def test_train_non_iid_merge(capsys):
    code = main([
        "train", "--trainers", "4", "--rounds", "1",
        "--partitions", "2", "--ipfs-nodes", "4",
        "--features", "6", "--samples", "200",
        "--non-iid", "--merge-and-download", "--providers", "2",
    ])
    assert code == 0
    assert "merge-and-download" in capsys.readouterr().out


def test_providers_sweep_small(capsys):
    code = main([
        "providers-sweep", "--trainers", "4",
        "--partition-mb", "0.1", "--providers", "1", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "analytic optimum" in out
    assert "providers" in out


def test_commit_cost_small(capsys):
    code = main([
        "commit-cost", "--sizes", "64", "--curves", "secp256k1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "secp256k1" in out
    assert "sha256" in out


def test_reproduce_parser():
    args = build_parser().parse_args(["reproduce", "--figures", "fig1"])
    assert args.figures == ["fig1"]
    args = build_parser().parse_args(["reproduce"])
    assert args.figures == ["fig1", "fig2", "fig3"]
