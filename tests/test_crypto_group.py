"""Unit and property tests for EC point arithmetic and scalar multiplication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    Point,
    SECP256K1,
    SECP256R1,
    generator,
    scalar_mult,
    wnaf,
)


def naive_scalar_mult(scalar: int, point: Point) -> Point:
    """Independent double-and-add reference implementation."""
    scalar %= point.curve.n
    result = Point.identity(point.curve)
    addend = point
    while scalar:
        if scalar & 1:
            result = result + addend
        addend = addend.double()
        scalar >>= 1
    return result


# -- basic group law ---------------------------------------------------------------


def test_identity_is_neutral():
    g = generator(SECP256K1)
    identity = Point.identity(SECP256K1)
    assert g + identity == g
    assert identity + g == g
    assert identity + identity == identity


def test_point_plus_negation_is_identity():
    g = generator(SECP256K1)
    assert (g + (-g)).is_identity
    assert (g - g).is_identity


def test_addition_commutative():
    g = generator(SECP256K1)
    g2 = g.double()
    assert g + g2 == g2 + g


def test_addition_associative():
    g = generator(SECP256K1)
    a, b, c = g, g.double(), g.double().double()
    assert (a + b) + c == a + (b + c)


def test_double_equals_self_add():
    g = generator(SECP256R1)
    assert g.double() == g + g


def test_known_double_secp256k1():
    """2G on secp256k1 (SEC test vector)."""
    g2 = generator(SECP256K1).double()
    assert g2.x == int(
        "C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5",
        16,
    )


def test_off_curve_point_rejected():
    with pytest.raises(ValueError):
        Point(SECP256K1, 1, 1)


def test_half_identity_coordinates_rejected():
    with pytest.raises(ValueError):
        Point(SECP256K1, None, 5)


def test_points_on_different_curves_do_not_mix():
    with pytest.raises(ValueError):
        generator(SECP256K1) + generator(SECP256R1)


def test_point_immutable():
    g = generator(SECP256K1)
    with pytest.raises(AttributeError):
        g.x = 0


def test_point_equality_and_hash():
    g1 = generator(SECP256K1)
    g2 = generator(SECP256K1)
    assert g1 == g2
    assert hash(g1) == hash(g2)
    assert g1 != g1.double()


# -- scalar multiplication ------------------------------------------------------------


def test_scalar_mult_small_values():
    g = generator(SECP256K1)
    assert scalar_mult(0, g).is_identity
    assert scalar_mult(1, g) == g
    assert scalar_mult(2, g) == g.double()
    assert scalar_mult(3, g) == g.double() + g


def test_scalar_mult_by_order_is_identity():
    for curve in (SECP256K1, SECP256R1):
        g = generator(curve)
        assert scalar_mult(curve.n, g).is_identity


def test_scalar_mult_order_minus_one_is_negation():
    g = generator(SECP256K1)
    assert scalar_mult(SECP256K1.n - 1, g) == -g


def test_scalar_mult_negative_scalar_wraps():
    g = generator(SECP256K1)
    assert scalar_mult(-1, g) == -g


def test_mul_operator():
    g = generator(SECP256K1)
    assert 5 * g == g * 5 == scalar_mult(5, g)


def test_scalar_mult_matches_naive_reference():
    g = generator(SECP256R1)
    for scalar in (7, 255, 256, 65537, 2**255 - 19):
        assert scalar_mult(scalar, g) == naive_scalar_mult(scalar, g)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=1, max_value=SECP256K1.n - 1))
def test_scalar_mult_property_vs_naive(scalar):
    g = generator(SECP256K1)
    assert scalar_mult(scalar, g) == naive_scalar_mult(scalar, g)


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=1, max_value=2**64),
    st.integers(min_value=1, max_value=2**64),
)
def test_scalar_mult_distributive(k1, k2):
    g = generator(SECP256K1)
    assert scalar_mult(k1, g) + scalar_mult(k2, g) == scalar_mult(k1 + k2, g)


def test_scalar_mult_composition():
    g = generator(SECP256K1)
    left = scalar_mult(7, scalar_mult(11, g))
    assert left == scalar_mult(77, g)


def test_result_stays_on_curve():
    g = generator(SECP256R1)
    point = scalar_mult(123456789, g)
    assert point.curve.is_on_curve(point.x, point.y)


# -- wNAF ------------------------------------------------------------------------


def test_wnaf_reconstructs_scalar():
    for scalar in (1, 2, 31, 255, 10**18):
        digits = wnaf(scalar, 5)
        assert sum(d << i for i, d in enumerate(digits)) == scalar


def test_wnaf_digits_are_odd_or_zero():
    for digit in wnaf(0xDEADBEEF, 4):
        assert digit == 0 or digit % 2 != 0
        assert -8 < digit < 8


def test_wnaf_validation():
    with pytest.raises(ValueError):
        wnaf(-1)
    with pytest.raises(ValueError):
        wnaf(5, width=1)


@given(st.integers(min_value=0, max_value=2**256))
def test_wnaf_property(scalar):
    digits = wnaf(scalar, 5)
    assert sum(d << i for i, d in enumerate(digits)) == scalar


# -- serialization ------------------------------------------------------------------


def test_compressed_roundtrip():
    g = generator(SECP256K1)
    for point in (g, g.double(), scalar_mult(12345, g)):
        data = point.to_bytes()
        assert len(data) == 33
        assert Point.from_bytes(SECP256K1, data) == point


def test_identity_serialization():
    identity = Point.identity(SECP256K1)
    assert identity.to_bytes() == b"\x00"
    assert Point.from_bytes(SECP256K1, b"\x00").is_identity


def test_from_bytes_rejects_bad_input():
    with pytest.raises(ValueError):
        Point.from_bytes(SECP256K1, b"\x05" + bytes(32))
    with pytest.raises(ValueError):
        Point.from_bytes(SECP256K1, b"\x02" + bytes(31))


def test_parity_preserved():
    g = generator(SECP256R1)
    point = scalar_mult(99, g)
    recovered = Point.from_bytes(SECP256R1, point.to_bytes())
    assert recovered.y == point.y
