"""Tests for Kademlia content routing: XOR metric, k-buckets, iterative
lookups, charged provider discovery, and protocol integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLSession, ProtocolConfig
from repro.ipfs import (
    IPFSClient,
    IPFSNode,
    KademliaDHT,
    RoutingTable,
    bucket_index,
    compute_cid,
    node_key,
    xor_distance,
)
from repro.ipfs.kademlia import content_key
from repro.ml import LogisticRegression, make_classification, split_iid
from repro.net import Network, Transport, mbps
from repro.sim import Simulator


# -- XOR metric ------------------------------------------------------------------


def test_xor_distance_metric_axioms():
    a, b, c = node_key("a"), node_key("b"), node_key("c")
    assert xor_distance(a, a) == 0
    assert xor_distance(a, b) == xor_distance(b, a)
    # XOR triangle equality variant: d(a,c) <= d(a,b) ^ ... holds as
    # d(a,c) = d(a,b) XOR d(b,c); check consistency.
    assert xor_distance(a, c) == xor_distance(a, b) ^ xor_distance(b, c)


@given(st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
def test_node_key_deterministic_and_distinct(a, b):
    assert node_key(a) == node_key(a)
    if a != b:
        assert node_key(a) != node_key(b)


def test_bucket_index_ranges():
    a = node_key("node-a")
    b = node_key("node-b")
    index = bucket_index(a, b)
    assert 0 <= index < 256
    with pytest.raises(ValueError):
        bucket_index(a, a)


@given(st.integers(min_value=0, max_value=2**256 - 1),
       st.integers(min_value=0, max_value=2**256 - 1))
def test_bucket_index_matches_distance_bitlength(a, b):
    if a == b:
        return
    assert bucket_index(a, b) == (a ^ b).bit_length() - 1


# -- routing table ------------------------------------------------------------------


def test_routing_table_insert_and_len():
    table = RoutingTable("me", k=4)
    assert table.insert("peer-0")
    assert table.insert("peer-0")  # idempotent
    assert not table.insert("me")  # never buckets itself
    assert len(table) == 1


def test_routing_table_bucket_capacity():
    table = RoutingTable("me", k=1)
    inserted = sum(
        1 for i in range(64) if table.insert(f"peer-{i}")
    )
    # With k=1 each bucket holds one entry; some inserts are refused.
    assert inserted < 64
    assert len(table) == inserted


def test_routing_table_closest_matches_bruteforce():
    table = RoutingTable("me", k=32)
    names = [f"peer-{i}" for i in range(24)]
    for name in names:
        table.insert(name)
    target = node_key("some-content")
    expected = sorted(names,
                      key=lambda n: xor_distance(node_key(n), target))[:5]
    assert table.closest(target, 5) == expected


def test_routing_table_remove():
    table = RoutingTable("me", k=8)
    table.insert("peer-0")
    table.remove("peer-0")
    table.remove("ghost")  # no-op
    assert len(table) == 0


# -- overlay ----------------------------------------------------------------------------


def make_overlay(num_nodes=16, with_network=False):
    sim = Simulator()
    network = None
    if with_network:
        network = Network(sim)
        for i in range(num_nodes):
            network.add_host(f"ipfs-{i}", up_bandwidth=mbps(10))
        network.add_host("client", up_bandwidth=mbps(10))
    dht = KademliaDHT(sim, network=network, k=4)
    for i in range(num_nodes):
        dht.join(f"ipfs-{i}")
    return sim, dht


def test_join_populates_tables():
    sim, dht = make_overlay(num_nodes=8)
    assert len(dht.members()) == 8
    for name in dht.members():
        assert len(dht.tables[name]) >= 1


def test_lookup_path_reaches_globally_closest_reachable():
    sim, dht = make_overlay(num_nodes=16)
    target = content_key(compute_cid(b"some content"))
    path = dht.lookup_path("ipfs-0", target)
    assert path[0] == "ipfs-0"
    # Distances decrease monotonically along the path.
    distances = [xor_distance(node_key(hop), target) for hop in path]
    assert distances == sorted(distances, reverse=True)
    # The endpoint is no further than the known neighbours of the start.
    assert len(path) <= 16


def test_lookup_path_logarithmic_hops():
    sim, dht = make_overlay(num_nodes=64)
    total_hops = 0
    for i in range(20):
        target = content_key(compute_cid(f"content-{i}".encode()))
        total_hops += len(dht.lookup_path("ipfs-0", target)) - 1
    # Kademlia expects ~log2(64) = 6 hops worst case; average well below.
    assert total_hops / 20 <= 8


def test_leave_removes_from_tables():
    sim, dht = make_overlay(num_nodes=8)
    dht.leave("ipfs-3")
    assert "ipfs-3" not in dht.members()
    for table in dht.tables.values():
        assert "ipfs-3" not in [
            name for bucket in table._buckets.values()
            for name, _ in bucket
        ]


def test_find_providers_charges_network_rpcs():
    sim, dht = make_overlay(num_nodes=16, with_network=True)
    cid = compute_cid(b"stored data")
    dht.provide(cid, "ipfs-5")
    found = {}

    def scenario():
        providers = yield from dht.find_providers(cid, querier="ipfs-0")
        found["providers"] = providers

    proc = sim.process(scenario())
    sim.run()
    assert found["providers"] == ["ipfs-5"]
    assert dht.rpcs > 0
    assert sim.now > 0  # route RPCs took network time


def test_provide_publishes_in_background():
    sim, dht = make_overlay(num_nodes=16, with_network=True)
    cid = compute_cid(b"published")
    dht.provide(cid, "ipfs-2")
    # Records are authoritative immediately (simulation compromise) ...
    assert dht.providers_snapshot(cid) == ["ipfs-2"]
    before = dht.rpcs
    sim.run()
    # ... while the publication traffic runs in the background.
    assert dht.rpcs >= before


def test_end_to_end_get_over_kademlia():
    sim = Simulator()
    network = Network(sim)
    for i in range(8):
        network.add_host(f"ipfs-{i}", up_bandwidth=mbps(10))
    network.add_host("client", up_bandwidth=mbps(10))
    transport = Transport(network)
    for i in range(8):
        transport.endpoint(f"ipfs-{i}")
    transport.endpoint("client")
    dht = KademliaDHT(sim, network=network, k=4)
    nodes = [IPFSNode(sim, transport, dht, f"ipfs-{i}") for i in range(8)]
    for i in range(8):
        dht.join(f"ipfs-{i}")
    client = IPFSClient("client", transport, dht)
    box = {}

    def scenario():
        cid = yield from client.put(b"kademlia-routed data", node="ipfs-3")
        box["data"] = yield from client.get(cid)

    proc = sim.process(scenario())
    sim.run_until(proc)
    assert box["data"] == b"kademlia-routed data"


def test_full_session_over_kademlia_dht():
    data = make_classification(num_samples=160, num_features=8,
                               class_separation=3.0, seed=0)
    shards = split_iid(data, 4, seed=0)
    session = FLSession(
        ProtocolConfig(num_partitions=2, t_train=300, t_sync=600),
        lambda: LogisticRegression(num_features=8, seed=0),
        shards,
        num_ipfs_nodes=8,
        dht_mode="kademlia",
    )
    metrics = session.run_iteration()
    assert len(metrics.trainers_completed) == 4
    session.consensus_params()
    assert session.dht.rpcs > 0  # routing traffic actually flowed


def test_session_rejects_unknown_dht_mode():
    data = make_classification(num_samples=80, num_features=4, seed=0)
    shards = split_iid(data, 2, seed=0)
    with pytest.raises(ValueError):
        FLSession(
            ProtocolConfig(num_partitions=1, t_train=10, t_sync=20),
            lambda: LogisticRegression(num_features=4, seed=0),
            shards, dht_mode="chord",
        )
