"""Unit tests for Blockstore and DHT."""

import math

import pytest

from repro.ipfs import Block, Blockstore, DHT, compute_cid
from repro.sim import Simulator


# -- Blockstore ----------------------------------------------------------------


def test_put_and_get():
    store = Blockstore()
    block = Block(b"data")
    cid = store.put(block)
    assert store.get(cid) is block
    assert store.has(cid)
    assert cid in store
    assert len(store) == 1


def test_get_missing_returns_none():
    store = Blockstore()
    assert store.get(compute_cid(b"ghost")) is None


def test_put_idempotent():
    store = Blockstore()
    block = Block(b"data")
    store.put(block)
    store.put(Block(b"data"))
    assert len(store) == 1
    assert store.total_bytes == 4


def test_capacity_enforced():
    store = Blockstore(capacity_bytes=10)
    store.put(Block(b"12345678"))
    with pytest.raises(IOError, match="full"):
        store.put(Block(b"abcdefgh"))


def test_capacity_validation():
    with pytest.raises(ValueError):
        Blockstore(capacity_bytes=0)


def test_pin_unpin_gc():
    store = Blockstore()
    pinned = Block(b"keep me")
    loose = Block(b"drop me")
    store.put(pinned, pin=True)
    store.put(loose, pin=False)
    assert store.is_pinned(pinned.cid)
    assert not store.is_pinned(loose.cid)
    removed = store.collect_garbage()
    assert removed == [loose.cid]
    assert store.has(pinned.cid)
    assert not store.has(loose.cid)
    assert store.total_bytes == pinned.size


def test_unpin_then_gc():
    store = Blockstore()
    block = Block(b"temporary")
    store.put(block, pin=True)
    store.unpin(block.cid)
    store.collect_garbage()
    assert not store.has(block.cid)


def test_pin_unknown_raises():
    store = Blockstore()
    with pytest.raises(KeyError):
        store.pin(compute_cid(b"nope"))


def test_put_existing_with_pin_pins_it():
    store = Blockstore()
    block = Block(b"data")
    store.put(block, pin=False)
    store.put(block, pin=True)
    assert store.is_pinned(block.cid)


def test_cids_iteration():
    store = Blockstore()
    blocks = [Block(bytes([i])) for i in range(3)]
    for block in blocks:
        store.put(block)
    assert set(store.cids()) == {block.cid for block in blocks}


# -- DHT -------------------------------------------------------------------------


def test_provide_and_snapshot():
    sim = Simulator()
    dht = DHT(sim, lookup_delay=0.0)
    cid = compute_cid(b"content")
    dht.provide(cid, "node-a")
    dht.provide(cid, "node-b")
    assert dht.providers_snapshot(cid) == ["node-a", "node-b"]


def test_find_providers_charges_delay():
    sim = Simulator()
    dht = DHT(sim, lookup_delay=0.25)
    cid = compute_cid(b"content")
    dht.provide(cid, "node-a")
    result = {}

    def proc(sim, dht):
        providers = yield from dht.find_providers(cid)
        result["providers"] = providers
        result["time"] = sim.now

    sim.process(proc(sim, dht))
    sim.run()
    assert result["providers"] == ["node-a"]
    assert result["time"] == pytest.approx(0.25)


def test_find_providers_limit():
    sim = Simulator()
    dht = DHT(sim, lookup_delay=0.0)
    cid = compute_cid(b"content")
    for i in range(10):
        dht.provide(cid, f"node-{i}")
    result = {}

    def proc(sim, dht):
        providers = yield from dht.find_providers(cid, limit=3)
        result["providers"] = providers

    sim.process(proc(sim, dht))
    sim.run()
    assert len(result["providers"]) == 3


def test_unprovide():
    sim = Simulator()
    dht = DHT(sim)
    cid = compute_cid(b"content")
    dht.provide(cid, "node-a")
    dht.unprovide(cid, "node-a")
    assert dht.providers_snapshot(cid) == []
    dht.unprovide(cid, "node-a")  # idempotent


def test_record_expiry():
    sim = Simulator()
    dht = DHT(sim, record_ttl=10.0)
    cid = compute_cid(b"content")
    dht.provide(cid, "node-a")

    def advance(sim):
        yield sim.timeout(11.0)

    sim.process(advance(sim))
    sim.run()
    assert dht.providers_snapshot(cid) == []


def test_reprovide_refreshes_expiry():
    sim = Simulator()
    dht = DHT(sim, record_ttl=10.0)
    cid = compute_cid(b"content")
    dht.provide(cid, "node-a")

    def advance(sim, dht):
        yield sim.timeout(8.0)
        dht.provide(cid, "node-a")
        yield sim.timeout(8.0)

    sim.process(advance(sim, dht))
    sim.run()
    assert dht.providers_snapshot(cid) == ["node-a"]


def test_infinite_ttl_by_default():
    sim = Simulator()
    dht = DHT(sim)
    assert math.isinf(dht.record_ttl)


def test_negative_lookup_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        DHT(sim, lookup_delay=-0.1)


def test_lookup_telemetry():
    sim = Simulator()
    dht = DHT(sim, lookup_delay=0.0)
    cid = compute_cid(b"content")
    dht.provide(cid, "node-a")

    def proc(sim, dht):
        yield from dht.find_providers(cid)
        yield from dht.find_providers(cid)

    sim.process(proc(sim, dht))
    sim.run()
    assert dht.lookups == 2
    assert dht.provides == 1
