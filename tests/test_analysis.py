"""Tests for the analytic models and result utilities."""

import math

import pytest

from repro.analysis import (
    aggregation_time_model,
    aggregator_download_bytes,
    format_table,
    naive_aggregation_time,
    optimal_providers,
    series_shape,
    sweep_provider_model,
    upload_time,
)


# -- provider model ---------------------------------------------------------------


def test_tau_matches_paper_formula():
    tau = aggregation_time_model(
        num_trainers=16, partition_bytes=1.3e6, providers=4,
        node_bandwidth=1.25e6, aggregator_bandwidth=1.25e6,
    )
    expected = 1.3e6 * (16 / (1.25e6 * 4) + 4 / 1.25e6)
    assert tau == pytest.approx(expected)


def test_tau_minimized_at_sqrt():
    """tau(4) is the minimum over powers of two for 16 trainers at equal
    bandwidths (the paper's observation in Fig. 1)."""
    taus = {
        providers: aggregation_time_model(
            16, 1.3e6, providers, 1.25e6, 1.25e6
        )
        for providers in (1, 2, 4, 8, 16)
    }
    assert min(taus, key=taus.get) == 4


def test_optimal_providers_closed_form():
    assert optimal_providers(16) == pytest.approx(4.0)
    assert optimal_providers(16, node_bandwidth=1.0,
                             aggregator_bandwidth=4.0) == pytest.approx(8.0)
    # Derivative check: the optimum satisfies b*T/d = P^2.
    p_star = optimal_providers(25, node_bandwidth=2.0,
                               aggregator_bandwidth=3.0)
    assert p_star ** 2 == pytest.approx(3.0 * 25 / 2.0)


def test_tau_validation():
    with pytest.raises(ValueError):
        aggregation_time_model(16, 1e6, 0, 1.0, 1.0)
    with pytest.raises(ValueError):
        aggregation_time_model(0, 1e6, 1, 1.0, 1.0)
    with pytest.raises(ValueError):
        aggregation_time_model(16, -1.0, 1, 1.0, 1.0)
    with pytest.raises(ValueError):
        optimal_providers(0)


def test_sweep_provider_model_u_shape():
    sweep = sweep_provider_model(16, 1.3e6, [1, 2, 4, 8, 16],
                                 node_bandwidth=1.25e6,
                                 aggregator_bandwidth=1.25e6)
    taus = [tau for _, tau in sweep]
    assert series_shape(taus) == "u-shaped"


# -- delay models -----------------------------------------------------------------------


def test_download_bytes_formula():
    # (|T_ij| + |A_i| - 1) * S
    assert aggregator_download_bytes(16, 1, 1.3e6) == 16 * 1.3e6
    assert aggregator_download_bytes(8, 2, 1.1e6) == 9 * 1.1e6
    with pytest.raises(ValueError):
        aggregator_download_bytes(-1, 1, 1.0)


def test_naive_aggregation_time():
    assert naive_aggregation_time(16, 1.25e6, 1.25e6) == pytest.approx(16.0)
    with pytest.raises(ValueError):
        naive_aggregation_time(16, 1.0, 0.0)


def test_upload_time():
    assert upload_time(1.3e6, 4, 1.25e6) == pytest.approx(4 * 1.04)
    with pytest.raises(ValueError):
        upload_time(1.0, 1, 0.0)


# -- results utilities ---------------------------------------------------------------------


def test_format_table_alignment():
    table = format_table(
        ["providers", "delay"],
        [[1, 10.5], [16, 0.004]],
        title="Fig 1",
    )
    lines = table.splitlines()
    assert lines[0] == "Fig 1"
    assert "providers" in lines[2]
    assert len(lines) == 6


def test_format_table_handles_none_and_big_numbers():
    table = format_table(["x"], [[None], [123456.0], [1e-9]])
    assert "-" in table
    assert "e+" in table or "e-" in table


def test_series_shape_classification():
    assert series_shape([1, 2, 3]) == "increasing"
    assert series_shape([3, 2, 1]) == "decreasing"
    assert series_shape([3, 1, 2, 4]) == "u-shaped"
    assert series_shape([1, 3, 2]) == "mixed"
    assert series_shape([5]) == "flat"
