"""Deterministic fault injection and churn (``repro.faults``).

The paper's deployment argument (Sec. III: aggregator takeover, IPFS
replication, the directory as the only trusted component) is about
behaviour *under churn* — yet the seed repo only ever exercised honest
infrastructure.  This package makes failure a first-class, reproducible
input:

- :class:`FaultPlan` / :class:`FaultSpec` — a pure-data, serializable
  schedule of faults (participant crashes, IPFS node crash/restart,
  link outages and degradations, directory brown-outs, pub/sub message
  loss).
- :class:`FaultInjector` — the sim process that executes a plan against
  a session, announcing every fault on the event bus.
- :class:`RetryPolicy` / :class:`RetryExhaustedError` — the shared
  bounded-backoff policy protocol actors use to ride out fault windows.

Sessions take plans directly::

    from repro import FLSession, FaultPlan, FaultSpec

    plan = FaultPlan.of(
        FaultSpec(kind="crash_aggregator", at=1.0, target="aggregator-0"),
        FaultSpec(kind="link_down", at=3.0, duration=30.0,
                  target="trainer-1"),
        seed=7,
    )
    session = FLSession(config, model_factory, datasets, faults=plan)
"""

from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .retry import RetryExhaustedError, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryExhaustedError",
    "RetryPolicy",
]
