"""Executes a :class:`~repro.faults.plan.FaultPlan` against a session.

The injector is an ordinary simulation participant: ``start()`` spawns
one driver process per :class:`~repro.faults.plan.FaultSpec`, each of
which sleeps until its ``at``, applies the fault, and — for windowed
faults — sleeps out the ``duration`` and heals it.  Every application
and heal is announced on the event bus (``FaultInjected`` /
``FaultHealed``), so counters, the flight recorder and invariant
monitors see the full chaos timeline.

Determinism: the schedule is pure data, the only randomness (pub/sub
message loss) comes from a ``random.Random`` seeded from
``plan.seed`` and the spec's index, and the sim kernel orders the
driver processes like any other — the same plan against the same
session yields byte-identical runs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..obs.events import FaultHealed, FaultInjected
from .plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives a fault plan against a running :class:`FLSession`.

    Duck-types the session: it needs ``sim``, ``testbed.network``,
    ``nodes``, ``pubsub``, ``directory``, the participant name lists and
    the session's ``_round_processes`` registry (the per-round supervised
    processes it interrupts to crash a participant).
    """

    def __init__(self, session, plan: FaultPlan):
        self.session = session
        self.plan = plan
        self.sim = session.sim
        #: participant name -> reason, while a crash window is open.
        #: The session consults this to skip spawning crashed
        #: participants (they "late-join" once healed).
        self._down: Dict[str, str] = {}
        self._procs: List[object] = []
        self._validate()

    # -- wiring -----------------------------------------------------------------

    def _validate(self) -> None:
        trainers = {t.name for t in self.session.trainers}
        aggregators = {a.name for a in self.session.aggregators}
        nodes = {node.name for node in self.session.nodes}
        network = self.session.testbed.network
        for index, spec in enumerate(self.plan.specs):
            label = f"spec {index} ({spec.kind})"
            if spec.kind == "crash_trainer" and spec.target not in trainers:
                raise ValueError(f"{label}: unknown trainer {spec.target!r}")
            if spec.kind == "crash_aggregator" \
                    and spec.target not in aggregators:
                raise ValueError(
                    f"{label}: unknown aggregator {spec.target!r}"
                )
            if spec.kind == "crash_ipfs" and spec.target not in nodes:
                raise ValueError(
                    f"{label}: unknown IPFS node {spec.target!r}"
                )
            if spec.kind in ("link_down", "degrade_link") \
                    and spec.target not in network:
                raise ValueError(f"{label}: unknown host {spec.target!r}")
            if spec.kind == "directory_brownout" \
                    and spec.target is not None:
                shard_names = getattr(
                    self.session.directory, "shard_names", ()
                )
                if spec.target not in shard_names:
                    raise ValueError(
                        f"{label}: unknown directory shard "
                        f"{spec.target!r} (shards: {list(shard_names)})"
                    )

    def start(self) -> None:
        """Spawn one driver process per scheduled fault."""
        if self._procs:
            raise RuntimeError("injector already started")
        self._procs = [
            self.sim.process(
                self._drive(index, spec),
                name=f"fault:{index}:{spec.kind}",
            )
            for index, spec in enumerate(self.plan.specs)
        ]

    def is_down(self, participant: str) -> Optional[str]:
        """Why ``participant`` is currently crashed, or None if it is up."""
        return self._down.get(participant)

    # -- the per-spec driver ------------------------------------------------------

    def _drive(self, index: int, spec: FaultSpec):
        if spec.at > 0:
            yield self.sim.timeout(spec.at)
        heal = self._apply(index, spec)
        bus = self.sim.bus
        if bus.wants(FaultInjected):
            bus.publish(FaultInjected(
                at=self.sim.now, kind=spec.kind, target=spec.target,
                spec_index=index,
            ))
        if spec.duration is None:
            return  # permanent fault (e.g. a trainer that never rejoins)
        yield self.sim.timeout(spec.duration)
        if heal is not None:
            heal()
        if bus.wants(FaultHealed):
            bus.publish(FaultHealed(
                at=self.sim.now, kind=spec.kind, target=spec.target,
                spec_index=index,
            ))

    def _apply(self, index: int,
               spec: FaultSpec) -> Optional[Callable[[], None]]:
        """Apply one fault; returns the closure that heals it."""
        if spec.kind in ("crash_trainer", "crash_aggregator"):
            return self._crash_participant(spec)
        if spec.kind == "crash_ipfs":
            return self._crash_ipfs(spec)
        if spec.kind == "link_down":
            return self._link_down(spec)
        if spec.kind == "degrade_link":
            return self._degrade_link(spec)
        if spec.kind == "directory_brownout":
            return self._directory_brownout(spec)
        if spec.kind == "message_loss":
            return self._message_loss(index, spec)
        raise ValueError(f"unknown fault kind {spec.kind!r}")

    # -- fault kinds ----------------------------------------------------------------

    def _crash_participant(self, spec: FaultSpec):
        name = spec.target
        self._down[name] = "crashed (fault injection)"
        process = self.session._round_processes.get(name)
        if process is not None and process.is_alive:
            process.interrupt(f"fault injection: crash at {self.sim.now}")

        def heal():
            # The participant rejoins from the next round on; nothing to
            # restart mid-round (a crashed round stays lost).
            self._down.pop(name, None)

        return heal

    def _crash_ipfs(self, spec: FaultSpec):
        node = next(
            node for node in self.session.nodes if node.name == spec.target
        )
        node.crash(lose_storage=spec.lose_storage)
        return node.restart

    def _link_down(self, spec: FaultSpec):
        network = self.session.testbed.network
        network.set_host_online(spec.target, False, reason="fault injection")
        return lambda: network.set_host_online(spec.target, True)

    def _degrade_link(self, spec: FaultSpec):
        from ..net.units import mbps

        network = self.session.testbed.network
        host = network.host(spec.target)
        saved = (host.up_bandwidth, host.down_bandwidth)
        if spec.bandwidth_mbps is not None:
            up = down = mbps(spec.bandwidth_mbps)
        else:
            up, down = saved[0] * spec.factor, saved[1] * spec.factor
        network.set_host_bandwidth(spec.target, up, down)

        def heal():
            network.set_host_bandwidth(spec.target, saved[0], saved[1])

        return heal

    def _directory_brownout(self, spec: FaultSpec):
        directory = self.session.directory
        if spec.target is not None:
            # Sharded directory, one shard named: only its key range
            # degrades (validated against shard_names in _validate).
            shard = directory.shard(spec.target)
            saved_delay = shard.processing_delay
            shard.processing_delay = spec.processing_delay

            def heal():
                shard.processing_delay = saved_delay

            return heal
        shards = getattr(directory, "shards", None)
        if shards is not None:
            # Whole-service brownout of a sharded directory: save each
            # shard's own delay (they may have diverged under an earlier
            # targeted fault) and restore them individually.
            saved = [shard.processing_delay for shard in shards]
            for shard in shards:
                shard.processing_delay = spec.processing_delay

            def heal():
                for shard, delay in zip(shards, saved):
                    shard.processing_delay = delay

            return heal
        saved_delay = directory.processing_delay
        directory.processing_delay = spec.processing_delay

        def heal():
            directory.processing_delay = saved_delay

        return heal

    def _message_loss(self, index: int, spec: FaultSpec):
        pubsub = self.session.pubsub
        rng = random.Random(self.plan.seed * 1_000_003 + index)
        pubsub.set_message_loss(spec.probability, rng)
        return lambda: pubsub.set_message_loss(0.0)
