"""Pure-data fault plans.

A :class:`FaultPlan` is a seeded, serialisable schedule of
:class:`FaultSpec` entries; it performs no side effects itself — the
:class:`~repro.faults.injector.FaultInjector` interprets it against a live
session.  Keeping the plan pure data makes chaos scenarios reviewable,
diffable, and loadable from JSON (or YAML when available) on the CLI.

Fault taxonomy (``FaultSpec.kind``):

``crash_trainer`` / ``crash_aggregator``
    Interrupt the participant's running round at ``at``.  With a
    ``duration`` the participant stays down (skipped at round start) until
    ``at + duration`` — a late-join; without one it only loses the round
    in flight.
``crash_ipfs``
    Take the named IPFS node process down at ``at``; with
    ``lose_storage=True`` the blockstore is wiped too (disk loss), else
    blocks survive and are re-provided to the DHT on restart at
    ``at + duration``.
``link_down``
    Hard outage of the named host's links for ``duration`` seconds;
    in-flight transfers crossing them abort with ``TransferAborted``.
``degrade_link``
    Scale the host's link capacities by ``factor`` (or pin them to
    ``bandwidth_mbps``) for ``duration`` seconds.
``directory_brownout``
    Elevate the directory service's ``processing_delay`` to
    ``processing_delay`` seconds for ``duration`` seconds.  On a sharded
    directory an optional ``target`` names one shard host
    (``directory-shard-2``): only that shard's key range degrades, the
    rest keep serving at full speed.
``message_loss``
    Drop each pubsub delivery independently with ``probability`` for
    ``duration`` seconds (seeded from the plan seed and spec index).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

#: Fault kinds and the spec fields each requires beyond ``kind``/``at``.
FAULT_KINDS: Dict[str, Tuple[str, ...]] = {
    "crash_trainer": ("target",),
    "crash_aggregator": ("target",),
    "crash_ipfs": ("target", "duration"),
    "link_down": ("target", "duration"),
    "degrade_link": ("target", "duration"),
    "directory_brownout": ("processing_delay", "duration"),
    "message_loss": ("probability", "duration"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  See the module docstring for the taxonomy."""

    kind: str
    at: float
    target: Optional[str] = None
    duration: Optional[float] = None
    factor: Optional[float] = None
    bandwidth_mbps: Optional[float] = None
    processing_delay: Optional[float] = None
    probability: Optional[float] = None
    lose_storage: bool = False

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError("fault time `at` must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault `duration` must be positive")
        for required in FAULT_KINDS[self.kind]:
            if getattr(self, required) is None:
                raise ValueError(
                    f"{self.kind} fault requires the {required!r} field"
                )
        if self.kind == "degrade_link":
            if self.factor is None and self.bandwidth_mbps is None:
                raise ValueError(
                    "degrade_link requires `factor` or `bandwidth_mbps`"
                )
            if self.factor is not None and not 0.0 < self.factor:
                raise ValueError("degrade_link `factor` must be positive")
            if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
                raise ValueError(
                    "degrade_link `bandwidth_mbps` must be positive"
                )
        if self.probability is not None \
                and not 0.0 <= self.probability <= 1.0:
            raise ValueError("`probability` must be in [0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        """Spec as a plain dict, defaults elided (stable for JSON diffs)."""
        raw = dataclasses.asdict(self)
        return {
            key: value for key, value in raw.items()
            if value is not None and (key != "lose_storage" or value)
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**raw)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults.  Pure data; executed by FaultInjector.

    The ``seed`` drives every stochastic fault effect (currently pubsub
    message loss), so the same plan against the same session configuration
    replays byte-identically.
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"{spec!r} is not a FaultSpec")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        unknown = set(raw) - {"seed", "specs"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        specs = tuple(
            FaultSpec.from_dict(entry) for entry in raw.get("specs", ())
        )
        return cls(specs=specs, seed=int(raw.get("seed", 0)))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) \
            + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def write(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "FaultPlan":
        """Load a plan from a ``.json`` (always) or ``.yaml``/``.yml``
        (when PyYAML is importable) file."""
        name = os.fspath(path)
        with open(name, encoding="utf-8") as handle:
            text = handle.read()
        if name.endswith((".yaml", ".yml")):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env dependent
                raise RuntimeError(
                    "YAML fault plans need PyYAML; install it or use JSON"
                ) from exc
            return cls.from_dict(yaml.safe_load(text) or {})
        return cls.from_json(text)

    # -- convenience ---------------------------------------------------------

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        """Build a plan from specs given as positional arguments."""
        return cls(specs=tuple(specs), seed=seed)

    def targets(self) -> Sequence[str]:
        """Distinct named targets, in first-appearance order."""
        seen: Dict[str, None] = {}
        for spec in self.specs:
            if spec.target is not None:
                seen.setdefault(spec.target)
        return list(seen)
