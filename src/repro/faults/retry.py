"""Bounded exponential-backoff retry with deterministic jitter.

The paper assumes participants survive transient infrastructure trouble
(directory brown-outs, flapping links, IPFS node churn) by retrying; this
module provides the one shared, configurable policy every protocol actor
uses, so chaos runs degrade *bounded* instead of wedging forever.

Jitter must be deterministic for the seeded-replay guarantee: the same
``FaultPlan`` seed must yield a byte-identical manifest, so the jitter for
attempt *n* of operation *key* is derived from a SHA-256 digest rather than
a process-global RNG (and never from Python's randomised ``hash()``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "RetryExhaustedError"]


class RetryExhaustedError(Exception):
    """An operation failed on every attempt its :class:`RetryPolicy` allowed.

    Carries enough context for forensics: the logical operation name, how
    many attempts were made, and the error of the final attempt.
    """

    def __init__(self, operation: str, attempts: int,
                 last_error: Optional[BaseException] = None):
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"{operation} failed after {attempts} attempt(s){detail}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic, keyed jitter.

    Attempt *n* (0-based) that fails sleeps ``base_delay * multiplier**n``
    seconds, capped at ``max_delay``, then scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` derived from SHA-256 of ``key:n`` so two
    actors retrying the same instant do not stay synchronised, yet every
    replay of the same run produces the same schedule.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, attempt: int, key: str = "") -> float:
        """Delay (seconds) to sleep after failed ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        raw = min(self.base_delay * self.multiplier ** attempt,
                  self.max_delay)
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64  # [0, 1)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))
