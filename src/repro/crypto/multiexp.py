"""Multi-scalar multiplication (multi-exponentiation).

Computing a Pedersen vector commitment is one big multi-exponentiation
``∏ h_i^{v_i}``; its cost dominates the verifiability overhead the paper
measures in Fig. 3, and the paper names multi-exponentiation algorithms
[27, 28] as the standard optimization.  We implement both classics:

- **Straus** (interleaved wNAF) — best for a handful of terms,
- **Pippenger** (bucket method) — asymptotically optimal for the
  thousands-to-millions of terms a model-sized commitment needs,

plus an auto-dispatching :func:`multi_scalar_mult`.
"""

from __future__ import annotations

from typing import List, Sequence

from .curves import CurveParams
from .group import (
    Point,
    _JAC_IDENTITY,
    _jac_add,
    _jac_add_mixed,
    _jac_double,
    wnaf,
)

__all__ = ["multi_scalar_mult", "straus", "pippenger", "pippenger_window"]


def _validate(scalars: Sequence[int], points: Sequence[Point]) -> CurveParams:
    if len(scalars) != len(points):
        raise ValueError(
            f"{len(scalars)} scalars vs {len(points)} points"
        )
    if not points:
        raise ValueError("empty multi-exponentiation; handle upstream")
    curve = points[0].curve
    for point in points:
        if point.curve.name != curve.name:
            raise ValueError("all points must live on the same curve")
    return curve


def straus(scalars: Sequence[int], points: Sequence[Point],
           width: int = 4) -> Point:
    """Interleaved wNAF: shared doublings across all terms.

    Efficient for small batches (tens of points), e.g. re-checking a
    handful of accumulated commitments.
    """
    curve = _validate(scalars, points)
    reduced = [s % curve.n for s in scalars]

    precomp: List[List] = []
    naf_digits: List[List[int]] = []
    for scalar, point in zip(reduced, points):
        if scalar == 0 or point.is_identity:
            precomp.append([])
            naf_digits.append([])
            continue
        base = point.to_jacobian()
        table = [base]
        twice = _jac_double(curve, base)
        for _ in range((1 << (width - 2)) - 1):
            table.append(_jac_add(curve, table[-1], twice))
        precomp.append(table)
        naf_digits.append(wnaf(scalar, width))

    length = max((len(d) for d in naf_digits), default=0)
    accumulator = _JAC_IDENTITY
    for position in range(length - 1, -1, -1):
        accumulator = _jac_double(curve, accumulator)
        for digits, table in zip(naf_digits, precomp):
            if position >= len(digits):
                continue
            digit = digits[position]
            if digit > 0:
                accumulator = _jac_add(curve, accumulator, table[digit >> 1])
            elif digit < 0:
                x, y, z = table[(-digit) >> 1]
                accumulator = _jac_add(
                    curve, accumulator, (x, (-y) % curve.p, z)
                )
    return Point.from_jacobian(curve, accumulator)


def pippenger_window(count: int) -> int:
    """Bucket width (bits) minimizing adds for ``count`` terms."""
    if count < 4:
        return 1
    # Rule of thumb: c ≈ log2(n) - 2, clamped to a practical range.
    return max(2, min(16, count.bit_length() - 2))


def pippenger(scalars: Sequence[int], points: Sequence[Point],
              window: int = 0) -> Point:
    """Bucket-method multi-exponentiation.

    Cost ≈ ``(bits/c) · (n + 2^c)`` point additions for n terms and
    bucket width c, versus ``n · bits/2`` for naive per-term wNAF — the
    difference between minutes and hours at model scale.
    """
    curve = _validate(scalars, points)
    pairs = [
        (scalar % curve.n, point)
        for scalar, point in zip(scalars, points)
        if scalar % curve.n != 0 and not point.is_identity
    ]
    if not pairs:
        return Point.identity(curve)
    c = window or pippenger_window(len(pairs))
    total_bits = curve.n.bit_length()
    num_windows = -(-total_bits // c)
    mask = (1 << c) - 1

    accumulator = _JAC_IDENTITY
    for window_index in range(num_windows - 1, -1, -1):
        if accumulator != _JAC_IDENTITY:
            for _ in range(c):
                accumulator = _jac_double(curve, accumulator)
        shift = window_index * c
        buckets: List = [None] * ((1 << c) - 1)
        for scalar, point in pairs:
            digit = (scalar >> shift) & mask
            if digit == 0:
                continue
            slot = digit - 1
            if buckets[slot] is None:
                buckets[slot] = point.to_jacobian()
            else:
                buckets[slot] = _jac_add_mixed(
                    curve, buckets[slot], point.x, point.y
                )
        running = _JAC_IDENTITY
        window_sum = _JAC_IDENTITY
        for bucket in reversed(buckets):
            if bucket is not None:
                running = _jac_add(curve, running, bucket)
            window_sum = _jac_add(curve, window_sum, running)
        accumulator = _jac_add(curve, accumulator, window_sum)
    return Point.from_jacobian(curve, accumulator)


def multi_scalar_mult(scalars: Sequence[int],
                      points: Sequence[Point]) -> Point:
    """Auto-dispatching ``∑ scalar_i · point_i`` (``∏ h_i^{v_i}``)."""
    if len(scalars) != len(points):
        raise ValueError(
            f"{len(scalars)} scalars vs {len(points)} points"
        )
    if not points:
        raise ValueError("cannot infer curve from an empty input")
    if len(points) == 1:
        return scalars[0] * points[0]
    if len(points) <= 16:
        return straus(scalars, points)
    return pippenger(scalars, points)
