"""Elliptic-curve group operations.

Points on a short-Weierstrass curve with:

- affine representation at the API surface (:class:`Point`),
- Jacobian projective coordinates internally (no per-step field inversions),
- width-w NAF scalar multiplication,
- compressed SEC1 serialization.

This is the group ``G`` of the paper's Pedersen vector commitments; the
commitment product and exponentiations of Sec. IV all bottom out here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .curves import CurveParams
from .field import inverse_mod, sqrt_mod

__all__ = ["Point", "generator", "wnaf", "scalar_mult"]

#: Jacobian triple (X, Y, Z); Z == 0 encodes the identity.
Jacobian = Tuple[int, int, int]

_JAC_IDENTITY: Jacobian = (1, 1, 0)


class Point:
    """An immutable point on a named curve (or the identity)."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: CurveParams, x: Optional[int],
                 y: Optional[int], _skip_check: bool = False):
        if (x is None) != (y is None):
            raise ValueError("both coordinates must be None (identity) or set")
        if x is not None and not _skip_check and not curve.is_on_curve(x, y):
            raise ValueError(f"({x}, {y}) is not on {curve.name}")
        object.__setattr__(self, "curve", curve)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, *_args):
        raise AttributeError("Point is immutable")

    @classmethod
    def identity(cls, curve: CurveParams) -> "Point":
        return cls(curve, None, None)

    @property
    def is_identity(self) -> bool:
        return self.x is None

    # -- conversions ------------------------------------------------------------

    def to_jacobian(self) -> Jacobian:
        if self.is_identity:
            return _JAC_IDENTITY
        return (self.x, self.y, 1)

    @classmethod
    def from_jacobian(cls, curve: CurveParams, jac: Jacobian) -> "Point":
        x, y, z = jac
        if z == 0:
            return cls.identity(curve)
        p = curve.p
        z_inv = inverse_mod(z, p)
        z_inv2 = z_inv * z_inv % p
        return cls(curve, x * z_inv2 % p, y * z_inv2 * z_inv % p,
                   _skip_check=True)

    # -- serialization ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compressed SEC1: 0x02/0x03 || x; identity is a single 0x00."""
        if self.is_identity:
            return b"\x00"
        prefix = 0x02 | (self.y & 1)
        return bytes([prefix]) + self.x.to_bytes(self.curve.byte_length, "big")

    @classmethod
    def from_bytes(cls, curve: CurveParams, data: bytes) -> "Point":
        """Parse a compressed SEC1 encoding (decompressing y)."""
        if data == b"\x00":
            return cls.identity(curve)
        if len(data) != 1 + curve.byte_length or data[0] not in (0x02, 0x03):
            raise ValueError("invalid compressed point encoding")
        x = int.from_bytes(data[1:], "big")
        if x >= curve.p:
            raise ValueError("x coordinate out of range")
        rhs = (x * x * x + curve.a * x + curve.b) % curve.p
        y = sqrt_mod(rhs, curve.p)
        if (y & 1) != (data[0] & 1):
            y = curve.p - y
        return cls(curve, x, y)

    # -- group law ----------------------------------------------------------------

    def __neg__(self) -> "Point":
        if self.is_identity:
            return self
        return Point(self.curve, self.x, (-self.y) % self.curve.p,
                     _skip_check=True)

    def __add__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve is not other.curve and self.curve != other.curve:
            raise ValueError("cannot add points on different curves")
        result = _jac_add(self.curve, self.to_jacobian(), other.to_jacobian())
        return Point.from_jacobian(self.curve, result)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        return scalar_mult(scalar, self)

    __rmul__ = __mul__

    def double(self) -> "Point":
        result = _jac_double(self.curve, self.to_jacobian())
        return Point.from_jacobian(self.curve, result)

    # -- identity/equality -----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return (self.curve.name == other.curve.name
                and self.x == other.x and self.y == other.y)

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_identity:
            return f"<Point identity on {self.curve.name}>"
        return f"<Point x={hex(self.x)[:14]}… on {self.curve.name}>"


def generator(curve: CurveParams) -> Point:
    """The curve's standard base point G."""
    return Point(curve, curve.gx, curve.gy)


# -- Jacobian arithmetic ----------------------------------------------------------


def _jac_double(curve: CurveParams, point: Jacobian) -> Jacobian:
    x1, y1, z1 = point
    if z1 == 0 or y1 == 0:
        return _JAC_IDENTITY
    p = curve.p
    ysq = y1 * y1 % p
    s = 4 * x1 * ysq % p
    z1sq = z1 * z1 % p
    m = (3 * x1 * x1 + curve.a * z1sq * z1sq) % p
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * ysq * ysq) % p
    z3 = 2 * y1 * z1 % p
    return (x3, y3, z3)


def _jac_add(curve: CurveParams, first: Jacobian,
             second: Jacobian) -> Jacobian:
    x1, y1, z1 = first
    x2, y2, z2 = second
    if z1 == 0:
        return second
    if z2 == 0:
        return first
    p = curve.p
    z1sq = z1 * z1 % p
    z2sq = z2 * z2 % p
    u1 = x1 * z2sq % p
    u2 = x2 * z1sq % p
    s1 = y1 * z2sq * z2 % p
    s2 = y2 * z1sq * z1 % p
    if u1 == u2:
        if s1 != s2:
            return _JAC_IDENTITY
        return _jac_double(curve, first)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hsq = h * h % p
    hcu = hsq * h % p
    v = u1 * hsq % p
    x3 = (r * r - hcu - 2 * v) % p
    y3 = (r * (v - x3) - s1 * hcu) % p
    z3 = h * z1 * z2 % p
    return (x3, y3, z3)


def _jac_add_mixed(curve: CurveParams, first: Jacobian, x2: int,
                   y2: int) -> Jacobian:
    """Add an affine point (Z=1) to a Jacobian point — saves field work."""
    x1, y1, z1 = first
    if z1 == 0:
        return (x2, y2, 1)
    p = curve.p
    z1sq = z1 * z1 % p
    u2 = x2 * z1sq % p
    s2 = y2 * z1sq * z1 % p
    if x1 == u2:
        if y1 != s2:
            return _JAC_IDENTITY
        return _jac_double(curve, first)
    h = (u2 - x1) % p
    r = (s2 - y1) % p
    hsq = h * h % p
    hcu = hsq * h % p
    v = x1 * hsq % p
    x3 = (r * r - hcu - 2 * v) % p
    y3 = (r * (v - x3) - y1 * hcu) % p
    z3 = h * z1 % p
    return (x3, y3, z3)


# -- scalar multiplication ------------------------------------------------------------


def wnaf(scalar: int, width: int = 5) -> List[int]:
    """Width-w non-adjacent form of a non-negative scalar (LSB first)."""
    if scalar < 0:
        raise ValueError("wnaf expects a non-negative scalar")
    if width < 2:
        raise ValueError("width must be >= 2")
    digits: List[int] = []
    window = 1 << width
    half = 1 << (width - 1)
    while scalar > 0:
        if scalar & 1:
            digit = scalar % window
            if digit >= half:
                digit -= window
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def scalar_mult(scalar: int, point: Point, width: int = 5) -> Point:
    """Compute ``scalar * point`` via wNAF with precomputed odd multiples."""
    curve = point.curve
    scalar %= curve.n
    if scalar == 0 or point.is_identity:
        return Point.identity(curve)

    # Precompute P, 3P, 5P, ..., (2^(w-1)-1)P in Jacobian form.
    precomp: List[Jacobian] = [point.to_jacobian()]
    twice = _jac_double(curve, precomp[0])
    for _ in range((1 << (width - 2)) - 1):
        precomp.append(_jac_add(curve, precomp[-1], twice))

    digits = wnaf(scalar, width)
    accumulator = _JAC_IDENTITY
    for digit in reversed(digits):
        accumulator = _jac_double(curve, accumulator)
        if digit > 0:
            accumulator = _jac_add(curve, accumulator, precomp[digit >> 1])
        elif digit < 0:
            x, y, z = precomp[(-digit) >> 1]
            accumulator = _jac_add(curve, accumulator, (x, (-y) % curve.p, z))
    return Point.from_jacobian(curve, accumulator)
