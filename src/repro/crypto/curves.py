"""Short-Weierstrass curve parameters.

The paper's implementation uses Bouncy Castle "over elliptic curves
secp256r1 and secp256k1"; we carry the same two standardized curves
(SEC 2 / NIST P-256 parameters) for the Pedersen commitment layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CurveParams", "SECP256K1", "SECP256R1", "curve_by_name"]


@dataclass(frozen=True)
class CurveParams:
    """Parameters of y^2 = x^3 + a·x + b over GF(p), order-n subgroup."""

    name: str
    p: int   # field prime
    a: int   # curve coefficient a
    b: int   # curve coefficient b
    n: int   # order of the base point (prime)
    h: int   # cofactor
    gx: int  # base point x
    gy: int  # base point y

    @property
    def bit_length(self) -> int:
        """Size of the field prime in bits."""
        return self.p.bit_length()

    @property
    def byte_length(self) -> int:
        """Size of one coordinate in bytes."""
        return (self.bit_length + 7) // 8

    def is_on_curve(self, x: int, y: int) -> bool:
        """Whether (x, y) satisfies the curve equation."""
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0


# SEC 2, "Recommended Elliptic Curve Domain Parameters", v2.0.
SECP256K1 = CurveParams(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0,
    b=7,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
    h=1,
    gx=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    gy=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
)

SECP256R1 = CurveParams(
    name="secp256r1",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
)

_CURVES = {curve.name: curve for curve in (SECP256K1, SECP256R1)}


def curve_by_name(name: str) -> CurveParams:
    """Look up a supported curve ('secp256k1' or 'secp256r1')."""
    try:
        return _CURVES[name]
    except KeyError:
        raise ValueError(
            f"unsupported curve {name!r}; choose from {sorted(_CURVES)}"
        ) from None
