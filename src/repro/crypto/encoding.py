"""Fixed-point encoding of gradients into commitment scalars.

Pedersen commitments live over Z_n (the curve group order); gradients are
floats.  We quantize each coordinate to a signed fixed-point integer with
``fractional_bits`` of precision and embed it in Z_n (negatives as
``n - |x|``).  The embedding is an additive homomorphism as long as the
running sums stay inside ``(-n/2, n/2)`` — with 2^256-order curves and
32-bit quantization there is headroom for billions of trainers — so the
scalar of a summed gradient equals the sum of the scalars, which is what
makes commitment products verify aggregated updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointCodec"]


@dataclass(frozen=True)
class FixedPointCodec:
    """Quantizer between float vectors and Z_n scalar vectors."""

    order: int
    fractional_bits: int = 24

    def __post_init__(self):
        if self.order <= 3:
            raise ValueError("order must be a large prime")
        if not 0 < self.fractional_bits < 64:
            raise ValueError("fractional_bits must be in (0, 64)")

    @property
    def scale(self) -> int:
        """Multiplier applied before rounding."""
        return 1 << self.fractional_bits

    @property
    def half_order(self) -> int:
        return self.order // 2

    def encode_value(self, value: float) -> int:
        """One float -> one scalar in [0, order)."""
        quantized = int(round(float(value) * self.scale))
        return quantized % self.order

    def decode_value(self, scalar: int) -> float:
        """One scalar -> the float it encodes (centered lift)."""
        scalar %= self.order
        if scalar > self.half_order:
            scalar -= self.order
        return scalar / self.scale

    def encode(self, vector: np.ndarray) -> list:
        """Vector of floats -> list of scalars (python ints)."""
        array = np.asarray(vector, dtype=np.float64).ravel()
        quantized = np.rint(array * self.scale).astype(object)
        return [int(q) % self.order for q in quantized]

    def decode(self, scalars: list) -> np.ndarray:
        """List of scalars -> float64 vector."""
        return np.array([self.decode_value(s) for s in scalars],
                        dtype=np.float64)

    def quantize(self, vector: np.ndarray) -> np.ndarray:
        """The float vector actually represented after encoding.

        Aggregation must operate on *quantized* values for the commitment
        check to be exact: trainers commit to ``quantize(gradient)`` and
        upload the same quantized bytes.
        """
        array = np.asarray(vector, dtype=np.float64)
        return np.rint(array * self.scale) / self.scale
