"""Hashing utilities: SHA-256 wrappers and hash-to-curve.

Pedersen generators must be *nothing-up-my-sleeve* points: nobody may know
discrete-log relations between them, or the commitment loses its binding
property.  We derive each generator by try-and-increment hashing of a
domain-separated seed, the standard transparent construction.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List

from .curves import CurveParams
from .field import is_quadratic_residue, sqrt_mod
from .group import Point

__all__ = ["sha256", "hash_to_curve", "derive_generators", "generator_stream"]

DEFAULT_DOMAIN = b"repro/pedersen-generators/v1"


def sha256(data: bytes) -> bytes:
    """SHA-256 digest (the hash IPFS and the paper's Fig. 3 baseline use)."""
    return hashlib.sha256(data).digest()


def hash_to_curve(curve: CurveParams, seed: bytes) -> Point:
    """Map ``seed`` to a curve point by try-and-increment.

    Hash ``seed || counter`` to an x candidate until x^3 + ax + b is a
    quadratic residue; pick y's parity from the digest so the output is
    deterministic.  The expected number of attempts is 2.
    """
    counter = 0
    while True:
        digest = hashlib.sha256(
            seed + counter.to_bytes(4, "big")
        ).digest()
        x = int.from_bytes(digest, "big") % curve.p
        rhs = (x * x * x + curve.a * x + curve.b) % curve.p
        if is_quadratic_residue(rhs, curve.p):
            y = sqrt_mod(rhs, curve.p)
            parity_bit = digest[-1] & 1
            if (y & 1) != parity_bit:
                y = curve.p - y
            point = Point(curve, x, y, _skip_check=True)
            if not point.is_identity:
                return point
        counter += 1


def generator_stream(curve: CurveParams,
                     domain: bytes = DEFAULT_DOMAIN) -> Iterator[Point]:
    """Yield the infinite deterministic generator sequence h_0, h_1, ..."""
    index = 0
    while True:
        seed = domain + b"/" + curve.name.encode("ascii") + b"/" \
            + index.to_bytes(8, "big")
        yield hash_to_curve(curve, seed)
        index += 1


def derive_generators(curve: CurveParams, count: int,
                      domain: bytes = DEFAULT_DOMAIN) -> List[Point]:
    """The first ``count`` generators of the deterministic sequence."""
    if count < 0:
        raise ValueError("count must be non-negative")
    stream = generator_stream(curve, domain)
    return [next(stream) for _ in range(count)]
