"""Pedersen vector commitments with homomorphic combination.

The scheme of the paper's Sec. IV-A: public parameters are ``n`` generators
``{h_i}`` of a prime-order group with unknown mutual discrete logs; a
commitment to vector ``v`` is ``C = ∏ h_i^{v_i}``, a single group element.
It is *vector-binding* under the discrete-log assumption and
*homomorphic*: ``C(v1) · C(v2) = C(v1 + v2)``, which lets the directory
service accumulate trainer commitments and verify an aggregate against the
product without touching individual gradients.

Deterministic (non-hiding) commitments match the paper's usage; an
optional blinding term ``g^r`` is supported for callers wanting hiding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .curves import CurveParams
from .group import Point, generator
from .hashing import DEFAULT_DOMAIN, generator_stream
from .multiexp import multi_scalar_mult

__all__ = ["Commitment", "PedersenParams"]

#: Cache of derived generator prefixes, keyed by (curve, domain); deriving
#: generators costs two hashes plus a square root each, so benchmarks that
#: repeatedly set up large parameter vectors share the work.
_GENERATOR_CACHE: Dict[Tuple[str, bytes], List[Point]] = {}


@dataclass(frozen=True)
class Commitment:
    """A commitment: one group element.  ``*`` combines homomorphically."""

    point: Point

    @classmethod
    def identity(cls, curve: CurveParams) -> "Commitment":
        """The neutral commitment (commits to the zero vector)."""
        return cls(Point.identity(curve))

    def combine(self, other: "Commitment") -> "Commitment":
        """The commitment to the sum of the two committed vectors."""
        return Commitment(self.point + other.point)

    def __mul__(self, other: "Commitment") -> "Commitment":
        if not isinstance(other, Commitment):
            return NotImplemented
        return self.combine(other)

    def to_bytes(self) -> bytes:
        """Compressed serialization (33 bytes, or 1 for identity)."""
        return self.point.to_bytes()

    @classmethod
    def from_bytes(cls, curve: CurveParams, data: bytes) -> "Commitment":
        return cls(Point.from_bytes(curve, data))

    @classmethod
    def product(cls, commitments: Sequence["Commitment"],
                curve: CurveParams) -> "Commitment":
        """Accumulate many commitments (∏ C_k)."""
        result = cls.identity(curve)
        for commitment in commitments:
            result = result.combine(commitment)
        return result

    def __repr__(self) -> str:
        return f"<Commitment {self.to_bytes().hex()[:16]}…>"


class PedersenParams:
    """Public parameters: the generator vector for length-``size`` inputs."""

    def __init__(self, curve: CurveParams, size: int,
                 domain: bytes = DEFAULT_DOMAIN):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.curve = curve
        self.size = size
        self.domain = domain
        self._blinding_base = generator(curve)
        cache_key = (curve.name, domain)
        cached = _GENERATOR_CACHE.setdefault(cache_key, [])
        if len(cached) < size:
            stream = generator_stream(curve, domain)
            for _ in range(len(cached)):
                next(stream)  # skip already-derived prefix
            while len(cached) < size:
                cached.append(next(stream))
        self.generators: List[Point] = cached[:size]

    @classmethod
    def setup(cls, curve: CurveParams, size: int,
              domain: bytes = DEFAULT_DOMAIN) -> "PedersenParams":
        """Transparent setup (no trusted dealer): derive ``size`` generators."""
        return cls(curve, size, domain)

    def commit(self, values: Sequence[int], randomness: int = 0) -> Commitment:
        """Commit to a scalar vector: ``C = g^r · ∏ h_i^{v_i}``.

        ``randomness = 0`` (default) gives the paper's deterministic
        commitment.  ``values`` shorter than ``size`` are zero-padded;
        longer is an error.
        """
        if len(values) > self.size:
            raise ValueError(
                f"vector of length {len(values)} exceeds parameter size "
                f"{self.size}"
            )
        scalars = list(values)
        points = self.generators[:len(scalars)]
        if randomness % self.curve.n != 0:
            scalars = scalars + [randomness]
            points = points + [self._blinding_base]
        nonzero = [(s, p) for s, p in zip(scalars, points) if s % self.curve.n]
        if not nonzero:
            return Commitment.identity(self.curve)
        return Commitment(multi_scalar_mult(
            [s for s, _ in nonzero], [p for _, p in nonzero]
        ))

    def verify(self, commitment: Commitment, values: Sequence[int],
               randomness: int = 0) -> bool:
        """Check that ``values`` (and ``randomness``) open ``commitment``."""
        return self.commit(values, randomness) == commitment
