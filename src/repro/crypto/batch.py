"""Batch verification of Pedersen openings.

Sec. IV-B notes that with multiple aggregators per partition "the
directory would have to check each partial update, increasing the
performance overhead".  The standard countermeasure is random-linear-
combination batching: to verify k claimed openings ``(v_j, C_j)``, draw
random 128-bit scalars ``r_j`` and check the single equation

    commit( sum_j r_j * v_j )  ==  prod_j C_j^{r_j}

If every opening is valid the equation holds; if any is invalid it fails
except with probability ~2^-128 over the verifier's randomness.  The
cost is ONE vector commitment over the same length plus k cheap
exponentiations, instead of k full vector commitments.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from .multiexp import multi_scalar_mult
from .pedersen import Commitment, PedersenParams

__all__ = ["batch_verify", "random_scalars"]

#: Bit length of the batching coefficients; failure probability ~2^-128.
COEFFICIENT_BITS = 128


def random_scalars(count: int, order: int, seed=None) -> List[int]:
    """Draw ``count`` nonzero batching coefficients below 2^128."""
    rng = random.Random(seed) if seed is not None else random.SystemRandom()
    bound = min(1 << COEFFICIENT_BITS, order - 1)
    return [rng.randrange(1, bound) for _ in range(count)]


def batch_verify(
    params: PedersenParams,
    openings: Sequence[Tuple[Sequence[int], Commitment]],
    seed=None,
) -> bool:
    """Verify many (scalar-vector, commitment) pairs in one equation.

    ``openings`` is a sequence of ``(values, commitment)``; vectors may
    have different lengths up to ``params.size`` (zero-padded).  Returns
    True iff the batched check passes.  ``seed`` fixes the verifier
    randomness for reproducible tests; omit it in adversarial settings.
    """
    if not openings:
        return True
    order = params.curve.n
    coefficients = random_scalars(len(openings), order, seed=seed)

    length = max(len(values) for values, _ in openings)
    combined = [0] * length
    for coefficient, (values, _) in zip(coefficients, openings):
        for index, value in enumerate(values):
            combined[index] = (
                combined[index] + coefficient * value
            ) % order
    left = params.commit(combined)

    points = [commitment.point for _, commitment in openings]
    usable = [
        (coefficient, point)
        for coefficient, point in zip(coefficients, points)
        if not point.is_identity
    ]
    if usable:
        right = Commitment(multi_scalar_mult(
            [coefficient for coefficient, _ in usable],
            [point for _, point in usable],
        ))
    else:
        right = Commitment.identity(params.curve)
    return left == right
