"""Cryptography: elliptic curves, multi-exponentiation, Pedersen commitments.

Everything is implemented from first principles (prime-field arithmetic up)
— the stand-in for the paper's Bouncy Castle dependency.

Public surface:

- :data:`SECP256K1` / :data:`SECP256R1` — the paper's two curves.
- :class:`Point`, :func:`generator`, :func:`scalar_mult` — group ops.
- :func:`multi_scalar_mult` (Straus / Pippenger dispatch).
- :class:`PedersenParams` / :class:`Commitment` — vector commitments.
- :class:`FixedPointCodec` — gradient <-> scalar encoding.
- :func:`hash_to_curve`, :func:`derive_generators`, :func:`sha256`.
"""

from .batch import batch_verify, random_scalars
from .curves import CurveParams, SECP256K1, SECP256R1, curve_by_name
from .encoding import FixedPointCodec
from .field import inverse_mod, is_quadratic_residue, legendre_symbol, sqrt_mod
from .group import Point, generator, scalar_mult, wnaf
from .hashing import derive_generators, hash_to_curve, sha256
from .multiexp import multi_scalar_mult, pippenger, straus
from .pedersen import Commitment, PedersenParams

__all__ = [
    "Commitment",
    "batch_verify",
    "random_scalars",
    "CurveParams",
    "FixedPointCodec",
    "PedersenParams",
    "Point",
    "SECP256K1",
    "SECP256R1",
    "curve_by_name",
    "derive_generators",
    "generator",
    "hash_to_curve",
    "inverse_mod",
    "is_quadratic_residue",
    "legendre_symbol",
    "multi_scalar_mult",
    "pippenger",
    "scalar_mult",
    "sha256",
    "sqrt_mod",
    "straus",
    "wnaf",
]
