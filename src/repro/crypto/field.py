"""Prime-field arithmetic.

Helpers over GF(p) used by the elliptic-curve layer: modular inverse,
Legendre symbol and modular square roots (Tonelli–Shanks, with the fast
``p ≡ 3 (mod 4)`` path both secp curves take).
"""

from __future__ import annotations

__all__ = ["inverse_mod", "legendre_symbol", "sqrt_mod", "is_quadratic_residue"]


def inverse_mod(value: int, modulus: int) -> int:
    """The multiplicative inverse of ``value`` modulo ``modulus``.

    Raises ``ZeroDivisionError`` for ``value ≡ 0``.
    """
    value %= modulus
    if value == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse")
    return pow(value, -1, modulus)


def legendre_symbol(value: int, prime: int) -> int:
    """Legendre symbol (value|prime): 1, -1, or 0 for value ≡ 0."""
    value %= prime
    if value == 0:
        return 0
    symbol = pow(value, (prime - 1) // 2, prime)
    return -1 if symbol == prime - 1 else 1


def is_quadratic_residue(value: int, prime: int) -> bool:
    """True iff ``value`` has a square root modulo ``prime``."""
    return legendre_symbol(value, prime) != -1


def sqrt_mod(value: int, prime: int) -> int:
    """A square root of ``value`` modulo an odd prime.

    Returns the even root's companion arbitrarily (callers needing a
    specific parity, e.g. point decompression, adjust themselves).
    Raises ``ValueError`` if ``value`` is a non-residue.
    """
    value %= prime
    if value == 0:
        return 0
    if legendre_symbol(value, prime) != 1:
        raise ValueError(f"{value} is not a quadratic residue mod {prime}")
    if prime % 4 == 3:
        return pow(value, (prime + 1) // 4, prime)
    # Tonelli–Shanks for p ≡ 1 (mod 4).
    q, s = prime - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    non_residue = 2
    while legendre_symbol(non_residue, prime) != -1:
        non_residue += 1
    c = pow(non_residue, q, prime)
    x = pow(value, (q + 1) // 2, prime)
    t = pow(value, q, prime)
    m = s
    while t != 1:
        t2 = t
        i = 0
        for i in range(1, m):
            t2 = t2 * t2 % prime
            if t2 == 1:
                break
        b = pow(c, 1 << (m - i - 1), prime)
        x = x * b % prime
        t = t * b * b % prime
        c = b * b % prime
        m = i
    return x
