"""Per-node block storage with pinning and garbage collection."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..obs.events import BlockEvicted
from .block import Block
from .cid import CID

__all__ = ["Blockstore"]


class Blockstore:
    """The datastore of one IPFS node.

    Blocks are kept by CID.  *Pinned* blocks survive garbage collection;
    the FL protocol pins gradients/updates only for the iterations that
    still need them and unpins afterwards (the paper: data are "only
    needed for a short period of time").

    ``sim``/``owner`` let garbage collection report evictions on the
    simulation's event bus; both default to unset so standalone stores
    (unit tests, tooling) work without a simulator.
    :class:`~repro.ipfs.node.IPFSNode` binds them at construction.
    """

    def __init__(self, capacity_bytes: float = float("inf"),
                 sim=None, owner: str = ""):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.sim = sim
        self.owner = owner
        self._blocks: Dict[CID, Block] = {}
        self._pins: Set[CID] = set()
        self.total_bytes = 0

    def __contains__(self, cid: CID) -> bool:
        return cid in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def put(self, block: Block, pin: bool = True) -> CID:
        """Store ``block``; raises ``IOError`` if capacity would be exceeded."""
        if block.cid in self._blocks:
            if pin:
                self._pins.add(block.cid)
            return block.cid
        if self.total_bytes + block.size > self.capacity_bytes:
            raise IOError(
                f"blockstore full: {self.total_bytes + block.size} "
                f"> {self.capacity_bytes} bytes"
            )
        self._blocks[block.cid] = block
        self.total_bytes += block.size
        if pin:
            self._pins.add(block.cid)
        return block.cid

    def get(self, cid: CID) -> Optional[Block]:
        """The stored block, or None."""
        return self._blocks.get(cid)

    def has(self, cid: CID) -> bool:
        return cid in self._blocks

    def pin(self, cid: CID) -> None:
        if cid not in self._blocks:
            raise KeyError(f"cannot pin unknown block {cid!r}")
        self._pins.add(cid)

    def unpin(self, cid: CID) -> None:
        self._pins.discard(cid)

    def is_pinned(self, cid: CID) -> bool:
        return cid in self._pins

    def cids(self) -> Iterable[CID]:
        return self._blocks.keys()

    def wipe(self) -> List[CID]:
        """Drop *everything*, pinned or not (disk loss on a node crash).

        Evictions are reported on the bus like GC evictions so leak
        monitors account for the vanished blocks.  Returns the CIDs
        removed.
        """
        removed = list(self._blocks)
        sim = self.sim
        emit = sim is not None and sim.bus.wants(BlockEvicted)
        for cid in removed:
            size = self._blocks[cid].size
            self.total_bytes -= size
            del self._blocks[cid]
            if emit:
                sim.bus.publish(BlockEvicted(
                    at=sim.now, node=self.owner, cid=cid, size=size,
                ))
        self._pins.clear()
        return removed

    def collect_garbage(self) -> List[CID]:
        """Drop every unpinned block; returns the CIDs removed."""
        removed = [cid for cid in self._blocks if cid not in self._pins]
        sim = self.sim
        emit = sim is not None and sim.bus.wants(BlockEvicted)
        for cid in removed:
            size = self._blocks[cid].size
            self.total_bytes -= size
            del self._blocks[cid]
            if emit:
                sim.bus.publish(BlockEvicted(
                    at=sim.now, node=self.owner, cid=cid, size=size,
                ))
        return removed
