"""IPFS nodes (storage servers) and the client API participants use.

The paper draws "a clean separation between IPLS participants and IPFS
nodes": trainers and aggregators are *clients* that ``put``/``get`` data to
and from storage nodes over the network.  An :class:`IPFSNode` is a server
process with a blockstore; an :class:`IPFSClient` offers ``put``, ``get``
and ``merge_and_download`` as process generators (``yield from``).

Retrieval verifies content against the CID — the adversarial model
assumes availability but "we do not assume correctness of retrieved data;
this is up to the parties to check" — and falls back to other DHT
providers on corruption or timeouts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..faults.retry import RetryPolicy
from ..net import Endpoint, Message, Transport
from ..obs.events import BlockFetched, BlockStored, MergeServed, \
    NodeCrashed, NodeRestarted, RetryExhausted
from ..sim import Simulator
from .block import Block, DEFAULT_CHUNK_SIZE, chunk_object, parse_manifest, reassemble
from .blockstore import Blockstore
from .cid import CID, compute_cid
from .dht import DHT
from .errors import IntegrityError, IPFSError, MergeError, NodeOfflineError, \
    NotFoundError
from .merge import get_merger

__all__ = ["IPFSNode", "IPFSClient"]

# Message kinds.
KIND_PUT = "ipfs.put"
KIND_PUT_ACK = "ipfs.put.ack"
KIND_GET = "ipfs.get"
KIND_GET_DATA = "ipfs.get.data"
KIND_GET_BLOCK = "ipfs.getblock"
KIND_GET_BLOCK_DATA = "ipfs.getblock.data"
KIND_MERGE = "ipfs.merge"
KIND_MERGE_DATA = "ipfs.merge.data"
KIND_REPLICATE = "ipfs.replicate"
KIND_UNPIN = "ipfs.unpin"

#: Wire overheads (bytes): request framing and a CID on the wire.
REQUEST_OVERHEAD = 256
CID_WIRE_SIZE = 64
ACK_SIZE = 128


class IPFSNode:
    """One storage node: a server loop over a blockstore.

    Set :attr:`online` to False to simulate a dropout (requests are
    silently dropped) and :attr:`corrupt` to True to serve flipped bytes
    (exercising client-side integrity checking).
    """

    def __init__(self, sim: Simulator, transport: Transport, dht: DHT,
                 name: str, blockstore: Optional[Blockstore] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE):
        self.sim = sim
        self.transport = transport
        self.dht = dht
        self.name = name
        self.store = blockstore or Blockstore()
        if self.store.sim is None:
            # Bind the store to this node so GC evictions reach the bus.
            self.store.sim = sim
            self.store.owner = name
        self.chunk_size = chunk_size
        self.online = True
        self.corrupt = False
        #: Root CIDs this node has advertised on the DHT, in publication
        #: order (dict used as an insertion-ordered set).  Crash/restart
        #: withdraws and re-publishes exactly these records.
        self._provided: Dict[CID, None] = {}
        #: Set by :class:`~repro.ipfs.cluster.ReplicationCluster`.
        self.cluster = None
        #: Telemetry.
        self.puts_served = 0
        self.gets_served = 0
        self.merges_served = 0
        self.endpoint: Endpoint = transport.endpoint(name)
        self._server = sim.process(self._serve(), name=f"ipfs-node:{name}")

    # -- local storage operations (no network) --------------------------------

    def store_object(self, data: bytes, pin: bool = True) -> CID:
        """Chunk, store and advertise ``data``; returns the root CID."""
        root, leaves = chunk_object(data, self.chunk_size)
        for leaf in leaves:
            self.store.put(leaf, pin=pin)
        self.store.put(root, pin=pin)
        self.dht.provide(root.cid, self.name)
        self._provided[root.cid] = None
        bus = self.sim.bus
        if bus.wants(BlockStored):
            bus.publish(BlockStored(
                at=self.sim.now, node=self.name, cid=root.cid,
                size=len(data),
            ))
        return root.cid

    def load_object(self, root_cid: CID) -> Optional[bytes]:
        """Reassemble a stored object; None if any block is missing."""
        root = self.store.get(root_cid)
        if root is None:
            return None
        try:
            leaf_cids = parse_manifest(root)
        except ValueError:
            # A bare (unchunked) block stored directly.
            return root.data
        leaves = []
        for cid in leaf_cids:
            leaf = self.store.get(cid)
            if leaf is None:
                return None
            leaves.append(leaf)
        return reassemble(root, leaves)

    def object_blocks(self, root_cid: CID) -> Optional[List[Block]]:
        """Root plus leaf blocks of a stored object, or None if missing."""
        root = self.store.get(root_cid)
        if root is None:
            return None
        try:
            leaf_cids = parse_manifest(root)
        except ValueError:
            return [root]
        blocks = [root]
        for cid in leaf_cids:
            leaf = self.store.get(cid)
            if leaf is None:
                return None
            blocks.append(leaf)
        return blocks

    def unpin_object(self, root_cid: CID) -> None:
        """Unpin a whole object (root and leaves)."""
        root = self.store.get(root_cid)
        if root is None:
            return
        self.store.unpin(root_cid)
        try:
            for cid in parse_manifest(root):
                self.store.unpin(cid)
        except ValueError:
            pass

    # -- fault surface (crash / restart) ---------------------------------------

    def crash(self, lose_storage: bool = False) -> None:
        """Take the node down (fault injection).

        Requests are dropped on the floor while down, and every provider
        record the node published is withdrawn from the DHT — as a real
        peer's records expire once it stops re-providing.  With
        ``lose_storage`` the blockstore is wiped too (disk loss); without
        it the blockstore survives and :meth:`restart` re-advertises it.
        Idempotent: crashing a dead node only escalates storage loss.
        """
        was_online = self.online
        self.online = False
        if was_online:
            for cid in self._provided:
                self.dht.unprovide(cid, self.name)
        lost_blocks = 0
        if lose_storage:
            lost_blocks = len(self.store.wipe())
            self._provided.clear()
        if not was_online and not lose_storage:
            return
        bus = self.sim.bus
        if bus.wants(NodeCrashed):
            bus.publish(NodeCrashed(
                at=self.sim.now, node=self.name, lost_blocks=lost_blocks,
            ))

    def restart(self) -> int:
        """Bring a crashed node back; returns re-provided record count.

        Objects still in the blockstore are re-advertised on the DHT in
        their original publication order (the re-provide run a restarted
        IPFS daemon performs); records for objects lost with the disk are
        dropped.  No-op if the node is already online.
        """
        if self.online:
            return 0
        self.online = True
        survivors = {cid: None for cid in self._provided
                     if self.store.has(cid)}
        self._provided = survivors
        for cid in survivors:
            self.dht.provide(cid, self.name)
        bus = self.sim.bus
        if bus.wants(NodeRestarted):
            bus.publish(NodeRestarted(
                at=self.sim.now, node=self.name, reprovided=len(survivors),
            ))
        return len(survivors)

    # -- server loop ----------------------------------------------------------

    def _serve(self):
        while True:
            message = yield self.endpoint.receive()
            if not self.online:
                continue  # dropped on the floor: client sees a timeout
            self.sim.process(
                self._handle(message), name=f"{self.name}:{message.kind}"
            )

    def _handle(self, message: Message):
        if message.kind == KIND_PUT:
            yield from self._handle_put(message)
        elif message.kind == KIND_GET:
            yield from self._handle_get(message)
        elif message.kind == KIND_GET_BLOCK:
            yield from self._handle_get_block(message)
        elif message.kind == KIND_MERGE:
            yield from self._handle_merge(message)
        elif message.kind == KIND_REPLICATE:
            yield from self._handle_replicate(message)
        elif message.kind == KIND_UNPIN:
            self.unpin_object(message.payload)
            yield self.sim.timeout(0)
        # Unknown kinds are ignored (forward compatibility).

    def _handle_put(self, message: Message):
        data: bytes = message.payload
        root_cid = self.store_object(data)
        self.puts_served += 1
        if self.cluster is not None:
            self.cluster.schedule_replication(self, root_cid)
        yield self.endpoint.respond(
            message, KIND_PUT_ACK, payload=root_cid, size=ACK_SIZE
        )

    def _maybe_corrupt(self, data: bytes) -> bytes:
        if not self.corrupt or not data:
            return data
        flipped = bytearray(data)
        flipped[0] ^= 0xFF
        return bytes(flipped)

    def _handle_get(self, message: Message):
        root_cid: CID = message.payload
        data = self.load_object(root_cid)
        self.gets_served += 1
        if data is None:
            yield self.endpoint.respond(
                message, KIND_GET_DATA, payload=None, size=ACK_SIZE
            )
            return
        data = self._maybe_corrupt(data)
        yield self.endpoint.respond(
            message, KIND_GET_DATA, payload=data,
            size=len(data) + REQUEST_OVERHEAD,
        )

    def _handle_get_block(self, message: Message):
        """Serve one raw block (bitswap-style exchange unit)."""
        block = self.store.get(message.payload)
        self.gets_served += 1
        if block is None:
            yield self.endpoint.respond(
                message, KIND_GET_BLOCK_DATA, payload=None, size=ACK_SIZE
            )
            return
        data = self._maybe_corrupt(block.data)
        yield self.endpoint.respond(
            message, KIND_GET_BLOCK_DATA, payload=data,
            size=len(data) + REQUEST_OVERHEAD,
        )

    def _handle_merge(self, message: Message):
        request = message.payload  # {"cids": [...], "merger": str}
        self.merges_served += 1
        blobs = []
        missing = []
        for cid in request["cids"]:
            data = self.load_object(cid)
            if data is None:
                missing.append(cid)
            else:
                blobs.append(data)
        if missing or not blobs:
            yield self.endpoint.respond(
                message, KIND_MERGE_DATA,
                payload={"error": "missing", "missing": missing},
                size=ACK_SIZE,
            )
            return
        try:
            merger = get_merger(request["merger"])
            merged = merger(blobs)
        except MergeError as exc:
            yield self.endpoint.respond(
                message, KIND_MERGE_DATA,
                payload={"error": str(exc)}, size=ACK_SIZE,
            )
            return
        merged = self._maybe_corrupt(merged)
        bus = self.sim.bus
        if bus.wants(MergeServed):
            # The consumed source objects: a merge is the only read those
            # blocks ever see, so leak monitors count them as fetched.
            bus.publish(MergeServed(
                at=self.sim.now, node=self.name,
                cids=tuple(request["cids"]), size=len(merged),
            ))
        yield self.endpoint.respond(
            message, KIND_MERGE_DATA,
            payload={"data": merged, "count": len(blobs)},
            size=len(merged) + REQUEST_OVERHEAD,
        )

    def _handle_replicate(self, message: Message):
        data: bytes = message.payload
        self.store_object(data)
        yield self.sim.timeout(0)


class IPFSClient:
    """Client-side API: process generators for put/get/merge-and-download."""

    def __init__(self, name: str, transport: Transport, dht: DHT,
                 request_timeout: float = 120.0,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 retry: Optional[RetryPolicy] = None):
        self.name = name
        self.transport = transport
        self.dht = dht
        self.sim: Simulator = transport.sim
        self.request_timeout = request_timeout
        #: Bounded-backoff policy for :meth:`get`; None = single attempt.
        self.retry = retry
        #: Must match the chunk size of the nodes, as the object CID binds
        #: the chunk manifest.
        self.chunk_size = chunk_size
        self.endpoint = transport.endpoint(name)
        #: Telemetry (bytes).
        self.bytes_uploaded = 0.0
        self.bytes_downloaded = 0.0

    # -- request helper -------------------------------------------------------

    def _request(self, dst: str, kind: str, payload, size: float):
        """Request/response with a timeout; returns the response or None."""
        request_id = self.transport.next_request_id()
        self.transport.send(Message(
            src=self.name, dst=dst, kind=kind, payload=payload,
            size=size, request_id=request_id,
        ))
        response_event = self.endpoint.inbox.get(
            lambda message: message.request_id == request_id
        )
        timeout = self.sim.timeout(self.request_timeout)
        outcome = yield self.sim.any_of([response_event, timeout])
        if response_event in outcome:
            return outcome[response_event]
        return None

    # -- public API -------------------------------------------------------------

    def put(self, data: bytes, node: str, pin: bool = True):
        """Upload ``data`` to ``node``; returns the root CID.

        The paper measures "the time between uploading the gradients to an
        IPFS node until the receipt of the store acknowledgment" — that is
        exactly the duration of this call.
        """
        size = len(data) + REQUEST_OVERHEAD
        response = yield from self._request(node, KIND_PUT, bytes(data), size)
        if response is None:
            raise NodeOfflineError(f"put to {node!r} timed out")
        self.bytes_uploaded += size
        root_cid: CID = response.payload
        return root_cid

    def get(self, cid: CID, prefer_nodes: Sequence[str] = (),
            max_providers: int = 5):
        """Download and verify the object behind ``cid``.

        Tries ``prefer_nodes`` first, then up to ``max_providers`` from the
        DHT.  Corrupted responses (hash mismatch) and timeouts skip to the
        next provider.  When the client has a :class:`RetryPolicy`, a
        fully failed pass retries with bounded backoff, re-querying the
        DHT each attempt (a crashed node may have restarted and
        re-provided).  Raises the final attempt's :class:`IPFSError`
        (:class:`NotFoundError` et al.) when exhausted.
        """
        policy = self.retry
        if policy is None:
            return (yield from self._get_once(cid, prefer_nodes,
                                              max_providers))
        attempts = max(1, policy.max_attempts)
        last_error: Optional[IPFSError] = None
        for attempt in range(attempts):
            try:
                return (yield from self._get_once(cid, prefer_nodes,
                                                  max_providers))
            except IPFSError as exc:
                last_error = exc
            if attempt + 1 < attempts:
                yield self.sim.timeout(
                    policy.backoff(attempt, key=f"{self.name}:get:{cid}")
                )
        bus = self.sim.bus
        if bus.wants(RetryExhausted):
            bus.publish(RetryExhausted(
                at=self.sim.now, actor=self.name, operation="ipfs.get",
                attempts=attempts,
            ))
        raise last_error or NotFoundError(f"could not retrieve {cid!r}")

    def _get_once(self, cid: CID, prefer_nodes: Sequence[str] = (),
                  max_providers: int = 5):
        """One retrieval pass over preferred nodes plus DHT providers."""
        fetch_started = self.sim.now
        candidates: List[str] = list(prefer_nodes)
        discovered = yield from self.dht.find_providers(
            cid, limit=max_providers, querier=self.name
        )
        for node in discovered:
            if node not in candidates:
                candidates.append(node)
        if not candidates:
            raise NotFoundError(f"no providers for {cid!r}")
        last_error: Optional[Exception] = None
        for node in candidates:
            response = yield from self._request(
                node, KIND_GET, cid, REQUEST_OVERHEAD + CID_WIRE_SIZE
            )
            if response is None:
                last_error = NodeOfflineError(f"get from {node!r} timed out")
                continue
            data = response.payload
            if data is None:
                last_error = NotFoundError(f"{node!r} no longer has {cid!r}")
                continue
            if compute_cid(self._object_bytes_for_cid(cid, data,
                                                      self.chunk_size)) != cid:
                last_error = IntegrityError(
                    f"{node!r} served bytes not matching {cid!r}"
                )
                continue
            self.bytes_downloaded += len(data) + REQUEST_OVERHEAD
            bus = self.sim.bus
            if bus.wants(BlockFetched):
                bus.publish(BlockFetched(
                    at=self.sim.now, client=self.name, node=node, cid=cid,
                    size=len(data) + REQUEST_OVERHEAD,
                    started_at=fetch_started,
                ))
            return data
        raise last_error or NotFoundError(f"could not retrieve {cid!r}")

    @staticmethod
    def _object_bytes_for_cid(cid: CID, data: bytes,
                              chunk_size: int) -> bytes:
        """Bytes whose hash must equal ``cid`` for object ``data``.

        Objects are stored chunked under a manifest root, so the CID binds
        the manifest; recompute it from the data to check integrity.
        """
        root, _leaves = chunk_object(data, chunk_size)
        if root.cid == cid:
            return root.data
        return data  # bare block: the CID binds the data directly

    def get_block(self, cid: CID, node: str):
        """Fetch and verify one raw block from ``node``.

        Returns the block bytes, or None on miss/timeout/corruption.
        """
        fetch_started = self.sim.now
        response = yield from self._request(
            node, KIND_GET_BLOCK, cid, REQUEST_OVERHEAD + CID_WIRE_SIZE
        )
        if response is None or response.payload is None:
            return None
        data: bytes = response.payload
        if compute_cid(data) != cid:
            return None
        self.bytes_downloaded += len(data) + REQUEST_OVERHEAD
        bus = self.sim.bus
        if bus.wants(BlockFetched):
            bus.publish(BlockFetched(
                at=self.sim.now, client=self.name, node=node, cid=cid,
                size=len(data) + REQUEST_OVERHEAD,
                started_at=fetch_started,
            ))
        return data

    def get_striped(self, cid: CID, prefer_nodes: Sequence[str] = (),
                    max_providers: int = 5):
        """Swarm-style retrieval: stripe leaf blocks across providers.

        Real bitswap downloads a chunked object block-by-block from
        several peers in parallel; this does the same — fetch the
        manifest, then pull the leaves concurrently round-robin over all
        live providers, verifying every block by CID.  Falls back to a
        whole-object :meth:`get` for unchunked content.

        Raises :class:`NotFoundError` when any leaf cannot be produced
        by any provider.
        """
        candidates: List[str] = list(prefer_nodes)
        discovered = yield from self.dht.find_providers(
            cid, limit=max_providers, querier=self.name
        )
        for node in discovered:
            if node not in candidates:
                candidates.append(node)
        if not candidates:
            raise NotFoundError(f"no providers for {cid!r}")

        root_data = None
        for node in candidates:
            root_data = yield from self.get_block(cid, node)
            if root_data is not None:
                break
        if root_data is None:
            raise NotFoundError(f"could not retrieve manifest {cid!r}")
        root = Block(root_data)
        try:
            leaf_cids = parse_manifest(root)
        except ValueError:
            return root_data  # bare block: the object itself

        leaves: dict = {}

        def fetch_leaf(leaf_cid, start_index):
            for offset in range(len(candidates)):
                node = candidates[(start_index + offset) % len(candidates)]
                data = yield from self.get_block(leaf_cid, node)
                if data is not None:
                    leaves[leaf_cid] = Block(data)
                    return

        procs = [
            self.sim.process(fetch_leaf(leaf_cid, index),
                             name=f"{self.name}:leaf{index}")
            for index, leaf_cid in enumerate(leaf_cids)
        ]
        if procs:
            yield self.sim.all_of(procs)
        missing = [leaf for leaf in leaf_cids if leaf not in leaves]
        if missing:
            raise NotFoundError(
                f"{len(missing)} leaf block(s) unavailable for {cid!r}"
            )
        return reassemble(root, [leaves[leaf] for leaf in leaf_cids])

    def merge_and_download(self, cids: Iterable[CID], node: str,
                           merger: str = "sum-f64"):
        """Ask ``node`` to pre-aggregate ``cids`` and return the merged bytes.

        Returns ``(merged_bytes, count)``.  Raises :class:`MergeError` on a
        provider-side failure and :class:`NodeOfflineError` on a timeout.
        No client-side integrity check is possible against a single CID —
        the verifiable-aggregation layer checks the merged result against
        the product of the constituent Pedersen commitments instead.
        """
        fetch_started = self.sim.now
        cid_list = list(cids)
        request = {"cids": cid_list, "merger": merger}
        size = REQUEST_OVERHEAD + CID_WIRE_SIZE * len(cid_list)
        response = yield from self._request(node, KIND_MERGE, request, size)
        if response is None:
            raise NodeOfflineError(f"merge on {node!r} timed out")
        payload = response.payload
        if "error" in payload:
            raise MergeError(f"merge on {node!r} failed: {payload['error']}")
        merged: bytes = payload["data"]
        self.bytes_downloaded += len(merged) + REQUEST_OVERHEAD
        bus = self.sim.bus
        if bus.wants(BlockFetched):
            # A merged download has no single source CID; record the fetch
            # itself (the commitment check authenticates the bytes).
            bus.publish(BlockFetched(
                at=self.sim.now, client=self.name, node=node, cid=None,
                size=len(merged) + REQUEST_OVERHEAD,
                started_at=fetch_started,
            ))
        return merged, payload["count"]

    def unpin(self, cid: CID, node: str):
        """Fire-and-forget unpin of an object on ``node``."""
        self.endpoint.send(node, KIND_UNPIN, payload=cid,
                           size=REQUEST_OVERHEAD)
        yield self.sim.timeout(0)
