"""Simulated IPFS: content-addressed storage over the emulated network.

Public surface:

- :func:`compute_cid` / :class:`CID` — content identifiers.
- :class:`Block`, :func:`chunk_object` — storage units.
- :class:`Blockstore` — per-node storage with pinning/GC.
- :class:`DHT` — provider records with lookup latency.
- :class:`IPFSNode` — a storage server process.
- :class:`IPFSClient` — participant-side put/get/merge-and-download.
- :class:`PubSub` — topic pub/sub.
- :class:`ReplicationCluster` — rendezvous-hashed replication.
- :func:`register_merger` — provider-side pre-aggregation functions.
"""

from .block import (
    Block,
    DEFAULT_CHUNK_SIZE,
    chunk_object,
    is_manifest,
    parse_manifest,
    reassemble,
)
from .blockstore import Blockstore
from .cid import CID, compute_cid, verify_cid
from .cluster import ReplicationCluster, rendezvous_rank
from .dht import DHT, ProviderRecord
from .kademlia import KademliaDHT, RoutingTable, bucket_index, node_key, \
    xor_distance
from .errors import (
    IntegrityError,
    IPFSError,
    MergeError,
    NodeOfflineError,
    NotFoundError,
)
from .merge import get_merger, merger_names, register_merger, sum_f64
from .node import IPFSClient, IPFSNode
from .pubsub import PubSub, PubSubMessage, Subscription

__all__ = [
    "Block",
    "Blockstore",
    "CID",
    "DEFAULT_CHUNK_SIZE",
    "DHT",
    "IPFSClient",
    "IPFSError",
    "IPFSNode",
    "IntegrityError",
    "KademliaDHT",
    "MergeError",
    "NodeOfflineError",
    "NotFoundError",
    "ProviderRecord",
    "PubSub",
    "PubSubMessage",
    "ReplicationCluster",
    "RoutingTable",
    "Subscription",
    "bucket_index",
    "node_key",
    "xor_distance",
    "chunk_object",
    "compute_cid",
    "get_merger",
    "is_manifest",
    "merger_names",
    "parse_manifest",
    "reassemble",
    "register_merger",
    "rendezvous_rank",
    "sum_f64",
    "verify_cid",
]
