"""Content identifiers (CIDs).

IPFS addresses every block by the hash of its bytes.  We implement a
CIDv1-style identifier: a SHA-256 multihash rendered in lowercase base32,
which is what the paper relies on for content addressing and integrity
("Cid = Hash(data) ... without knowing this hash, one cannot find data").
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass

__all__ = ["CID", "compute_cid", "verify_cid"]

#: Multicodec prefixes: cidv1 (0x01), raw codec (0x55), sha2-256 (0x12),
#: digest length 32 (0x20) — mirroring go-ipfs defaults.
_PREFIX = bytes([0x01, 0x55, 0x12, 0x20])


@dataclass(frozen=True)
class CID:
    """An immutable content identifier (SHA-256 multihash)."""

    digest: bytes

    def __post_init__(self):
        if len(self.digest) != 32:
            raise ValueError("CID digest must be 32 bytes (sha2-256)")

    def encode(self) -> str:
        """Render as a CIDv1-style base32 string (``b...``)."""
        raw = _PREFIX + self.digest
        body = base64.b32encode(raw).decode("ascii").lower().rstrip("=")
        return "b" + body

    @classmethod
    def decode(cls, text: str) -> "CID":
        """Parse a string produced by :meth:`encode`."""
        if not text.startswith("b"):
            raise ValueError("not a base32 CIDv1 string")
        body = text[1:].upper()
        padding = "=" * (-len(body) % 8)
        raw = base64.b32decode(body + padding)
        if raw[: len(_PREFIX)] != _PREFIX:
            raise ValueError("unsupported CID prefix")
        return cls(digest=raw[len(_PREFIX):])

    def __str__(self) -> str:
        return self.encode()

    def __repr__(self) -> str:
        return f"CID({self.encode()[:16]}…)"


def compute_cid(data: bytes) -> CID:
    """The CID of ``data``: its SHA-256 digest, wrapped."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"CID input must be bytes, got {type(data).__name__}")
    return CID(digest=hashlib.sha256(data).digest())


def verify_cid(cid: CID, data: bytes) -> bool:
    """True iff ``data`` hashes to ``cid`` (retrieval integrity check)."""
    return compute_cid(data) == cid
