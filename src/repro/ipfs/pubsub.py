"""Topic-based publish/subscribe (gossipsub stand-in).

IPFS exposes a pub/sub facility that the protocol uses in the
multi-aggregator verification path (Sec. IV-B: "Aggregators use the IPFS
pub/sub functionality to publish their IPFS hashes for their partial
updates").  We model the delivered behaviour — every live subscriber of a
topic receives each published message — with fan-out charged to the
publisher's uplink, which is the dominant first-order cost of flood-based
pubsub at these scales.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..sim import Event, Store
from ..net import Transport
from ..net.bandwidth import TransferAbortedError

__all__ = ["PubSubMessage", "PubSub", "Subscription"]

#: Wire overhead of a pubsub frame beyond its payload.
_FRAME_OVERHEAD = 128


@dataclass
class PubSubMessage:
    """One delivered pub/sub message."""

    topic: str
    sender: str
    payload: Any
    published_at: float
    delivered_at: float = 0.0


class Subscription:
    """A subscriber's message queue for one topic."""

    def __init__(self, pubsub: "PubSub", topic: str, subscriber: str):
        self.pubsub = pubsub
        self.topic = topic
        self.subscriber = subscriber
        self.queue = Store(pubsub.sim)

    def get(self) -> Event:
        """Wait for the next message on this topic."""
        return self.queue.get()

    def cancel(self) -> None:
        """Stop receiving messages on this topic."""
        self.pubsub.unsubscribe(self)


class PubSub:
    """The pub/sub fabric shared by all IPFS nodes and clients."""

    def __init__(self, transport: Transport):
        self.transport = transport
        self.sim = transport.sim
        self._topics: Dict[str, Set[Subscription]] = {}
        #: Telemetry: messages published per topic.
        self.published: Dict[str, int] = {}
        #: Telemetry: deliveries lost (fault injection / dead links).
        self.dropped = 0
        self._loss_rate = 0.0
        self._loss_rng: Optional[random.Random] = None

    def set_message_loss(self, rate: float,
                         rng: Optional[random.Random] = None) -> None:
        """Drop each delivery independently with probability ``rate``.

        Fault-injection hook: pass a seeded ``random.Random`` for
        reproducible loss patterns; ``rate=0`` heals the fabric.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be within [0, 1]")
        self._loss_rate = rate
        if rate > 0.0 and rng is None and self._loss_rng is None:
            raise ValueError("seeded rng required to enable message loss")
        if rng is not None:
            self._loss_rng = rng

    def subscribe(self, topic: str, subscriber: str) -> Subscription:
        """Join ``topic``; returns the queue to consume from."""
        subscription = Subscription(self, topic, subscriber)
        self._topics.setdefault(topic, set()).add(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscribers = self._topics.get(subscription.topic)
        if subscribers:
            subscribers.discard(subscription)
            if not subscribers:
                del self._topics[subscription.topic]

    def peers(self, topic: str) -> int:
        """Number of current subscribers of ``topic``."""
        return len(self._topics.get(topic, ()))

    def publish(self, topic: str, sender: str, payload: Any,
                size: float = 0.0) -> Event:
        """Publish to every subscriber; event fires when all are delivered.

        The message is also delivered to the sender itself if subscribed
        (matching real pubsub semantics).
        """
        self.published[topic] = self.published.get(topic, 0) + 1
        message = PubSubMessage(
            topic=topic, sender=sender, payload=payload,
            published_at=self.sim.now,
        )
        deliveries = []
        for subscription in list(self._topics.get(topic, ())):
            deliveries.append(
                self.sim.process(
                    self._deliver(message, subscription, sender, size),
                    name=f"pubsub:{topic}->{subscription.subscriber}",
                )
            )
        return self.sim.all_of(deliveries)

    def _deliver(self, message: PubSubMessage, subscription: Subscription,
                 sender: str, size: float):
        if self._loss_rate > 0.0 \
                and self._loss_rng.random() < self._loss_rate:
            self.dropped += 1
            return
        try:
            yield self.transport.network.transfer(
                sender, subscription.subscriber, size + _FRAME_OVERHEAD
            )
        except TransferAbortedError:
            # Best-effort fabric: a dead link eats the frame.
            self.dropped += 1
            return
        delivered = PubSubMessage(
            topic=message.topic,
            sender=message.sender,
            payload=message.payload,
            published_at=message.published_at,
            delivered_at=self.sim.now,
        )
        yield subscription.queue.put(delivered)
