"""Kademlia-style content routing.

The plain :class:`~repro.ipfs.dht.DHT` models provider discovery as a
table lookup with a fixed delay.  This module adds the structure real
IPFS uses: 256-bit node/content keys under the XOR metric, per-node
k-bucket routing tables, and iterative greedy lookups whose per-hop RPCs
are charged to the emulated network — so DHT traffic scales O(log n)
with the node count, as in the real system.

Simulation compromise (documented in DESIGN.md): provider records become
*visible* immediately on ``provide`` while the record-publication traffic
is charged in the background.  This keeps protocol runs deterministic
(no flaky record-propagation races) while preserving the costs and the
routing structure, which are what the evaluation measures.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..net import Network
from ..net.bandwidth import TransferAbortedError
from ..obs.events import DhtLookup
from ..sim import Simulator
from .cid import CID
from .dht import DHT

__all__ = ["node_key", "xor_distance", "bucket_index", "RoutingTable",
           "KademliaDHT"]

KEY_BITS = 256
#: Kademlia redundancy parameter: records live on the k closest nodes.
DEFAULT_K = 8
#: Wire size of one routing RPC (FIND_NODE / GET_PROVIDERS and reply).
RPC_SIZE = 96


def node_key(name: str) -> int:
    """A node's 256-bit key: SHA-256 of its name."""
    return int.from_bytes(
        hashlib.sha256(name.encode("utf-8")).digest(), "big"
    )


def content_key(cid: CID) -> int:
    """A content item's key in the same space."""
    return int.from_bytes(cid.digest, "big")


def xor_distance(a: int, b: int) -> int:
    """The Kademlia metric."""
    return a ^ b


def bucket_index(own: int, other: int) -> int:
    """Which k-bucket ``other`` lands in from ``own``'s perspective.

    Bucket i holds keys whose XOR distance has bit length i+1 (i.e.
    differs first at bit i from the top).  Raises for ``own == other``.
    """
    distance = xor_distance(own, other)
    if distance == 0:
        raise ValueError("a node does not bucket itself")
    return distance.bit_length() - 1


class RoutingTable:
    """One node's k-buckets (name -> key entries, capped at k each)."""

    def __init__(self, owner: str, k: int = DEFAULT_K):
        self.owner = owner
        self.owner_key = node_key(owner)
        self.k = k
        self._buckets: Dict[int, List[Tuple[str, int]]] = {}

    def insert(self, name: str) -> bool:
        """Add a peer; returns False if its bucket is full or it is us."""
        key = node_key(name)
        if key == self.owner_key:
            return False
        index = bucket_index(self.owner_key, key)
        bucket = self._buckets.setdefault(index, [])
        if any(entry_name == name for entry_name, _ in bucket):
            return True
        if len(bucket) >= self.k:
            return False
        bucket.append((name, key))
        return True

    def remove(self, name: str) -> None:
        key = node_key(name)
        try:
            index = bucket_index(self.owner_key, key)
        except ValueError:
            return
        bucket = self._buckets.get(index, [])
        self._buckets[index] = [
            entry for entry in bucket if entry[0] != name
        ]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def closest(self, target: int, count: int) -> List[str]:
        """The ``count`` known peers closest to ``target`` (XOR order)."""
        entries = [
            entry for bucket in self._buckets.values() for entry in bucket
        ]
        entries.sort(key=lambda entry: xor_distance(entry[1], target))
        return [name for name, _ in entries[:count]]


class KademliaDHT(DHT):
    """Drop-in DHT with Kademlia routing tables and charged lookups.

    Extends the authoritative-table DHT: records resolve exactly as
    before, but ``find_providers`` walks the iterative greedy path
    through the registered nodes' routing tables and charges one RPC
    round-trip per hop on the emulated network; ``provide`` spawns a
    background publication to the k closest nodes.
    """

    def __init__(self, sim: Simulator, network: Optional[Network] = None,
                 k: int = DEFAULT_K, lookup_delay: float = 0.0,
                 seed: int = 0):
        super().__init__(sim, lookup_delay=lookup_delay, seed=seed)
        self.network = network
        self.k = k
        self.tables: Dict[str, RoutingTable] = {}
        #: Telemetry: RPCs issued across all lookups/publishes.
        self.rpcs = 0

    # -- membership -------------------------------------------------------------

    def join(self, name: str) -> RoutingTable:
        """Register a routing participant (IPFS node)."""
        table = RoutingTable(name, k=self.k)
        for other in self.tables:
            table.insert(other)
            self.tables[other].insert(name)
        self.tables[name] = table
        return table

    def leave(self, name: str) -> None:
        self.tables.pop(name, None)
        for table in self.tables.values():
            table.remove(name)

    def members(self) -> List[str]:
        return sorted(self.tables)

    # -- routing ------------------------------------------------------------------

    def closest_nodes(self, target: int, count: int) -> List[str]:
        """Globally closest members to ``target`` (ground truth)."""
        members = [
            (name, table.owner_key) for name, table in self.tables.items()
        ]
        members.sort(key=lambda entry: xor_distance(entry[1], target))
        return [name for name, _ in members[:count]]

    def lookup_path(self, start: str, target: int,
                    max_hops: int = 32) -> List[str]:
        """The iterative greedy route from ``start`` towards ``target``.

        Each hop queries the current node's routing table for a strictly
        closer peer; terminates at the closest reachable node.
        """
        if start not in self.tables:
            raise KeyError(f"{start!r} has not joined the DHT")
        path = [start]
        current = start
        current_distance = xor_distance(node_key(current), target)
        for _ in range(max_hops):
            candidates = self.tables[current].closest(target, self.k)
            best = None
            best_distance = current_distance
            for candidate in candidates:
                distance = xor_distance(node_key(candidate), target)
                if distance < best_distance:
                    best, best_distance = candidate, distance
            if best is None:
                break
            path.append(best)
            current, current_distance = best, best_distance
        return path

    def _charge_path(self, querier: Optional[str], path: Sequence[str]):
        """Charge one RPC round-trip per hop (querier <-> hop node)."""
        if self.network is None or querier is None:
            if self.lookup_delay > 0:
                yield self.sim.timeout(self.lookup_delay)
            return
        for hop in path:
            if hop == querier:
                continue
            self.rpcs += 1
            try:
                yield self.network.transfer(querier, hop, RPC_SIZE)
                yield self.network.transfer(hop, querier, RPC_SIZE)
            except TransferAbortedError:
                # Unreachable hop (link down): the walk stops charging —
                # records still resolve from the authoritative table, so
                # this only shortens the modelled route cost.
                return

    # -- DHT interface ------------------------------------------------------------------

    def provide(self, cid: CID, node: str):
        """Advertise a record; publication traffic runs in the background."""
        record = super().provide(cid, node)
        if self.network is not None and node in self.tables:
            target = content_key(cid)
            storers = self.closest_nodes(target, self.k)

            def publish():
                path = self.lookup_path(node, target)
                yield from self._charge_path(node, path)
                for storer in storers:
                    if storer == node:
                        continue
                    self.rpcs += 1
                    try:
                        yield self.network.transfer(node, storer, RPC_SIZE)
                    except TransferAbortedError:
                        # Publication frame lost to a dead link; the
                        # authoritative record already exists, so only
                        # the background traffic is cut short.
                        return

            self.sim.process(publish(), name=f"kad:publish:{node}")
        return record

    def find_providers(self, cid: CID, limit: Optional[int] = None,
                       querier: Optional[str] = None):
        """Resolve providers, charging the iterative route when a
        querier on the network is given."""
        self.lookups += 1
        started = self.sim.now
        target = content_key(cid)
        if querier is not None and querier in self.tables:
            path = self.lookup_path(querier, target)
        elif querier is not None and self.tables:
            # Clients route through their nearest known member.
            entry = self.closest_nodes(target, 1)
            path = [entry[0]] if entry else []
            if path:
                path = self.lookup_path(path[0], target)
        else:
            path = []
        yield from self._charge_path(querier, path)
        names = self.providers_snapshot(cid)
        self._rng.shuffle(names)
        if limit is not None:
            names = names[:limit]
        bus = self.sim.bus
        if bus.wants(DhtLookup):
            bus.publish(DhtLookup(
                at=self.sim.now, querier=querier, cid=cid,
                providers=len(names), hops=len(path), started_at=started,
            ))
        return names
