"""Merge-and-download: provider-side pre-aggregation (paper Sec. III-E).

Instead of downloading every gradient partition stored on one IPFS node,
an aggregator sends the node the set of CIDs and asks it to
"pre-aggregate the gradient partitions for those hashes and send only the
aggregated result".  The node applies a *merger* — a named, registered
reduction over decoded block payloads — and returns a single merged blob.

Mergers are identified by name on the wire so that the simulated provider
and the aggregator agree on semantics.  The FL protocol registers the
float64 vector summation used for gradients (see
:mod:`repro.core.partition`); this module ships a generic implementation
for float64 arrays with and without the trailing averaging counter.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from .errors import MergeError

__all__ = ["register_merger", "get_merger", "merger_names", "sum_f64"]

#: name -> reduction over a list of byte strings, returning bytes.
_MERGERS: Dict[str, Callable[[List[bytes]], bytes]] = {}


def register_merger(name: str,
                    fn: Callable[[List[bytes]], bytes],
                    replace: bool = False) -> None:
    """Register a named reduction usable in merge-and-download requests."""
    if name in _MERGERS and not replace:
        raise ValueError(f"merger {name!r} already registered")
    _MERGERS[name] = fn


def get_merger(name: str) -> Callable[[List[bytes]], bytes]:
    """Resolve a registered merger; raises :class:`MergeError` if unknown."""
    try:
        return _MERGERS[name]
    except KeyError:
        raise MergeError(f"unknown merger {name!r}") from None


def merger_names() -> List[str]:
    """All registered merger names."""
    return sorted(_MERGERS)


def sum_f64(blobs: List[bytes]) -> bytes:
    """Element-wise sum of equal-length float64 vectors.

    This is the aggregation the protocol performs on gradient partitions;
    the trailing averaging counter the trainers append (Algorithm 1 line
    14) is a regular vector element and sums like any other, which is
    exactly what makes the merged result usable for averaging.
    """
    if not blobs:
        raise MergeError("cannot merge zero blocks")
    vectors = []
    length = None
    for blob in blobs:
        if len(blob) % 8 != 0:
            raise MergeError("blob length is not a multiple of 8 (float64)")
        vector = np.frombuffer(blob, dtype=np.float64)
        if length is None:
            length = vector.shape[0]
        elif vector.shape[0] != length:
            raise MergeError(
                f"length mismatch: {vector.shape[0]} != {length}"
            )
        vectors.append(vector)
    total = np.sum(vectors, axis=0)
    return total.tobytes()


register_merger("sum-f64", sum_f64)
