"""Replication across IPFS nodes (IPFS-cluster stand-in).

The paper's availability assumption ("an underlying distributed storage
protocol guarantees data availability, e.g. via IPFS cluster or
incentivized storage") and its future-work suggestion ("simply replicate
[data] through a predetermined number of IPFS nodes … ensure a uniform
allocation of gradients to nodes … based on the hash of the gradients and
the nodes id's") are both implemented here.

Replica placement uses **rendezvous (highest-random-weight) hashing** of
``(cid, node_id)``, which gives the uniform, collusion-resistant
allocation the paper asks for: no party controls which nodes end up
holding a given gradient.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from ..sim import Simulator
from .cid import CID
from .node import IPFSNode, KIND_REPLICATE, REQUEST_OVERHEAD

__all__ = ["rendezvous_rank", "ReplicationCluster"]


def rendezvous_rank(cid: CID, node_names: Sequence[str]) -> List[str]:
    """Node names ordered by descending rendezvous weight for ``cid``."""
    def weight(name: str) -> bytes:
        return hashlib.sha256(cid.digest + name.encode("utf-8")).digest()

    return sorted(node_names, key=weight, reverse=True)


class ReplicationCluster:
    """Keeps every stored object on ``replication_factor`` nodes."""

    def __init__(self, sim: Simulator, nodes: Sequence[IPFSNode],
                 replication_factor: int = 2):
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.sim = sim
        self.nodes = list(nodes)
        self.replication_factor = replication_factor
        self._by_name = {node.name: node for node in self.nodes}
        for node in self.nodes:
            node.cluster = self
        #: Telemetry.
        self.replications = 0

    def replica_targets(self, cid: CID) -> List[str]:
        """The nodes that should hold ``cid``, by rendezvous hashing."""
        ranked = rendezvous_rank(cid, [node.name for node in self.nodes])
        return ranked[: self.replication_factor]

    def schedule_replication(self, origin: IPFSNode, root_cid: CID) -> None:
        """Fan the object out from ``origin`` to its rendezvous targets.

        Called by a node right after serving a put.  Replication happens
        in the background over the emulated network, charging the origin's
        uplink, so availability costs show up in measurements.
        """
        data = origin.load_object(root_cid)
        if data is None:
            return
        for target_name in self.replica_targets(root_cid):
            if target_name == origin.name:
                continue
            target = self._by_name.get(target_name)
            if target is None or not target.online:
                continue
            self.replications += 1
            origin.endpoint.send(
                target_name, KIND_REPLICATE, payload=data,
                size=len(data) + REQUEST_OVERHEAD,
            )

    def live_holders(self, cid: CID) -> List[str]:
        """Names of online nodes currently holding ``cid``."""
        return [
            node.name for node in self.nodes
            if node.online and node.store.has(cid)
        ]
