"""Exception types for the simulated IPFS network."""

from __future__ import annotations

__all__ = ["IPFSError", "NotFoundError", "IntegrityError", "NodeOfflineError",
           "MergeError"]


class IPFSError(Exception):
    """Base class for IPFS failures."""


class NotFoundError(IPFSError):
    """No live provider could produce the requested block."""


class IntegrityError(IPFSError):
    """Retrieved bytes do not hash to the requested CID."""


class NodeOfflineError(IPFSError):
    """The contacted node did not answer within the timeout."""


class MergeError(IPFSError):
    """A merge-and-download request could not be satisfied."""
