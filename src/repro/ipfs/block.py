"""Blocks and chunked objects.

A :class:`Block` is the unit of storage and exchange: raw bytes addressed by
their CID.  Larger logical objects (the paper moves ~1.3 MB gradient
partitions; go-ipfs chunks files at 256 KiB) are represented by
:func:`chunk_object`: leaf blocks plus a root *manifest* block listing the
leaf CIDs in order, so retrieving the root is enough to fetch and
reassemble the object with per-chunk integrity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Tuple

from .cid import CID, compute_cid

__all__ = ["Block", "DEFAULT_CHUNK_SIZE", "chunk_object", "is_manifest",
           "parse_manifest", "reassemble"]

#: go-ipfs default chunker size.
DEFAULT_CHUNK_SIZE = 256 * 1024

_MANIFEST_MAGIC = "repro-ipfs-manifest-v1"


@dataclass(frozen=True)
class Block:
    """Raw bytes plus their content address."""

    data: bytes
    cid: CID = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "cid", compute_cid(self.data))

    @property
    def size(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<Block {self.cid.encode()[:16]}… {self.size}B>"


def chunk_object(data: bytes,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> Tuple[Block, List[Block]]:
    """Split ``data`` into leaf blocks plus a root manifest block.

    Returns ``(root, leaves)``.  Data that fits in one chunk still gets a
    manifest so callers handle one uniform shape.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    leaves = [
        Block(bytes(data[offset:offset + chunk_size]))
        for offset in range(0, len(data), chunk_size)
    ] or [Block(b"")]
    manifest = {
        "magic": _MANIFEST_MAGIC,
        "total_size": len(data),
        "chunks": [leaf.cid.encode() for leaf in leaves],
    }
    root = Block(json.dumps(manifest, sort_keys=True).encode("utf-8"))
    return root, leaves


def parse_manifest(root: Block) -> List[CID]:
    """Extract the ordered leaf CIDs from a manifest block."""
    try:
        manifest = json.loads(root.data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError("not a manifest block") from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != _MANIFEST_MAGIC:
        raise ValueError("not a manifest block")
    return [CID.decode(text) for text in manifest["chunks"]]


def is_manifest(block: Block) -> bool:
    """True if ``block`` parses as a chunk manifest."""
    try:
        parse_manifest(block)
        return True
    except ValueError:
        return False


def reassemble(root: Block, leaves: List[Block]) -> bytes:
    """Rebuild the original object from its manifest and leaf blocks.

    ``leaves`` may be in any order; they are matched by CID.  Raises
    ``ValueError`` on a missing or extraneous leaf.
    """
    wanted = parse_manifest(root)
    by_cid = {leaf.cid: leaf for leaf in leaves}
    missing = [cid for cid in wanted if cid not in by_cid]
    if missing:
        raise ValueError(f"missing {len(missing)} leaf block(s)")
    return b"".join(by_cid[cid].data for cid in wanted)
