"""Content routing: a simulated DHT of provider records.

The real IPFS network resolves "who has CID x?" through a Kademlia DHT
with O(log n) hop lookups.  We model the outcome — a provider-record table
with a configurable lookup delay — because the protocol only depends on
*finding* providers and on the latency of doing so, not on routing-table
internals.  Records carry an expiry (real provider records are
re-published periodically) so tests can exercise staleness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs.events import DhtLookup
from ..sim import Simulator
from .cid import CID

__all__ = ["ProviderRecord", "DHT"]


@dataclass(frozen=True)
class ProviderRecord:
    """One advertisement: ``node`` had the block at ``published_at``."""

    cid: CID
    node: str
    published_at: float
    expires_at: float


class DHT:
    """A global provider-record table with simulated lookup latency."""

    def __init__(self, sim: Simulator, lookup_delay: float = 0.05,
                 record_ttl: float = math.inf, seed: int = 0):
        """
        Parameters
        ----------
        sim:
            Simulation kernel (for the clock and lookup delays).
        lookup_delay:
            Simulated seconds per :meth:`find_providers` query (a DHT walk
            costs a few round trips even on a fast network).
        record_ttl:
            Lifetime of a provider record; ``inf`` disables expiry.
        seed:
            Seed for the provider-shuffling RNG, for reproducible runs.
        """
        if lookup_delay < 0:
            raise ValueError("lookup_delay must be non-negative")
        self.sim = sim
        self.lookup_delay = lookup_delay
        self.record_ttl = record_ttl
        self._records: Dict[CID, Dict[str, ProviderRecord]] = {}
        self._rng = random.Random(seed)
        #: Telemetry.
        self.lookups = 0
        self.provides = 0

    def provide(self, cid: CID, node: str) -> ProviderRecord:
        """Advertise that ``node`` stores ``cid`` (instant, local op)."""
        record = ProviderRecord(
            cid=cid,
            node=node,
            published_at=self.sim.now,
            expires_at=self.sim.now + self.record_ttl,
        )
        self._records.setdefault(cid, {})[node] = record
        self.provides += 1
        return record

    def unprovide(self, cid: CID, node: str) -> None:
        """Withdraw an advertisement (e.g. after garbage collection)."""
        providers = self._records.get(cid)
        if providers:
            providers.pop(node, None)
            if not providers:
                del self._records[cid]

    def providers_snapshot(self, cid: CID) -> List[str]:
        """Current live providers without charging lookup delay (tests)."""
        providers = self._records.get(cid, {})
        now = self.sim.now
        return sorted(
            record.node for record in providers.values()
            if record.expires_at > now
        )

    def find_providers(self, cid: CID, limit: Optional[int] = None,
                       querier: Optional[str] = None):
        """Process generator: resolve ``cid`` to a shuffled provider list.

        Usage: ``providers = yield from dht.find_providers(cid)``.
        Charges :attr:`lookup_delay` of simulated time per call.
        ``querier`` names the asking host; this base implementation
        ignores it (the Kademlia subclass charges its route).
        """
        self.lookups += 1
        started = self.sim.now
        if self.lookup_delay > 0:
            yield self.sim.timeout(self.lookup_delay)
        names = self.providers_snapshot(cid)
        self._rng.shuffle(names)
        if limit is not None:
            names = names[:limit]
        bus = self.sim.bus
        if bus.wants(DhtLookup):
            bus.publish(DhtLookup(
                at=self.sim.now, querier=querier, cid=cid,
                providers=len(names), hops=0, started_at=started,
            ))
        return names
