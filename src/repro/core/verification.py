"""Verifiable aggregation: binding partitions to Pedersen commitments.

Implements Sec. IV: trainers commit to each (quantized) gradient partition
including its averaging counter; the directory accumulates commitment
products per partition (and per aggregator's trainer subset); aggregates
are accepted only if their decoded values open the accumulated commitment.

Quantization matters: commitments live over Z_n, so trainers *upload the
quantized values they committed to*.  Sums of fixed-point float64 values
are exact, so the aggregated bytes decode to exactly the sum of the
committed scalars and the homomorphic check is equality, not tolerance.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..crypto import (
    Commitment,
    CurveParams,
    FixedPointCodec,
    PedersenParams,
    curve_by_name,
)
from .partition import decode_partition, encode_partition

__all__ = ["PartitionCommitter", "CommitmentCostModel"]


class PartitionCommitter:
    """Commitment machinery for partitions of a fixed length."""

    def __init__(self, partition_len: int, curve: str = "secp256k1",
                 fractional_bits: int = 16):
        if partition_len < 1:
            raise ValueError("partition_len must be >= 1")
        self.partition_len = partition_len
        self.curve: CurveParams = curve_by_name(curve)
        self.codec = FixedPointCodec(
            order=self.curve.n, fractional_bits=fractional_bits
        )
        # One extra generator for the appended averaging counter.
        self.params = PedersenParams.setup(self.curve, partition_len + 1)
        #: Optional :class:`~repro.obs.profiling.HostProfiler` hook,
        #: wired by ``HostProfiler.attach``; attributes commit/verify
        #: (and the inner multi-exponentiation) wall time to the actor
        #: role whose kernel dispatch frame is active.
        self.profiler = None

    # -- trainer side -------------------------------------------------------------

    def encode_and_commit(
        self, values: np.ndarray, counter: float = 1.0
    ) -> Tuple[bytes, Commitment]:
        """Quantize, wire-encode and commit one partition.

        Returns ``(blob, commitment)`` where the commitment binds exactly
        the values carried by ``blob`` (including the counter).
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape[0] != self.partition_len:
            raise ValueError(
                f"expected {self.partition_len} values, got {values.shape[0]}"
            )
        profiler = self.profiler
        frame = (profiler.begin("crypto", "commit", profiler.current_role())
                 if profiler is not None else None)
        try:
            quantized = self.codec.quantize(values)
            blob = encode_partition(quantized, counter)
            scalars = self.codec.encode(quantized) + [
                self.codec.encode_value(counter)
            ]
            return blob, self._commit(scalars)
        finally:
            if frame is not None:
                profiler.end(frame)

    def _commit(self, scalars) -> Commitment:
        """The Pedersen multi-exponentiation, under its own scope."""
        profiler = self.profiler
        if profiler is None:
            return self.params.commit(scalars)
        frame = profiler.begin("crypto", "multiexp", profiler.current_role())
        try:
            return self.params.commit(scalars)
        finally:
            profiler.end(frame)

    # -- verifier side ----------------------------------------------------------------

    def open_blob(self, blob: bytes) -> Tuple[Commitment, float]:
        """Recompute ``(commitment, averaging counter)`` of a blob.

        One decode pass serves both the equality check and the audit
        trail: the counter is the number of gradients summed into the
        blob, which is exactly the signal forensics needs to tell a
        dropped/lazy aggregate (counter < contributors) from an altered
        one (counter intact, commitment mismatched).
        """
        profiler = self.profiler
        frame = (profiler.begin("crypto", "verify", profiler.current_role())
                 if profiler is not None else None)
        try:
            values, counter = decode_partition(blob)
            scalars = self.codec.encode(values) + [
                self.codec.encode_value(counter)
            ]
            return self._commit(scalars), float(counter)
        finally:
            if frame is not None:
                profiler.end(frame)

    def commitment_of_blob(self, blob: bytes) -> Commitment:
        """Recompute the commitment that binds an encoded partition."""
        commitment, _counter = self.open_blob(blob)
        return commitment

    def verify_blob(self, blob: bytes, expected: Commitment) -> bool:
        """Does ``blob`` open ``expected``?  The directory's check on
        global updates; also the aggregator's check on peers' partial
        updates and on merged downloads."""
        return self.commitment_of_blob(blob) == expected

    @staticmethod
    def accumulate(commitments: Sequence[Commitment],
                   curve: CurveParams) -> Commitment:
        """Product of commitments: commits to the sum of the pre-images."""
        return Commitment.product(list(commitments), curve)


class CommitmentCostModel:
    """Simulated-time cost of committing at model scale.

    Real commitments are always computed (the protocol's checks are
    genuine); this model additionally charges simulated seconds so runs
    with millions of parameters exhibit the Fig. 3 bottleneck without
    paying the wall-clock cost of a full-size multi-exponentiation.
    """

    def __init__(self, seconds_per_param: Optional[float]):
        if seconds_per_param is not None and seconds_per_param < 0:
            raise ValueError("seconds_per_param must be non-negative")
        self.seconds_per_param = seconds_per_param

    def commit_delay(self, num_params: int) -> float:
        """Simulated seconds to charge for committing ``num_params`` values."""
        if self.seconds_per_param is None:
            return 0.0
        return self.seconds_per_param * num_params

    def verify_delay(self, num_params: int) -> float:
        """Verification recomputes the commitment: same cost shape."""
        return self.commit_delay(num_params)
