"""The decentralized FL protocol (the paper's contribution).

Public surface:

- :class:`ProtocolConfig` — task parameters.
- :class:`FLSession` — build a deployment and run training rounds.
- :class:`Trainer` / :class:`Aggregator` / :class:`Bootstrapper` /
  :class:`DirectoryService` — the protocol roles.
- :class:`Address`, :class:`ModelPartitioner`, :class:`IterationSchedule`.
- :class:`CohortPlan` — scale a session past its exact trainer sample by
  modeling the remaining population statistically per cohort.
- :class:`DirectoryProfile` — deploy the directory as N consistent-hash
  shards (:class:`ShardedDirectory` server group, :class:`ShardRouter`
  client); :class:`Directory` is the abstract protocol both the classic
  client and the router implement.
- :class:`PartitionCommitter` — verifiable-aggregation crypto glue.
- adversary behaviours: :class:`DropGradientsBehavior`,
  :class:`AlterUpdateBehavior`, :class:`LazyBehavior`.
- telemetry: :class:`IterationMetrics`, :class:`SessionMetrics`.
"""

from .addressing import Address, GRADIENT, PARTIAL_UPDATE, UPDATE
from .adversary import (
    AggregatorBehavior,
    AlterUpdateBehavior,
    DropGradientsBehavior,
    HonestBehavior,
    LazyBehavior,
    ReplayUpdateBehavior,
)
from .aggregator import Aggregator, sync_topic
from .bootstrapper import (
    Assignment,
    Bootstrapper,
    build_assignment,
    optimal_provider_count,
)
from .cohort import CohortCoordinator, CohortPlan
from .config import ProtocolConfig
from .directory import (
    Directory,
    DirectoryClient,
    DirectoryEntry,
    DirectoryService,
    RejectionRecord,
)
from .dirshard import (
    DirectoryProfile,
    ShardMap,
    ShardRouter,
    ShardedDirectory,
    directory_key,
)
from .offload import (
    SnapshotPublisher,
    SnapshotReader,
    accumulate_cids,
    decode_snapshot,
    encode_snapshot,
)
from .partition import (
    ModelPartitioner,
    decode_partition,
    encode_partition,
    sum_encoded_partitions,
)
from .schedule import IterationSchedule
from .session import FLSession
from .telemetry import IterationMetrics, SessionMetrics
from .trainer import Trainer
from .verification import CommitmentCostModel, PartitionCommitter

__all__ = [
    "Address",
    "Aggregator",
    "AggregatorBehavior",
    "AlterUpdateBehavior",
    "Assignment",
    "Bootstrapper",
    "CohortCoordinator",
    "CohortPlan",
    "CommitmentCostModel",
    "Directory",
    "DirectoryClient",
    "DirectoryEntry",
    "DirectoryProfile",
    "DirectoryService",
    "DropGradientsBehavior",
    "FLSession",
    "GRADIENT",
    "HonestBehavior",
    "IterationMetrics",
    "IterationSchedule",
    "LazyBehavior",
    "ModelPartitioner",
    "PARTIAL_UPDATE",
    "PartitionCommitter",
    "ProtocolConfig",
    "RejectionRecord",
    "ReplayUpdateBehavior",
    "SessionMetrics",
    "ShardMap",
    "ShardRouter",
    "ShardedDirectory",
    "SnapshotPublisher",
    "SnapshotReader",
    "Trainer",
    "accumulate_cids",
    "directory_key",
    "decode_snapshot",
    "encode_snapshot",
    "UPDATE",
    "build_assignment",
    "decode_partition",
    "encode_partition",
    "optimal_provider_count",
    "sum_encoded_partitions",
    "sync_topic",
]
