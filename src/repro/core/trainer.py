"""The trainer role (Algorithm 1, ``TRAINER``).

Per iteration a trainer:

1. trains the model on its local shard, producing an update vector,
2. splits it into partitions, appends the averaging counter 1, commits
   (verifiable mode) and uploads each partition to its designated IPFS
   node, registering the CID (plus commitment) with the directory,
3. polls the directory for the global update of every partition,
   downloads each, divides by the summed counter, and installs the new
   model.

If the training deadline ``t_train`` passes before its uploads finish,
the trainer aborts the iteration (Algorithm 1 line 10).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..faults.retry import RetryExhaustedError, RetryPolicy
from ..ipfs import DHT, IPFSClient, IPFSError
from ..ml import Dataset, Model, compute_gradient, evaluate_model, \
    local_update
from ..net import Transport
from ..obs.events import (
    CommitmentComputed,
    TrainerCompleted,
    TrainingEvaluated,
    UploadCompleted,
    VerificationFailed,
)
from ..obs.profiling import SYSTEM_WALL_CLOCK
from ..sim import Interrupt, Simulator
from .addressing import Address, GRADIENT, UPDATE
from .bootstrapper import Assignment
from .config import ProtocolConfig
from .directory import DirectoryClient
from .partition import ModelPartitioner, decode_partition, encode_partition
from .schedule import IterationSchedule
from .verification import CommitmentCostModel, PartitionCommitter

__all__ = ["Trainer"]


class Trainer:
    """One trainer participant."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        transport: Transport,
        dht: DHT,
        config: ProtocolConfig,
        assignment: Assignment,
        partitioner: ModelPartitioner,
        model: Model,
        dataset: Dataset,
        committers: Optional[Dict[int, PartitionCommitter]] = None,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        directory_request_timeout: Optional[float] = None,
        ipfs_request_timeout: float = 120.0,
        directory_factory=None,
    ):
        self.name = name
        self.sim = sim
        self.config = config
        self.assignment = assignment
        self.partitioner = partitioner
        self.model = model
        self.dataset = dataset
        self.committers = committers or {}
        self.seed = seed
        self.ipfs = IPFSClient(name, transport, dht,
                               request_timeout=ipfs_request_timeout,
                               chunk_size=config.chunk_size,
                               retry=retry)
        #: Directory access behind the abstract protocol: the classic
        #: well-known server client by default, or whatever the session's
        #: factory builds (e.g. a sharded router).
        if directory_factory is None:
            self.directory = DirectoryClient(
                name, transport, retry=retry,
                request_timeout=directory_request_timeout,
            )
        else:
            self.directory = directory_factory(
                name, transport, retry=retry,
                request_timeout=directory_request_timeout,
            )
        self.cost_model = CommitmentCostModel(config.commit_seconds_per_param)
        #: Wall-clock source for the ``CommitmentComputed.seconds``
        #: measurement; injectable so tests can fake wall time.
        self.wall_clock = SYSTEM_WALL_CLOCK
        #: Per-trainer local compute time; defaults to the config value,
        #: override to model stragglers.
        self.local_train_seconds = config.local_train_seconds
        #: Iterations this trainer finished with an installed update.
        self.completed_iterations = 0
        #: Updates this trainer itself rejected (trainer verification).
        self.rejected_updates = 0
        #: Child processes of the current round (upload fan-out).  The
        #: session's supervisor interrupts any still alive when this
        #: trainer is crashed by fault injection.
        self.active_children: List = []
        self._child_errors: List[Exception] = []

    def _spawn(self, generator, name: str):
        """Spawn a guarded child process for the current round.

        Children never *fail* their process event (a same-timestamp pair
        of failures would escape the parent's ``all_of``): an
        :class:`Interrupt` ends the child silently, and a
        :class:`RetryExhaustedError` is recorded for the parent to
        re-raise after the join.
        """
        process = self.sim.process(self._guard(generator), name=name)
        self.active_children.append(process)
        return process

    def _guard(self, generator):
        try:
            yield from generator
        except Interrupt:
            pass
        except RetryExhaustedError as exc:
            self._child_errors.append(exc)

    # -- local learning -----------------------------------------------------------

    def _compute_update_vector(self, iteration: int) -> np.ndarray:
        """The flat vector to upload, per the configured update mode."""
        profiler = self.sim.profiler
        frame = (profiler.begin("ml", "train", "trainer")
                 if profiler is not None else None)
        try:
            if self.config.update_mode == "params":
                delta = local_update(
                    self.model, self.dataset, self.config.train,
                    seed=self.seed + 7919 * iteration,
                )
                return self.model.get_params() + delta
            return compute_gradient(self.model, self.dataset)
        finally:
            if frame is not None:
                profiler.end(frame)

    def _verify_update(self, partition_id: int, iteration: int,
                       blob: bytes):
        """Check a downloaded update against the accumulated commitment.

        Delegated verification (paper Sec. IV: "can be performed by any
        participant").  Off unless ``config.trainer_verification``.
        """
        if not (self.config.verifiable
                and self.config.trainer_verification):
            return True
        committer = self.committers.get(partition_id)
        if committer is None:
            return True
        expected, count = yield from self.directory.accumulated(
            partition_id, iteration
        )
        if expected is None or count == 0:
            return False
        delay = self.cost_model.verify_delay(committer.partition_len + 1)
        if delay > 0:
            yield self.sim.timeout(delay)
        return committer.verify_blob(blob, expected)

    def _install_update(self, averaged: np.ndarray) -> None:
        if self.config.update_mode == "params":
            self.model.set_params(averaged)
        else:
            self.model.set_params(
                self.model.get_params()
                - self.config.learning_rate * averaged
            )

    # -- the per-iteration process ------------------------------------------------------

    def run_iteration(self, schedule: IterationSchedule):
        """Process generator executing one round for this trainer.

        Reports outcomes (commitment cost, upload delay, completion,
        rejected updates) as :mod:`repro.obs` events on ``sim.bus``.
        """
        bus = self.sim.bus
        self.active_children = []
        self._child_errors = []
        if self.config.trainer_jitter > 0:
            # Deterministic per-(trainer, round) arrival offset.
            rng = np.random.default_rng(
                self.seed + 104729 * schedule.iteration
            )
            yield self.sim.timeout(
                float(rng.uniform(0.0, self.config.trainer_jitter))
            )
        if self.local_train_seconds > 0:
            yield self.sim.timeout(self.local_train_seconds)
        vector = self._compute_update_vector(schedule.iteration)
        if self.sim.now > schedule.t_train:
            return  # Abort: did not train in time (Algorithm 1 line 10).
        if bus.wants(TrainingEvaluated):
            # Convergence telemetry: pure evaluation on the local shard
            # (no RNG, no sim interaction), paid only when observed.
            loss, acc = evaluate_model(self.model, self.dataset)
            bus.publish(TrainingEvaluated(
                at=self.sim.now, iteration=schedule.iteration,
                trainer=self.name, loss=loss, accuracy=acc,
                samples=len(self.dataset.y),
            ))

        parts = self.partitioner.split(vector)

        # Commit sequentially (CPU-bound work on one core), then upload all
        # partitions concurrently and register each CID as its put
        # completes.
        prepared = []
        for partition_id, values in enumerate(parts):
            committer = self.committers.get(partition_id)
            if self.config.verifiable and committer is not None:
                wall_start = self.wall_clock.seconds()
                blob, commitment = committer.encode_and_commit(values)
                if bus.wants(CommitmentComputed):
                    bus.publish(CommitmentComputed(
                        at=self.sim.now, iteration=schedule.iteration,
                        participant=self.name,
                        seconds=self.wall_clock.seconds() - wall_start,
                    ))
                delay = self.cost_model.commit_delay(len(values) + 1)
                if delay > 0:
                    yield self.sim.timeout(delay)
            else:
                blob, commitment = encode_partition(values, 1.0), None
            prepared.append((partition_id, blob, commitment))

        upload_delays = []
        failures = []
        batched_records = []

        def upload_one(partition_id, blob, commitment):
            # With merge-and-download, the upload target is fixed ("a
            # trainer ... is required to upload its gradients to a node
            # from P_ij"); otherwise any live node will do, so fall back
            # on a timeout.
            assigned = self.assignment.upload_node[(self.name, partition_id)]
            candidates = [assigned]
            if not self.config.merge_and_download:
                candidates += [node for node
                               in self.assignment.storage_nodes
                               if node != assigned]
            put_started = self.sim.now
            cid = None
            for node in candidates:
                try:
                    cid = yield from self.ipfs.put(blob, node=node)
                    break
                except IPFSError:
                    continue
            if cid is None:
                failures.append(partition_id)
                return
            upload_delays.append(self.sim.now - put_started)
            address = Address(
                uploader_id=self.name, partition_id=partition_id,
                iteration=schedule.iteration, kind=GRADIENT,
            )
            if self.config.batch_registration:
                batched_records.append({
                    "address": address, "cid": cid,
                    "commitment": commitment,
                })
            else:
                ack = yield from self.directory.register(
                    address, cid, commitment
                )
                if not ack.get("accepted"):
                    failures.append(partition_id)  # cutoff: round missed

        uploads_started = self.sim.now
        uploads = [
            self._spawn(
                upload_one(partition_id, blob, commitment),
                name=f"{self.name}:up:p{partition_id}",
            )
            for partition_id, blob, commitment in prepared
        ]
        yield self.sim.all_of(uploads)
        if self._child_errors:
            raise self._child_errors[0]
        if failures:
            return  # a storage node died; abort this round
        if batched_records:
            # One directory round-trip for all partitions (Sec. VI).
            ack = yield from self.directory.register_batch(batched_records)
            if not ack.get("accepted"):
                return  # cutoff or bad accumulation: round missed
        if self.sim.now > schedule.t_train:
            return  # missed the upload deadline
        if upload_delays and bus.wants(UploadCompleted):
            bus.publish(UploadCompleted(
                at=self.sim.now, iteration=schedule.iteration,
                trainer=self.name,
                delay=sum(upload_delays) / len(upload_delays),
                started_at=uploads_started,
            ))

        # -- retrieve the updated partitions ------------------------------------
        updated_parts = []
        for partition_id in range(self.partitioner.num_partitions):
            cid = None
            while self.sim.now < schedule.t_sync:
                results = yield from self.directory.lookup(
                    partition_id, schedule.iteration, UPDATE
                )
                if results:
                    cid = results[0]["cid"]
                    break
                remaining = schedule.remaining_sync(self.sim.now)
                if remaining <= 0:
                    break
                yield self.sim.timeout(
                    min(self.config.poll_interval, remaining)
                )
            if cid is None:
                return  # iteration failed for this trainer
            try:
                blob = yield from self.ipfs.get(cid)
            except IPFSError:
                return
            verified = yield from self._verify_update(
                partition_id, schedule.iteration, blob
            )
            if not verified:
                self.rejected_updates += 1
                if bus.wants(VerificationFailed):
                    bus.publish(VerificationFailed(
                        at=self.sim.now, iteration=schedule.iteration,
                        label=(f"trainer-rejected/p{partition_id}"
                               f"/i{schedule.iteration}/{self.name}"),
                        scope="trainer",
                        partition_id=partition_id,
                        reason="downloaded update does not open the "
                               "accumulated commitment",
                    ))
                return
            values, counter = decode_partition(blob)
            if counter <= 0:
                return
            updated_parts.append(values / counter)

        self._install_update(self.partitioner.join(updated_parts))
        self.completed_iterations += 1
        if bus.wants(TrainerCompleted):
            bus.publish(TrainerCompleted(
                at=self.sim.now, iteration=schedule.iteration,
                trainer=self.name,
            ))
