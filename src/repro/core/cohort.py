"""Cohort abstraction: statistical modeling of the unsampled trainer mass.

Scaling the simulation to 10^4-10^5 trainers cannot mean 10^5 generator
processes, 10^5 model clones and 4x10^5 individual uploads per round —
that is O(n) in exactly the quantities the paper's Sec. VI argues grow
linearly.  Instead a session simulates a *seeded sample* of trainers
exactly (full processes, transfers, training — everything the paper's
figures measure per participant) while the remaining population is
modeled *statistically per cohort*:

- each cohort gets one network host whose link capacity is its member
  count times the per-trainer bandwidth, so the members' aggregate link
  load still contends with the exact participants' flows;
- each round, the cohort charges the directory with its members'
  registration and lookup volume via bulk ``dir.register.cohort`` /
  ``dir.lookup.cohort`` messages (``register_count``/``lookup_count``
  and the serialized processing delay scale with the *population*,
  message count with the *cohort count*);
- the members' gradient uploads and update downloads move as one
  aggregate flow per cohort, sized members x bytes-per-trainer.

Modeled members contribute load, not protocol state: their gradients
never enter aggregation and their models are not materialized.  A plan
whose population equals the sampled trainer count is *exact mode* — no
cohort machinery is constructed at all and the session is byte-identical
to a plain per-trainer run (there is a fingerprint-identity test for
this).  See ``docs/SCALING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..net.bandwidth import TransferAbortedError
from ..obs.events import CohortLoadApplied
from .directory import Directory, DirectoryClient
from .schedule import IterationSchedule

__all__ = ["CohortPlan", "CohortCoordinator"]


@dataclass(frozen=True)
class CohortPlan:
    """How a session scales beyond its exactly-simulated trainers.

    ``population`` is the total trainer count being modeled; the
    session's datasets define the exactly-simulated sample, and the
    remainder (``population - len(datasets)``) is split across
    ``cohorts`` statistical cohorts.  ``population`` equal to the sample
    size is exact mode: no cohorts are built.
    """

    population: int
    cohorts: int = 16
    seed: int = 0

    def __post_init__(self):
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if self.cohorts < 1:
            raise ValueError("cohorts must be >= 1")

    def modeled_trainers(self, sampled: int) -> int:
        """How many trainers are statistically modeled (never negative)."""
        if self.population < sampled:
            raise ValueError(
                f"population {self.population} is smaller than the "
                f"{sampled} exactly-simulated trainers"
            )
        return self.population - sampled

    def member_counts(self, sampled: int) -> List[int]:
        """Cohort sizes for the modeled remainder (empty in exact mode).

        The remainder is spread as evenly as possible over at most
        ``cohorts`` groups; fewer groups when there are fewer modeled
        trainers than cohorts.
        """
        modeled = self.modeled_trainers(sampled)
        if modeled == 0:
            return []
        groups = min(self.cohorts, modeled)
        base, extra = divmod(modeled, groups)
        return [base + (1 if index < extra else 0)
                for index in range(groups)]


class CohortCoordinator:
    """One statistical cohort: a host plus a per-round load process."""

    def __init__(self, name: str, sim, transport, network,
                 config, members: int, upload_bytes_per_trainer: float,
                 download_bytes_per_trainer: float, storage_node: str,
                 directory_name: str = "directory", seed: int = 0,
                 directory: Optional[Directory] = None):
        self.name = name
        self.sim = sim
        self.network = network
        self.config = config
        self.members = members
        self.upload_bytes = float(upload_bytes_per_trainer)
        self.download_bytes = float(download_bytes_per_trainer)
        self.storage_node = storage_node
        self.directory_name = directory_name
        self.seed = seed
        self.endpoint = transport.endpoint(name)
        #: Directory access behind the abstract protocol.  Built bare
        #: (no retry policy, no timeout): cohort bulk load either lands
        #: or the cohort degrades silently, matching the pre-interface
        #: direct sends byte for byte.
        self.directory: Directory = (
            directory if directory is not None
            else DirectoryClient(name, transport,
                                 directory_name=directory_name)
        )
        #: Rounds whose full load (register + upload + lookup + download)
        #: was applied.
        self.completed_iterations = 0

    def run_iteration(self, schedule: IterationSchedule):
        """Apply one round of the cohort's aggregate load (generator).

        Mirrors the exact trainer's round shape — jitter + local
        training, registration, upload, wait for the sync phase, lookup,
        download — with every step carrying members-fold load in one
        message or flow.
        """
        config = self.config
        rng = np.random.default_rng(
            self.seed + 104729 * schedule.iteration
        )
        delay = 0.0
        if config.trainer_jitter > 0:
            delay += float(rng.uniform(0.0, config.trainer_jitter))
        delay += config.local_train_seconds
        if delay > 0:
            yield self.sim.timeout(delay)
        if self.sim.now > schedule.t_train:
            return  # the whole cohort missed the round's upload window
        registrations = self.members * config.num_partitions
        try:
            yield from self.directory.register_cohort(
                iteration=schedule.iteration, members=self.members,
                num_partitions=config.num_partitions, cohort=self.name,
            )
            yield self.network.transfer(
                self.name, self.storage_node,
                self.members * self.upload_bytes,
            )
            remaining = schedule.remaining_train(self.sim.now)
            if remaining > 0:
                yield self.sim.timeout(remaining)
            lookups = self.members * config.num_partitions
            yield from self.directory.lookup_cohort(
                iteration=schedule.iteration, members=self.members,
                num_partitions=config.num_partitions, cohort=self.name,
            )
            yield self.network.transfer(
                self.storage_node, self.name,
                self.members * self.download_bytes,
            )
        except TransferAbortedError:
            return  # infrastructure fault: the cohort degrades silently
        self.completed_iterations += 1
        bus = self.sim.bus
        if bus.wants(CohortLoadApplied) and bus.admits(
                CohortLoadApplied, schedule.iteration, self.name):
            bus.publish(CohortLoadApplied(
                at=self.sim.now, iteration=schedule.iteration,
                cohort=self.name, members=self.members,
                registrations=registrations, lookups=lookups,
                bytes_up=self.members * self.upload_bytes,
                bytes_down=self.members * self.download_bytes,
            ))
