"""Telemetry: the measurements the paper's evaluation reports.

The paper measures (Sec. V):

- *upload delay* — trainer put until the IPFS store acknowledgment,
- *aggregation delay* — first gradient hash written to the directory
  until all uploaded gradients are aggregated,
- *synchronization delay* — multi-aggregator partial-update exchange,
- *data received per aggregator per iteration*,
- commitment computation/verification time.

Protocol participants publish :mod:`repro.obs` events; the session's
:class:`~repro.obs.telemetry.TelemetryCollector` folds the event stream
into these dataclasses, which remain the stable analysis-facing API.
Archived runs round-trip through :meth:`SessionMetrics.to_json` /
:meth:`SessionMetrics.from_json`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["IterationMetrics", "SessionMetrics"]


@dataclass
class IterationMetrics:
    """Everything measured during one training round."""

    iteration: int
    started_at: float = 0.0
    finished_at: float = 0.0
    #: trainer -> seconds from gradient put to store ack (mean over
    #: partitions).
    upload_delays: Dict[str, float] = field(default_factory=dict)
    #: Simulated time the first gradient CID reached the directory.
    first_gradient_at: Optional[float] = None
    #: aggregator -> time it finished aggregating its trainers' gradients.
    gradients_aggregated_at: Dict[str, float] = field(default_factory=dict)
    #: aggregator -> time its (or its partition's) global update was
    #: registered.
    update_registered_at: Dict[str, float] = field(default_factory=dict)
    #: aggregator -> bytes downloaded this iteration.
    bytes_received: Dict[str, float] = field(default_factory=dict)
    #: aggregator -> seconds spent in the synchronization phase.
    sync_delays: Dict[str, float] = field(default_factory=dict)
    #: Commitment computation seconds per participant (verifiable mode).
    commit_seconds: Dict[str, float] = field(default_factory=dict)
    #: Verification failures observed (addresses as strings).
    verification_failures: List[str] = field(default_factory=list)
    #: Trainers that completed the round with an updated model.
    trainers_completed: List[str] = field(default_factory=list)
    #: Aggregator takeovers performed (dead aggregator ids).
    takeovers: List[str] = field(default_factory=list)
    #: participant -> why it dropped out of this round (crashed,
    #: retries exhausted, offline fault window, missed deadline).
    degraded: Dict[str, str] = field(default_factory=dict)

    # -- derived quantities -----------------------------------------------------

    @property
    def aggregation_delay(self) -> Optional[float]:
        """First gradient registration -> all aggregators done (paper's
        definition of the gradients-aggregation delay)."""
        if self.first_gradient_at is None or not self.gradients_aggregated_at:
            return None
        return max(self.gradients_aggregated_at.values()) - self.first_gradient_at

    @property
    def sync_delay(self) -> Optional[float]:
        """Mean synchronization time across aggregators."""
        if not self.sync_delays:
            return None
        return sum(self.sync_delays.values()) / len(self.sync_delays)

    @property
    def total_aggregation_delay(self) -> Optional[float]:
        """First gradient registration -> last global update registered
        (the Fig. 2 'total aggregation delay')."""
        if self.first_gradient_at is None or not self.update_registered_at:
            return None
        return max(self.update_registered_at.values()) - self.first_gradient_at

    @property
    def collection_time(self) -> Optional[float]:
        """Iteration start -> all aggregators hold all their gradients.

        The system-comparable form of the aggregation delay: unlike
        :attr:`aggregation_delay` it does not depend on when the first
        registration lands, so it is meaningful for the direct baseline
        (which has no directory) too."""
        if not self.gradients_aggregated_at:
            return None
        return max(self.gradients_aggregated_at.values()) - self.started_at

    @property
    def end_to_end_delay(self) -> Optional[float]:
        """Iteration start -> last global update registered: the combined
        objective the provider-count trade-off (Fig. 1) optimizes."""
        if not self.update_registered_at:
            return None
        return max(self.update_registered_at.values()) - self.started_at

    @property
    def mean_upload_delay(self) -> Optional[float]:
        if not self.upload_delays:
            return None
        return sum(self.upload_delays.values()) / len(self.upload_delays)

    @property
    def mean_bytes_received(self) -> Optional[float]:
        if not self.bytes_received:
            return None
        return sum(self.bytes_received.values()) / len(self.bytes_received)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (raw fields + derived values).

        ``degraded`` appears only when non-empty, keeping honest-run
        snapshots identical to those captured before fault injection
        existed.
        """
        snapshot = self._base_dict()
        if self.degraded:
            snapshot["degraded"] = dict(self.degraded)
        return snapshot

    def _base_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration": self.duration,
            "upload_delays": dict(self.upload_delays),
            "first_gradient_at": self.first_gradient_at,
            "gradients_aggregated_at": dict(self.gradients_aggregated_at),
            "update_registered_at": dict(self.update_registered_at),
            "bytes_received": dict(self.bytes_received),
            "sync_delays": dict(self.sync_delays),
            "commit_seconds": dict(self.commit_seconds),
            "verification_failures": list(self.verification_failures),
            "trainers_completed": list(self.trainers_completed),
            "takeovers": list(self.takeovers),
            "aggregation_delay": self.aggregation_delay,
            "sync_delay": self.sync_delay,
            "total_aggregation_delay": self.total_aggregation_delay,
            "collection_time": self.collection_time,
            "end_to_end_delay": self.end_to_end_delay,
            "mean_upload_delay": self.mean_upload_delay,
            "mean_bytes_received": self.mean_bytes_received,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationMetrics":
        """Rebuild from a :meth:`to_dict` snapshot.

        Derived values present in the snapshot are ignored — they are
        recomputed from the raw fields, so a loaded run answers every
        property exactly as the live one did.
        """
        return cls(
            iteration=data["iteration"],
            started_at=data.get("started_at", 0.0),
            finished_at=data.get("finished_at", 0.0),
            upload_delays=dict(data.get("upload_delays", {})),
            first_gradient_at=data.get("first_gradient_at"),
            gradients_aggregated_at=dict(
                data.get("gradients_aggregated_at", {})),
            update_registered_at=dict(
                data.get("update_registered_at", {})),
            bytes_received=dict(data.get("bytes_received", {})),
            sync_delays=dict(data.get("sync_delays", {})),
            commit_seconds=dict(data.get("commit_seconds", {})),
            verification_failures=list(
                data.get("verification_failures", [])),
            trainers_completed=list(data.get("trainers_completed", [])),
            takeovers=list(data.get("takeovers", [])),
            degraded=dict(data.get("degraded", {})),
        )


@dataclass
class SessionMetrics:
    """Per-iteration metrics for a whole run."""

    iterations: List[IterationMetrics] = field(default_factory=list)

    def latest(self) -> IterationMetrics:
        if not self.iterations:
            raise IndexError("no iterations recorded")
        return self.iterations[-1]

    def mean_over_iterations(self, attribute: str) -> Optional[float]:
        """Average a derived property over recorded iterations."""
        values = [
            getattr(metrics, attribute) for metrics in self.iterations
        ]
        values = [value for value in values if value is not None]
        if not values:
            return None
        return sum(values) / len(values)

    def to_dict(self) -> dict:
        """JSON-serializable form of the whole run."""
        return {
            "iterations": [m.to_dict() for m in self.iterations],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the run's telemetry for archival/plotting."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "SessionMetrics":
        """Rebuild a run from a :meth:`to_dict` snapshot."""
        return cls(iterations=[
            IterationMetrics.from_dict(entry)
            for entry in data.get("iterations", [])
        ])

    @classmethod
    def from_json(cls, text: str) -> "SessionMetrics":
        """Load an archived run; inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
