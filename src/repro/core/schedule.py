"""Per-iteration schedules.

"In each iteration (training round), participants receive a schedule that
contains the iteration (number) of the learning process and two UTC
timestamps, the t_train and t_synch" (Sec. III-D).  Timestamps here are
absolute simulated times.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IterationSchedule"]


@dataclass(frozen=True)
class IterationSchedule:
    """The deadlines of one training round (absolute simulated seconds)."""

    iteration: int
    start: float
    #: Trainers must have uploaded their gradients by this time.
    t_train: float
    #: The iteration must have produced global updates by this time.
    t_sync: float

    def __post_init__(self):
        if not self.start <= self.t_train < self.t_sync:
            raise ValueError("need start <= t_train < t_sync")

    @classmethod
    def from_durations(cls, iteration: int, start: float,
                       train_duration: float,
                       sync_duration: float) -> "IterationSchedule":
        """Build from the config's relative durations."""
        return cls(
            iteration=iteration,
            start=start,
            t_train=start + train_duration,
            t_sync=start + sync_duration,
        )

    def remaining_train(self, now: float) -> float:
        """Seconds left until the training deadline (>= 0)."""
        return max(0.0, self.t_train - now)

    def remaining_sync(self, now: float) -> float:
        """Seconds left until the iteration deadline (>= 0)."""
        return max(0.0, self.t_sync - now)
