"""The directory service (Sec. III-C, extended with Sec. IV verification).

Maps addressing tuples to IPFS CIDs, accumulates Pedersen commitment
products per partition (and per aggregator's trainer subset), and — in
verifiable mode — checks every claimed global update against the
accumulated commitment before revealing it to trainers.

Run by the trusted bootstrapper: "the directory service receives orders of
magnitude fewer data per iteration than the aggregators combined do".  The
implementation is a server process on the emulated network answering
register/lookup/accumulate queries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..crypto import Commitment
from ..faults.retry import RetryExhaustedError, RetryPolicy
from ..ipfs import CID, DHT, IPFSClient
from ..net import Message, Transport
from ..obs.events import (
    CommitmentAccumulated,
    DirectoryRequest,
    GradientRegistered,
    RetryExhausted,
    UpdateVerified,
    VerificationFailed,
)
from ..sim import Simulator
from .addressing import Address, GRADIENT, PARTIAL_UPDATE, UPDATE
from .verification import PartitionCommitter

__all__ = ["Directory", "DirectoryClient", "DirectoryEntry",
           "DirectoryService", "RejectionRecord", "RequestSpec",
           "REQUEST_TABLE"]

KIND_REGISTER = "dir.register"
KIND_REGISTER_BATCH = "dir.register.batch"
KIND_REGISTER_ACK = "dir.register.ack"
#: Cohort bulk operations (scaling): one message standing in for ``count``
#: individual registrations/lookups from statistically-modeled trainers.
KIND_REGISTER_COHORT = "dir.register.cohort"
KIND_LOOKUP_COHORT = "dir.lookup.cohort"
KIND_LOOKUP = "dir.lookup"
KIND_LOOKUP_REPLY = "dir.lookup.reply"
KIND_ACCUMULATED = "dir.accumulated"
KIND_ACCUMULATED_REPLY = "dir.accumulated.reply"

#: Wire sizes (bytes): an address + CID + commitment record, a lookup
#: query, and one lookup result row.
REGISTER_SIZE = 448
QUERY_SIZE = 192
ENTRY_WIRE_SIZE = 160
#: Incremental wire bytes per additional record in a bulk registration
#: (``register_batch``) or modeled cohort registration.
BATCH_RECORD_SIZE = 96


@dataclass(frozen=True)
class RequestSpec:
    """The wire shape of one directory operation.

    One row per client verb: the message ``kind``, the retry-policy
    ``operation`` label, the payload-dependent wire ``size``, and — for
    operations addressed to a single ``(partition, iteration)`` key —
    the routing ``key`` extractor the sharded router hashes.  Operations
    with ``key=None`` span keys (batches, cohort bulk load) and are
    split per shard by the router instead.
    """

    kind: str
    operation: str
    size: Callable[[Any], float]
    key: Optional[Callable[[Any], Tuple[int, int]]] = None


#: The single typed table every directory client verb goes through;
#: shared by :class:`DirectoryClient` and the sharded router
#: (:class:`repro.core.dirshard.ShardRouter`), so kind/size/operation
#: plumbing lives in exactly one place.
REQUEST_TABLE: Dict[str, RequestSpec] = {
    "register": RequestSpec(
        kind=KIND_REGISTER,
        operation="directory.register",
        size=lambda payload: REGISTER_SIZE,
        key=lambda payload: (payload["address"].partition_id,
                             payload["address"].iteration),
    ),
    "register_batch": RequestSpec(
        kind=KIND_REGISTER_BATCH,
        operation="directory.register",
        size=lambda payload: REGISTER_SIZE + BATCH_RECORD_SIZE
        * max(0, len(payload["records"]) - 1),
    ),
    "register_cohort": RequestSpec(
        kind=KIND_REGISTER_COHORT,
        operation="directory.register",
        size=lambda payload: REGISTER_SIZE + BATCH_RECORD_SIZE
        * max(0, int(payload["count"]) - 1),
    ),
    "lookup": RequestSpec(
        kind=KIND_LOOKUP,
        operation="directory.lookup",
        size=lambda payload: QUERY_SIZE,
        key=lambda payload: (payload["partition_id"],
                             payload["iteration"]),
    ),
    "lookup_cohort": RequestSpec(
        kind=KIND_LOOKUP_COHORT,
        operation="directory.lookup",
        size=lambda payload: QUERY_SIZE,
    ),
    "accumulated": RequestSpec(
        kind=KIND_ACCUMULATED,
        operation="directory.accumulated",
        size=lambda payload: QUERY_SIZE,
        key=lambda payload: (payload["partition_id"],
                             payload["iteration"]),
    ),
}


@dataclass
class DirectoryEntry:
    """One registered object."""

    address: Address
    cid: CID
    commitment: Optional[Commitment]
    registered_at: float
    #: Updates only: None = pending verification, True/False = outcome.
    verified: Optional[bool] = None


@dataclass
class RejectionRecord:
    """A registered update that failed commitment verification."""

    address: Address
    reason: str
    rejected_at: float


class Directory(abc.ABC):
    """The abstract directory-access protocol participants code against.

    Implemented by :class:`DirectoryClient` (one well-known server) and
    :class:`repro.core.dirshard.ShardRouter` (key-ranged shards), so
    ``trainer.py``/``aggregator.py``/``cohort.py`` never name a concrete
    transport-level class.  Every method is a simulation generator
    (``yield from`` it inside a process).
    """

    @abc.abstractmethod
    def register(self, address: Address, cid: CID,
                 commitment: Optional[Commitment] = None):
        """Register one object; returns the ack payload."""

    @abc.abstractmethod
    def register_batch(self, records):
        """Register many objects (Sec. VI batching); returns the ack."""

    @abc.abstractmethod
    def lookup(self, partition_id: int, iteration: int, kind: str,
               aggregator_id: Optional[str] = None,
               uploader_id: Optional[str] = None):
        """Query entries; returns a list of result dicts."""

    @abc.abstractmethod
    def accumulated(self, partition_id: int, iteration: int,
                    aggregator_id: Optional[str] = None):
        """Fetch an accumulated commitment; returns (commitment, count)."""

    def entries_for(self, partition_id: int, iteration: int, kind: str):
        """All visible entries of one ``(partition, iteration, kind)``.

        The remote counterpart of
        :meth:`DirectoryService.entries_for`; result rows are the
        ``lookup`` dicts (uploader, CID, commitment).
        """
        return (yield from self.lookup(partition_id, iteration, kind))

    @abc.abstractmethod
    def register_cohort(self, iteration: int, members: int,
                        num_partitions: int, cohort: str):
        """Charge the registration load of a statistical cohort."""

    @abc.abstractmethod
    def lookup_cohort(self, iteration: int, members: int,
                      num_partitions: int, cohort: str):
        """Charge the lookup load of a statistical cohort."""


@dataclass
class _PartitionAccumulator:
    """Running commitment products for one (partition, iteration)."""

    total: Commitment
    count: int = 0
    per_aggregator: Dict[str, Commitment] = field(default_factory=dict)
    per_aggregator_count: Dict[str, int] = field(default_factory=dict)


class DirectoryService:
    """The bootstrapper-run metadata server."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        dht: DHT,
        name: str = "directory",
        committers: Optional[Dict[int, PartitionCommitter]] = None,
        trainer_assignment: Optional[Dict[Tuple[str, int], str]] = None,
        verifiable: bool = False,
        expected_trainers: int = 0,
        processing_delay: float = 0.0,
    ):
        """
        Parameters
        ----------
        committers:
            partition_id -> :class:`PartitionCommitter`; required when
            ``verifiable``.
        trainer_assignment:
            ``(trainer_id, partition_id) -> aggregator_id``; lets the
            directory maintain per-aggregator accumulated commitments
            (Sec. IV-B) and answer takeover lookups.
        processing_delay:
            Simulated seconds of serialized server work per request.
            Zero by default; set it to study the directory as a
            bottleneck (the Sec. VI load concern) — requests then queue
            behind each other.
        """
        if verifiable and not committers:
            raise ValueError("verifiable mode needs partition committers")
        if processing_delay < 0:
            raise ValueError("processing_delay must be non-negative")
        self.sim = sim
        self.name = name
        self.verifiable = verifiable
        self.processing_delay = processing_delay
        self.committers = committers or {}
        self.trainer_assignment = trainer_assignment or {}
        self.expected_trainers = expected_trainers
        self._entries: Dict[Address, DirectoryEntry] = {}
        self._accumulators: Dict[Tuple[int, int], _PartitionAccumulator] = {}
        #: iteration -> gradient-registration cutoff (the schedule's
        #: t_train).  Closes the race between a late-straddling upload
        #: and the aggregators' final post-deadline poll: a gradient
        #: commitment must never enter the accumulated product unless the
        #: aggregators can still see it.
        self._gradient_cutoff: Dict[int, float] = {}
        #: First gradient registration per iteration (telemetry: the
        #: paper's aggregation-delay clock starts here).
        self.first_gradient_time: Dict[int, float] = {}
        #: Updates that failed verification.
        self.rejections: List[RejectionRecord] = []
        #: Query counters (Sec. VI worries about directory load).
        self.register_count = 0
        self.lookup_count = 0
        #: Load ledger: request units dequeued (a cohort message stands
        #: in for ``count`` units) and serialized server seconds spent.
        self.served_units = 0
        self.busy_seconds = 0.0
        #: The shard this server is, when it is one of a
        #: :class:`repro.core.dirshard.ShardedDirectory`'s replicas;
        #: None for the classic single server.  Stamped onto
        #: ``DirectoryRequest``/``CommitmentAccumulated`` events.
        self.shard_label: Optional[str] = None
        self.endpoint = transport.endpoint(name)
        self._ipfs = IPFSClient(name, transport, dht)
        self._server = sim.process(self._serve(), name=f"directory:{name}")

    # -- local inspection (no network; used by the session and tests) -----------

    def begin_iteration(self, iteration: int, t_train: float) -> None:
        """Arm the gradient-registration cutoff for ``iteration``."""
        self._gradient_cutoff[iteration] = t_train

    def entry(self, address: Address) -> Optional[DirectoryEntry]:
        return self._entries.get(address)

    def entries_for(self, partition_id: int, iteration: int,
                    kind: str) -> List[DirectoryEntry]:
        return [
            entry for entry in self._entries.values()
            if entry.address.partition_id == partition_id
            and entry.address.iteration == iteration
            and entry.address.kind == kind
        ]

    def entries_before(self, iteration: int) -> List[DirectoryEntry]:
        """All entries from iterations strictly before ``iteration``
        (candidates for storage garbage collection)."""
        return [
            entry for entry in self._entries.values()
            if entry.address.iteration < iteration
        ]

    def inbox_depth(self) -> int:
        """Requests queued behind the serve loop (load telemetry)."""
        return len(self.endpoint.inbox.items)

    def accumulated_commitment(
        self, partition_id: int, iteration: int,
        aggregator_id: Optional[str] = None,
    ) -> Tuple[Optional[Commitment], int]:
        """(product, contributor count) for a partition or one aggregator."""
        accumulator = self._accumulators.get((partition_id, iteration))
        if accumulator is None:
            return None, 0
        if aggregator_id is None:
            return accumulator.total, accumulator.count
        return (
            accumulator.per_aggregator.get(aggregator_id),
            accumulator.per_aggregator_count.get(aggregator_id, 0),
        )

    # -- server -------------------------------------------------------------------

    def _serve(self):
        # The directory host's endpoint is shared with its own IPFS client
        # (used to fetch updates for verification), so only consume
        # directory-protocol kinds here.
        served_kinds = (KIND_REGISTER, KIND_REGISTER_BATCH,
                        KIND_REGISTER_COHORT, KIND_LOOKUP_COHORT,
                        KIND_LOOKUP, KIND_ACCUMULATED)
        while True:
            message = yield self.endpoint.inbox.get(
                lambda m: m.kind in served_kinds
            )
            bus = self.sim.bus
            if bus.wants(DirectoryRequest) and bus.admits(
                    DirectoryRequest, message.kind, self.sim.now):
                bus.publish(DirectoryRequest(
                    at=self.sim.now, kind=message.kind,
                    shard=self.shard_label,
                ))
            # A cohort message stands in for ``count`` individual
            # requests; the load ledger charges it accordingly.
            units = 1
            if message.kind in (KIND_REGISTER_COHORT,
                                KIND_LOOKUP_COHORT):
                units = max(1, int(message.payload.get("count", 1)))
            self.served_units += units
            if self.processing_delay > 0:
                # Serialized server work: requests queue behind it.
                self.busy_seconds += self.processing_delay * units
                yield self.sim.timeout(self.processing_delay * units)
            profiler = self.sim.profiler
            frame = (profiler.begin("directory", "serve", message.kind)
                     if profiler is not None else None)
            try:
                if message.kind == KIND_REGISTER:
                    self.sim.process(self._handle_register(message),
                                     name=f"directory:{message.kind}")
                elif message.kind == KIND_REGISTER_BATCH:
                    self._handle_register_batch(message)
                elif message.kind == KIND_REGISTER_COHORT:
                    self._handle_register_cohort(message)
                elif message.kind == KIND_LOOKUP_COHORT:
                    self._handle_lookup_cohort(message)
                elif message.kind == KIND_LOOKUP:
                    self._handle_lookup(message)
                elif message.kind == KIND_ACCUMULATED:
                    self._handle_accumulated(message)
            finally:
                if frame is not None:
                    profiler.end(frame)

    def _handle_register(self, message: Message):
        payload = message.payload
        address: Address = payload["address"]
        cid: CID = payload["cid"]
        commitment: Optional[Commitment] = payload.get("commitment")
        self.register_count += 1

        if address.kind == GRADIENT:
            accepted = self._register_gradient(address, cid, commitment)
            payload = {"accepted": accepted}
            if not accepted:
                payload["reason"] = "past t_train"
            self.endpoint.respond(message, KIND_REGISTER_ACK,
                                  payload=payload, size=ENTRY_WIRE_SIZE)
            yield self.sim.timeout(0)
            return

        if address.kind == PARTIAL_UPDATE:
            self._entries[address] = DirectoryEntry(
                address=address, cid=cid, commitment=commitment,
                registered_at=self.sim.now,
            )
            self.endpoint.respond(message, KIND_REGISTER_ACK,
                                  payload={"accepted": True},
                                  size=ENTRY_WIRE_SIZE)
            yield self.sim.timeout(0)
            return

        # Global update: only the first (verified) one is kept.
        existing = [
            entry for entry in self.entries_for(
                address.partition_id, address.iteration, UPDATE)
            if entry.verified is not False
        ]
        if existing:
            # An uploader re-announcing its own kept entry is a retry
            # (lost ack), not a losing race: acknowledge idempotently.
            retried = any(
                entry.address.uploader_id == address.uploader_id
                and entry.cid == cid for entry in existing
            )
            payload = {"accepted": True} if retried else \
                {"accepted": False, "reason": "duplicate"}
            self.endpoint.respond(
                message, KIND_REGISTER_ACK,
                payload=payload, size=ENTRY_WIRE_SIZE,
            )
            yield self.sim.timeout(0)
            return
        entry = DirectoryEntry(
            address=address, cid=cid, commitment=commitment,
            registered_at=self.sim.now,
            verified=None if self.verifiable else True,
        )
        self._entries[address] = entry
        self.endpoint.respond(message, KIND_REGISTER_ACK,
                              payload={"accepted": True},
                              size=ENTRY_WIRE_SIZE)
        if self.verifiable:
            yield from self._verify_update(entry)
        else:
            yield self.sim.timeout(0)

    def _handle_register_batch(self, message: Message) -> None:
        """Sec. VI batching: all of a trainer's gradient partitions in one
        message, integrity-bound by an accumulation over the CIDs."""
        from .offload import accumulate_cids  # local import: avoid cycle

        payload = message.payload
        records = payload["records"]
        self.register_count += 1
        expected = accumulate_cids([record["cid"] for record in records])
        if expected != payload["accumulation"]:
            self.endpoint.respond(
                message, KIND_REGISTER_ACK,
                payload={"accepted": False, "reason": "bad accumulation"},
                size=ENTRY_WIRE_SIZE,
            )
            return
        all_accepted = True
        for record in records:
            address: Address = record["address"]
            if address.kind != GRADIENT:
                continue  # batching is for gradient registrations only
            all_accepted &= self._register_gradient(
                address, record["cid"], record.get("commitment")
            )
        self.endpoint.respond(message, KIND_REGISTER_ACK,
                              payload={"accepted": all_accepted},
                              size=ENTRY_WIRE_SIZE)

    def _handle_register_cohort(self, message: Message) -> None:
        """Bulk registration load from a statistically-modeled cohort.

        Carries no addresses or CIDs — the cohort's members contribute
        *load*, not protocol state — but counts against the Sec. VI
        directory-load ledger exactly as ``count`` individual
        registrations would.
        """
        count = max(0, int(message.payload.get("count", 0)))
        self.register_count += count
        self.endpoint.respond(message, KIND_REGISTER_ACK,
                              payload={"accepted": True, "count": count},
                              size=ENTRY_WIRE_SIZE)

    def _handle_lookup_cohort(self, message: Message) -> None:
        """Bulk lookup load from a statistically-modeled cohort."""
        count = max(0, int(message.payload.get("count", 0)))
        self.lookup_count += count
        self.endpoint.respond(
            message, KIND_LOOKUP_REPLY, payload=[],
            size=ENTRY_WIRE_SIZE * max(1, count),
        )

    def _register_gradient(self, address: Address, cid: CID,
                           commitment: Optional[Commitment]) -> bool:
        """Record a gradient; False if past the iteration's cutoff."""
        # ``entry`` (not ``_entries.get``): a sharded replica must see a
        # registration its peer already accepted, or a failover retry
        # would accumulate the same commitment twice.
        existing = self.entry(address)
        if existing is not None and existing.cid == cid:
            # Idempotent retry: the first registration landed but its ack
            # was lost.  Acknowledge without re-accumulating the
            # commitment (accumulating twice would poison verification).
            return True
        cutoff = self._gradient_cutoff.get(address.iteration)
        if cutoff is not None and self.sim.now > cutoff:
            return False
        self._entries[address] = DirectoryEntry(
            address=address, cid=cid, commitment=commitment,
            registered_at=self.sim.now,
        )
        self.first_gradient_time.setdefault(address.iteration, self.sim.now)
        bus = self.sim.bus
        if bus.wants(GradientRegistered):
            bus.publish(GradientRegistered(
                at=self.sim.now, iteration=address.iteration,
                uploader=address.uploader_id,
                partition_id=address.partition_id,
                cid=str(cid),
            ))
        if commitment is None:
            return True
        key = (address.partition_id, address.iteration)
        accumulator = self._accumulators.get(key)
        if accumulator is None:
            curve = self.committers[address.partition_id].curve
            accumulator = _PartitionAccumulator(
                total=Commitment.identity(curve)
            )
            self._accumulators[key] = accumulator
        accumulator.total = accumulator.total.combine(commitment)
        accumulator.count += 1
        aggregator_id = self.trainer_assignment.get(
            (address.uploader_id, address.partition_id)
        )
        if bus.wants(CommitmentAccumulated):
            bus.publish(CommitmentAccumulated(
                at=self.sim.now, iteration=address.iteration,
                partition_id=address.partition_id,
                uploader=address.uploader_id,
                aggregator=aggregator_id,
                commitment=commitment,
                accumulated=accumulator.total,
                count=accumulator.count,
                shard=self.shard_label,
            ))
        if aggregator_id is not None:
            curve = self.committers[address.partition_id].curve
            current = accumulator.per_aggregator.get(
                aggregator_id, Commitment.identity(curve)
            )
            accumulator.per_aggregator[aggregator_id] = (
                current.combine(commitment)
            )
            accumulator.per_aggregator_count[aggregator_id] = (
                accumulator.per_aggregator_count.get(aggregator_id, 0) + 1
            )
        return True

    def _reject(self, entry: DirectoryEntry, reason: str) -> None:
        entry.verified = False
        self.rejections.append(RejectionRecord(
            address=entry.address, reason=reason,
            rejected_at=self.sim.now,
        ))
        bus = self.sim.bus
        if bus.wants(VerificationFailed):
            bus.publish(VerificationFailed(
                at=self.sim.now, iteration=entry.address.iteration,
                label=str(entry.address), scope="update",
                partition_id=entry.address.partition_id,
                aggregator=entry.address.uploader_id,
                reason=reason,
            ))

    def _verify_update(self, entry: DirectoryEntry):
        """Download the claimed update and check the commitment product."""
        address = entry.address
        expected, count = self.accumulated_commitment(
            address.partition_id, address.iteration
        )
        if expected is None or count == 0:
            self._reject(entry, "no gradient commitments accumulated")
            return
        try:
            blob = yield from self._ipfs.get(entry.cid)
        except Exception as exc:  # unavailable/corrupt update
            self._reject(entry, f"update retrieval failed: {exc}")
            return
        committer = self.committers[address.partition_id]
        claimed, claimed_counter = committer.open_blob(blob)
        ok = claimed == expected
        bus = self.sim.bus
        if bus.wants(UpdateVerified):
            bus.publish(UpdateVerified(
                at=self.sim.now, iteration=address.iteration,
                partition_id=address.partition_id,
                aggregator=address.uploader_id,
                ok=ok, expected_count=count,
                claimed_counter=claimed_counter,
                expected_commitment=expected,
                claimed_commitment=claimed,
                cid=str(entry.cid),
            ))
        if ok:
            entry.verified = True
        else:
            self._reject(
                entry, "commitment mismatch (dropped or altered gradients)"
            )

    def _visible(self, entry: DirectoryEntry) -> bool:
        """Updates must be verified (in verifiable mode) to be served."""
        if entry.address.kind != UPDATE:
            return True
        return entry.verified is True

    def _handle_lookup(self, message: Message) -> None:
        query = message.payload
        self.lookup_count += 1
        results = []
        for entry in self.entries_for(
            query["partition_id"], query["iteration"], query["kind"]
        ):
            if not self._visible(entry):
                continue
            if query.get("uploader_id") is not None \
                    and entry.address.uploader_id != query["uploader_id"]:
                continue
            aggregator_filter = query.get("aggregator_id")
            if aggregator_filter is not None \
                    and entry.address.kind == GRADIENT:
                assigned = self.trainer_assignment.get(
                    (entry.address.uploader_id, entry.address.partition_id)
                )
                if assigned != aggregator_filter:
                    continue
            results.append({
                "uploader_id": entry.address.uploader_id,
                "cid": entry.cid,
                "commitment": entry.commitment,
            })
        self.endpoint.respond(
            message, KIND_LOOKUP_REPLY, payload=results,
            size=ENTRY_WIRE_SIZE * max(1, len(results)),
        )

    def _handle_accumulated(self, message: Message) -> None:
        query = message.payload
        commitment, count = self.accumulated_commitment(
            query["partition_id"], query["iteration"],
            query.get("aggregator_id"),
        )
        self.endpoint.respond(
            message, KIND_ACCUMULATED_REPLY,
            payload={"commitment": commitment, "count": count},
            size=ENTRY_WIRE_SIZE,
        )


class DirectoryClient(Directory):
    """Participant-side helper for talking to one directory server.

    With ``request_timeout`` unset (the legacy default) every call waits
    for its response indefinitely — correct on honest infrastructure,
    where the directory always answers.  Under fault injection, give the
    client a timeout plus a :class:`~repro.faults.RetryPolicy`: each
    request then retries with bounded backoff and raises
    :class:`~repro.faults.RetryExhaustedError` when the directory stays
    unreachable.  Server-side registration is idempotent, so a retried
    register whose first ack was lost is acknowledged harmlessly.

    Every verb goes through :data:`REQUEST_TABLE` (one typed row per
    operation); the sharded router reuses the same rows and request
    machinery, overriding only destination selection.
    """

    def __init__(self, name: str, transport: Transport,
                 directory_name: str = "directory",
                 retry: Optional[RetryPolicy] = None,
                 request_timeout: Optional[float] = None):
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        self.name = name
        self.directory_name = directory_name
        self.endpoint = transport.endpoint(name)
        self.sim = transport.sim
        self.retry = retry
        self.request_timeout = request_timeout

    def _call(self, op: str, payload):
        """Issue one table-driven operation (single well-known server)."""
        spec = REQUEST_TABLE[op]
        return (yield from self._request(
            spec.kind, payload, spec.size(payload), spec.operation,
        ))

    def _request(self, kind: str, payload, size: float, operation: str,
                 dst: Optional[str] = None):
        """One directory round-trip under the retry/timeout policy."""
        if dst is None:
            dst = self.directory_name
        if self.request_timeout is None:
            response = yield from self.endpoint.request(
                dst, kind, payload=payload, size=size,
            )
            return response.payload
        policy = self.retry
        attempts = max(1, policy.max_attempts) if policy is not None else 1
        transport = self.endpoint.transport
        for attempt in range(attempts):
            request_id = transport.next_request_id()
            transport.send(Message(
                src=self.name, dst=dst, kind=kind,
                payload=payload, size=size, request_id=request_id,
            ))
            response_event = self.endpoint.inbox.get(
                lambda m, rid=request_id: m.request_id == rid
            )
            timeout = self.sim.timeout(self.request_timeout)
            outcome = yield self.sim.any_of([response_event, timeout])
            if response_event in outcome:
                return outcome[response_event].payload
            if attempt + 1 < attempts:
                yield self.sim.timeout(policy.backoff(
                    attempt, key=f"{self.name}:{operation}"
                ))
        bus = self.sim.bus
        if bus.wants(RetryExhausted):
            bus.publish(RetryExhausted(
                at=self.sim.now, actor=self.name, operation=operation,
                attempts=attempts,
            ))
        raise RetryExhaustedError(operation, attempts)

    def register(self, address: Address, cid: CID,
                 commitment: Optional[Commitment] = None):
        """Register an object; returns the ack payload."""
        return (yield from self._call("register", {
            "address": address, "cid": cid, "commitment": commitment,
        }))

    def register_batch(self, records):
        """Register many objects in one message (Sec. VI batching).

        ``records`` is a list of dicts with ``address``, ``cid`` and
        optional ``commitment``.  The wire carries one accumulated digest
        over the CIDs; the directory recomputes and checks it.
        """
        from .offload import accumulate_cids  # local import: avoid cycle

        accumulation = accumulate_cids([r["cid"] for r in records])
        return (yield from self._call("register_batch", {
            "records": list(records), "accumulation": accumulation,
        }))

    def lookup(self, partition_id: int, iteration: int, kind: str,
               aggregator_id: Optional[str] = None,
               uploader_id: Optional[str] = None):
        """Query entries; returns a list of result dicts."""
        return (yield from self._call("lookup", {
            "partition_id": partition_id,
            "iteration": iteration,
            "kind": kind,
            "aggregator_id": aggregator_id,
            "uploader_id": uploader_id,
        }))

    def accumulated(self, partition_id: int, iteration: int,
                    aggregator_id: Optional[str] = None):
        """Fetch an accumulated commitment; returns (commitment, count)."""
        payload = yield from self._call("accumulated", {
            "partition_id": partition_id,
            "iteration": iteration,
            "aggregator_id": aggregator_id,
        })
        return payload["commitment"], payload["count"]

    def register_cohort(self, iteration: int, members: int,
                        num_partitions: int, cohort: str):
        """Charge a cohort's bulk registration load in one message."""
        count = members * num_partitions
        return (yield from self._call("register_cohort", {
            "count": count, "cohort": cohort,
        }))

    def lookup_cohort(self, iteration: int, members: int,
                      num_partitions: int, cohort: str):
        """Charge a cohort's bulk lookup load in one message."""
        count = members * num_partitions
        return (yield from self._call("lookup_cohort", {
            "count": count, "cohort": cohort,
        }))
