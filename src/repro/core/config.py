"""Configuration of a decentralized FL task."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ml import TrainConfig

__all__ = ["ProtocolConfig"]


@dataclass
class ProtocolConfig:
    """Everything the bootstrapper fixes when launching a task.

    Field names follow the paper: ``aggregators_per_partition`` is |A_i|,
    ``providers_per_aggregator`` is |P_ij|, ``t_train``/``t_sync`` are the
    per-iteration deadlines of Algorithm 1.
    """

    # -- model segmentation ------------------------------------------------
    #: Number of partitions the parameter vector is segmented into.
    num_partitions: int = 4
    #: |A_i| — aggregators responsible for each partition.
    aggregators_per_partition: int = 1

    # -- iteration schedule (seconds, relative to iteration start) -----------
    #: Deadline for trainers to upload gradients (Algorithm 1's t_train).
    t_train: float = 120.0
    #: Hard end of the iteration (Algorithm 1's t_sync).
    t_sync: float = 600.0
    #: Extra time an aggregator waits for a peer's partial update before
    #: taking over its trainers' gradients (the paper's dropout handling).
    takeover_grace: float = 30.0

    # -- storage / communication ----------------------------------------------
    #: Use the merge-and-download optimization (Sec. III-E).
    merge_and_download: bool = False
    #: |P_ij| — IPFS provider nodes per aggregator; 0 selects the analytic
    #: optimum sqrt(b/d * |T_ij|) (≈ sqrt(|T_ij|) at equal bandwidths).
    providers_per_aggregator: int = 0
    #: Interval between directory polls while waiting for data.
    poll_interval: float = 0.5
    #: Register all of a trainer's gradient partitions in one directory
    #: message with an accumulated CID digest (Sec. VI load reduction).
    batch_registration: bool = False
    #: Chunk size of the underlying IPFS nodes.
    chunk_size: int = 256 * 1024

    # -- verifiable aggregation (Sec. IV) ------------------------------------------
    #: Attach Pedersen commitments and verify every aggregate.
    verifiable: bool = False
    #: Who checks global updates against the accumulated commitment.
    #: The paper: "This can be performed by any participant (trainer or
    #: bootstrapper) but for simplicity we assume it will be performed by
    #: the directory service."  Both can be on simultaneously.
    directory_verification: bool = True
    trainer_verification: bool = False
    #: Curve for the commitments: "secp256k1" or "secp256r1".
    curve: str = "secp256k1"
    #: Fixed-point precision of the gradient encoding.
    fractional_bits: int = 16
    #: If set, participants additionally *sleep* this many seconds per
    #: committed parameter, modelling commitment cost at model scale
    #: without paying it in wall-clock (None = charge nothing; the real
    #: commitment is always computed).
    commit_seconds_per_param: Optional[float] = None

    # -- learning ---------------------------------------------------------------
    #: What trainers upload: "params" (Algorithm 1: locally trained
    #: parameters; the global update is their average, i.e. FedAvg) or
    #: "gradient" (FedSGD: averaged gradient applied client-side).
    update_mode: str = "params"
    #: Client-side SGD step size when ``update_mode == "gradient"``.
    learning_rate: float = 0.1
    #: Local training hyper-parameters.
    train: TrainConfig = field(default_factory=TrainConfig)
    #: Simulated duration of one local training pass (seconds); real
    #: training compute happens outside the simulated clock.
    local_train_seconds: float = 0.0
    #: Partial asynchrony: each trainer starts its round after a
    #: deterministic per-trainer offset drawn uniformly from
    #: [0, trainer_jitter] (participants "may not be online at the same
    #: time", Sec. III-B).
    trainer_jitter: float = 0.0

    #: RNG seed for assignment shuffling and provider choice.
    seed: int = 0

    def __post_init__(self):
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.aggregators_per_partition < 1:
            raise ValueError("aggregators_per_partition must be >= 1")
        if self.t_train <= 0 or self.t_sync <= self.t_train:
            raise ValueError("need 0 < t_train < t_sync")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.takeover_grace < 0:
            raise ValueError("takeover_grace must be non-negative")
        if self.providers_per_aggregator < 0:
            raise ValueError("providers_per_aggregator must be >= 0")
        if self.trainer_jitter < 0:
            raise ValueError("trainer_jitter must be non-negative")
        if self.update_mode not in ("params", "gradient"):
            raise ValueError("update_mode must be 'params' or 'gradient'")
        if self.curve not in ("secp256k1", "secp256r1"):
            raise ValueError("curve must be secp256k1 or secp256r1")
