"""Directory-load reduction (paper Sec. VI, "Minimize the query load of
the directory service").

Two mechanisms the paper sketches as future work:

1. **Batch registration** — "instead of writing the hash of each
   partition to the directory service, trainers only need to send an
   accumulation over the hashes of gradient partitions."  A trainer
   registers all P of its partitions in a single message carrying the
   individual records plus one accumulated digest over the CIDs; the
   directory checks the accumulation before accepting, turning P
   round-trips into one.

2. **Map snapshot offload** — "reduce its load by delegating the storage
   of its maps to the IPFS network, making the IPFS nodes responsible
   for replying to map queries."  Once a partition's gradient set is
   complete for an iteration, the directory *seals* it into a snapshot
   block stored on IPFS; subsequent lookups are answered with the tiny
   snapshot CID and the actual map rows are served by storage nodes.

Both are measured by the ``test_directory_offload`` ablation benchmark.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto import Commitment
from ..ipfs import CID, IPFSClient
from ..obs.events import SnapshotSealed
from .addressing import GRADIENT
from .directory import DirectoryService

__all__ = [
    "accumulate_cids",
    "encode_snapshot",
    "decode_snapshot",
    "SnapshotPublisher",
    "SnapshotReader",
]


def accumulate_cids(cids: Sequence[CID]) -> bytes:
    """Order-independent accumulation over a set of CIDs.

    XOR of the SHA-256 digests of the individual digests: commutative, so
    the directory can re-derive it from records received in any order,
    and any substituted/omitted CID changes the value.
    """
    accumulator = bytearray(32)
    for cid in cids:
        digest = hashlib.sha256(cid.digest).digest()
        for index in range(32):
            accumulator[index] ^= digest[index]
    return bytes(accumulator)


# -- map snapshots ---------------------------------------------------------------


def encode_snapshot(partition_id: int, iteration: int,
                    rows: List[dict]) -> bytes:
    """Serialize a sealed partition map as an IPFS-storable blob."""
    payload = {
        "kind": "repro-directory-snapshot-v1",
        "partition_id": partition_id,
        "iteration": iteration,
        "rows": [
            {
                "uploader_id": row["uploader_id"],
                "cid": row["cid"].encode(),
                "commitment": (
                    row["commitment"].to_bytes().hex()
                    if row.get("commitment") is not None else None
                ),
            }
            for row in rows
        ],
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_snapshot(blob: bytes, curve=None) -> Tuple[int, int, List[dict]]:
    """Inverse of :func:`encode_snapshot`.

    ``curve`` is required to revive commitments; pass None to skip them.
    Returns ``(partition_id, iteration, rows)``.
    """
    payload = json.loads(blob.decode("utf-8"))
    if payload.get("kind") != "repro-directory-snapshot-v1":
        raise ValueError("not a directory snapshot")
    rows = []
    for row in payload["rows"]:
        commitment = None
        if row["commitment"] is not None and curve is not None:
            commitment = Commitment.from_bytes(
                curve, bytes.fromhex(row["commitment"])
            )
        rows.append({
            "uploader_id": row["uploader_id"],
            "cid": CID.decode(row["cid"]),
            "commitment": commitment,
        })
    return payload["partition_id"], payload["iteration"], rows


class SnapshotPublisher:
    """Directory-side: seal completed partition maps into IPFS blocks.

    Attach to a :class:`DirectoryService` and call :meth:`seal` once a
    partition's gradient set is complete (e.g. when the trainer upload
    window closes).  The snapshot CID is the only thing the directory
    needs to hand out afterwards.
    """

    def __init__(self, directory: DirectoryService, ipfs: IPFSClient,
                 node: str):
        self.directory = directory
        self.ipfs = ipfs
        self.node = node
        #: (partition_id, iteration) -> snapshot CID.
        self.snapshots: Dict[Tuple[int, int], CID] = {}

    def seal(self, partition_id: int, iteration: int):
        """Process generator: publish the current map as a snapshot."""
        rows = [
            {
                "uploader_id": entry.address.uploader_id,
                "cid": entry.cid,
                "commitment": entry.commitment,
            }
            for entry in self.directory.entries_for(
                partition_id, iteration, GRADIENT
            )
        ]
        blob = encode_snapshot(partition_id, iteration, rows)
        snapshot_cid = yield from self.ipfs.put(blob, node=self.node)
        self.snapshots[(partition_id, iteration)] = snapshot_cid
        bus = self.directory.sim.bus
        if bus.wants(SnapshotSealed):
            bus.publish(SnapshotSealed(
                at=self.directory.sim.now, iteration=iteration,
                partition_id=partition_id, node=self.node,
                cid=snapshot_cid.encode(),
            ))
        return snapshot_cid

    def snapshot_cid(self, partition_id: int,
                     iteration: int) -> Optional[CID]:
        return self.snapshots.get((partition_id, iteration))


class SnapshotReader:
    """Participant-side: resolve a partition map from its IPFS snapshot.

    Replaces per-row directory lookups with one storage-network fetch;
    the directory serves only the 64-byte snapshot CID.
    """

    def __init__(self, ipfs: IPFSClient, curve=None):
        self.ipfs = ipfs
        self.curve = curve

    def fetch(self, snapshot_cid: CID,
              prefer_nodes: Sequence[str] = ()):
        """Process generator: download and decode a snapshot's rows."""
        blob = yield from self.ipfs.get(snapshot_cid,
                                        prefer_nodes=prefer_nodes)
        _partition, _iteration, rows = decode_snapshot(blob, self.curve)
        return rows
