"""Sharded directory service (ROADMAP item 2, Sec. VI load scaling).

The paper names directory load — O(trainers x partitions) registrations
per iteration — as the dominant scaling bottleneck, and the cohort-scale
sweeps confirm it: everything else stays flat-to-linear while bulk
registrations serialize through the single :class:`DirectoryService`
process.  This module splits that process into N shards, each owning a
range of ``(partition_id, iteration)`` keys under the Kademlia XOR
metric already used by :mod:`repro.ipfs.kademlia`:

- :class:`DirectoryProfile` is the third composable deployment profile
  (next to :class:`~repro.net.NetworkProfile` and
  :class:`~repro.faults.FaultPlan`): ``FLSession(..., directory=
  DirectoryProfile(shards=4))``.  ``shards=1`` is the classic single
  well-known server, byte-identical to a session that never heard of
  this module.
- :class:`ShardMap` places keys on shards: ``consistent-hash`` ranks
  shards by XOR distance from ``sha256("dir:<partition>:<iteration>")``
  (the :func:`directory_key`), ``modulo`` round-robins for guaranteed
  balance at tiny partition counts.  The first ``replication`` shards in
  placement order own the key; clients fail over down that list.
- :class:`ShardedDirectory` runs one :class:`_ShardServer` — the
  existing ``_serve`` loop, untouched — per shard on its own emulated
  host/link, so the network model prices shard load and queueing
  exactly as it priced the single server's.
- :class:`ShardRouter` is the client: the same
  :class:`~repro.core.directory.DirectoryClient` request machinery and
  :data:`~repro.core.directory.REQUEST_TABLE`, with destination chosen
  per key.  Key-spanning verbs (batches, cohort bulk load) are split
  per owning shard.

Commitment merge: every shard folds gradient commitments into its own
:class:`_PartitionAccumulator`; the group's accumulated commitment is
the shard-local subtotals combined in shard order.  Pedersen
commitments add on an elliptic curve — commutative and associative —
so the merged product is byte-equal to the single-server product that
folded the same contributions in arrival order, and the
:mod:`repro.obs.monitors` independent recomputation still gates it
(there is a hypothesis property test pinning exactly this).

Simulation compromise (documented in DESIGN.md): shard *reads* — entry
lookups, duplicate checks and accumulated-commitment queries — peek at
peer shard state locally instead of exchanging inter-shard replication
traffic, standing in for a replicated log kept in sync out of band
(Cassano et al.'s smart-contract directory).  Writes, wire messages,
queueing and the serialized processing delay stay strictly per-shard;
those are what the evaluation measures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto import Commitment
from ..faults.retry import RetryExhaustedError, RetryPolicy
from ..ipfs import DHT
from ..ipfs.kademlia import node_key, xor_distance
from ..net import Transport
from ..sim import Simulator
from .addressing import Address
from .directory import (
    REQUEST_TABLE,
    DirectoryClient,
    DirectoryEntry,
    DirectoryService,
    RejectionRecord,
    RequestSpec,
)
from .verification import PartitionCommitter

__all__ = ["DirectoryProfile", "ShardMap", "ShardRouter",
           "ShardedDirectory", "directory_key"]

#: Host-name prefix for shard hosts (``directory-shard-0``, ...).
SHARD_PREFIX = "directory-shard"

_PLACEMENTS = ("consistent-hash", "modulo")


def directory_key(partition_id: int, iteration: int) -> int:
    """A ``(partition, iteration)`` key in the 256-bit Kademlia space."""
    label = f"dir:{partition_id}:{iteration}"
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest(), "big"
    )


@dataclass(frozen=True)
class DirectoryProfile:
    """How the directory service is deployed (the third profile).

    ``shards=1`` (the default) is the classic single well-known server:
    the session takes the exact pre-sharding construction path and is
    fingerprint- and byte-identical to one built without a profile.
    With ``shards >= 2``, each shard runs on its own host and owns the
    keys :class:`ShardMap` places on it; ``replication`` > 1 gives every
    key that many owners, and clients holding a
    :class:`~repro.faults.RetryPolicy` fail over down the owner list
    when a shard stops answering.

    ``processing_delay`` overrides the network profile's
    ``directory_processing_delay`` (serialized server seconds per
    request unit); ``bandwidth_mbps`` constrains each shard's link
    (default: unconstrained, like the single server's).
    """

    shards: int = 1
    replication: int = 1
    placement: str = "consistent-hash"
    processing_delay: Optional[float] = None
    bandwidth_mbps: Optional[float] = None

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.replication > self.shards:
            raise ValueError(
                f"replication {self.replication} cannot exceed the "
                f"{self.shards} shard(s)"
            )
        if self.placement not in _PLACEMENTS:
            raise ValueError(
                f"placement must be one of {_PLACEMENTS}, "
                f"not {self.placement!r}"
            )
        if self.processing_delay is not None and self.processing_delay < 0:
            raise ValueError("processing_delay must be non-negative")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")


class ShardMap:
    """Deterministic key placement over a fixed shard list.

    ``owners(partition_id, iteration)`` returns the ``replication``
    shards responsible for that key, primary first.  Pure function of
    the constructor arguments — every client and the server group share
    one instance, and a replayed run places identically.
    """

    def __init__(self, shard_names: Sequence[str], replication: int = 1,
                 placement: str = "consistent-hash"):
        if not shard_names:
            raise ValueError("need at least one shard")
        if placement not in _PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}")
        self.shard_names: Tuple[str, ...] = tuple(shard_names)
        self.replication = min(max(1, replication), len(self.shard_names))
        self.placement = placement
        self._keys = [(node_key(name), name) for name in self.shard_names]
        self._cache: Dict[Tuple[int, int], Tuple[str, ...]] = {}

    def owners(self, partition_id: int, iteration: int) -> Tuple[str, ...]:
        """The shards owning ``(partition_id, iteration)``, primary first."""
        key = (partition_id, iteration)
        owners = self._cache.get(key)
        if owners is None:
            if self.placement == "modulo":
                total = len(self.shard_names)
                first = (partition_id + iteration) % total
                owners = tuple(
                    self.shard_names[(first + offset) % total]
                    for offset in range(self.replication)
                )
            else:
                target = directory_key(partition_id, iteration)
                ranked = sorted(
                    self._keys,
                    key=lambda entry: xor_distance(entry[0], target),
                )
                owners = tuple(
                    name for _, name in ranked[:self.replication]
                )
            self._cache[key] = owners
        return owners

    def primary(self, partition_id: int, iteration: int) -> str:
        return self.owners(partition_id, iteration)[0]


class _ShardServer(DirectoryService):
    """One shard: the stock serve loop plus group-wide read paths.

    Writes (entries, accumulators, counters, queueing) stay local; the
    read accessors consult the whole group so duplicate checks,
    verification and client reads see the union — the replicated-log
    stand-in described in the module docstring.
    """

    def __init__(self, group: "ShardedDirectory", **kwargs):
        self.group = group
        super().__init__(**kwargs)
        self.shard_label = self.name

    def entry(self, address: Address) -> Optional[DirectoryEntry]:
        return self.group.entry(address)

    def entries_for(self, partition_id: int, iteration: int,
                    kind: str) -> List[DirectoryEntry]:
        return self.group.entries_for(partition_id, iteration, kind)

    def accumulated_commitment(
        self, partition_id: int, iteration: int,
        aggregator_id: Optional[str] = None,
    ) -> Tuple[Optional[Commitment], int]:
        return self.group.accumulated_commitment(
            partition_id, iteration, aggregator_id
        )


class ShardedDirectory:
    """N directory shards presenting the single server's surface.

    Duck-types :class:`DirectoryService` everywhere the session, the
    fault injector and the observability layer touch it —
    ``begin_iteration``/``entry``/``entries_for``/``entries_before``/
    ``accumulated_commitment``/``rejections``/``first_gradient_time``/
    the load counters/``processing_delay``/``inbox_depth`` — with each
    accessor aggregating over the shard list in shard order (stable, so
    replays are byte-identical).
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        dht: DHT,
        shard_names: Sequence[str],
        committers: Optional[Dict[int, PartitionCommitter]] = None,
        trainer_assignment: Optional[Dict[Tuple[str, int], str]] = None,
        verifiable: bool = False,
        expected_trainers: int = 0,
        processing_delay: float = 0.0,
    ):
        if not shard_names:
            raise ValueError("need at least one shard")
        self.sim = sim
        self.verifiable = verifiable
        self.expected_trainers = expected_trainers
        self.shard_names: List[str] = list(shard_names)
        self.shards: List[_ShardServer] = [
            _ShardServer(
                group=self,
                sim=sim,
                transport=transport,
                dht=dht,
                name=name,
                committers=committers,
                trainer_assignment=trainer_assignment,
                verifiable=verifiable,
                expected_trainers=expected_trainers,
                processing_delay=processing_delay,
            )
            for name in self.shard_names
        ]
        self._by_name = {shard.name: shard for shard in self.shards}

    # -- shard access -------------------------------------------------------------

    def shard(self, name: str) -> _ShardServer:
        """The shard named ``name`` (raises ``KeyError`` if unknown)."""
        return self._by_name[name]

    # -- the DirectoryService surface ----------------------------------------------

    def begin_iteration(self, iteration: int, t_train: float) -> None:
        for shard in self.shards:
            shard.begin_iteration(iteration, t_train)

    def entry(self, address: Address) -> Optional[DirectoryEntry]:
        for shard in self.shards:
            found = DirectoryService.entry(shard, address)
            if found is not None:
                return found
        return None

    def entries_for(self, partition_id: int, iteration: int,
                    kind: str) -> List[DirectoryEntry]:
        results: List[DirectoryEntry] = []
        for shard in self.shards:
            results.extend(DirectoryService.entries_for(
                shard, partition_id, iteration, kind
            ))
        return results

    def entries_before(self, iteration: int) -> List[DirectoryEntry]:
        results: List[DirectoryEntry] = []
        for shard in self.shards:
            results.extend(shard.entries_before(iteration))
        return results

    def accumulated_commitment(
        self, partition_id: int, iteration: int,
        aggregator_id: Optional[str] = None,
    ) -> Tuple[Optional[Commitment], int]:
        """Shard-local subtotals folded in shard order.

        EC-point addition is commutative and associative, so this equals
        the single-server product over the same contributions in arrival
        order — the property the merge-algebra tests pin down.
        """
        total: Optional[Commitment] = None
        count = 0
        for shard in self.shards:
            commitment, contributions = \
                DirectoryService.accumulated_commitment(
                    shard, partition_id, iteration, aggregator_id
                )
            if commitment is not None:
                total = commitment if total is None \
                    else total.combine(commitment)
                count += contributions
        return total, count

    # -- aggregated telemetry ------------------------------------------------------

    @property
    def rejections(self) -> List[RejectionRecord]:
        records: List[RejectionRecord] = []
        for shard in self.shards:
            records.extend(shard.rejections)
        return records

    @property
    def first_gradient_time(self) -> Dict[int, float]:
        merged: Dict[int, float] = {}
        for shard in self.shards:
            for iteration, at in shard.first_gradient_time.items():
                if iteration not in merged or at < merged[iteration]:
                    merged[iteration] = at
        return merged

    @property
    def register_count(self) -> int:
        return sum(shard.register_count for shard in self.shards)

    @property
    def lookup_count(self) -> int:
        return sum(shard.lookup_count for shard in self.shards)

    @property
    def served_units(self) -> int:
        return sum(shard.served_units for shard in self.shards)

    @property
    def busy_seconds(self) -> float:
        """Serialized server seconds summed over all shards."""
        return sum(shard.busy_seconds for shard in self.shards)

    @property
    def max_busy_seconds(self) -> float:
        """The critical path: the busiest single shard's serialized work.

        Sustained registrations/sec is ``register_count /
        max_busy_seconds`` — the load-balance-sensitive figure the
        dirshard benchmark gates on.
        """
        return max(shard.busy_seconds for shard in self.shards)

    def inbox_depth(self) -> int:
        return sum(shard.inbox_depth() for shard in self.shards)

    @property
    def processing_delay(self) -> float:
        return self.shards[0].processing_delay

    @processing_delay.setter
    def processing_delay(self, value: float) -> None:
        for shard in self.shards:
            shard.processing_delay = value


class ShardRouter(DirectoryClient):
    """The sharded directory client: table-driven, key-routed.

    Key-addressed verbs hash their ``(partition, iteration)`` key
    through the shared :class:`ShardMap` and fail over down the owner
    list when a send exhausts its retry budget (failover only arises
    under a ``request_timeout``; without one, a request waits exactly
    like the single-server client).  Key-spanning verbs — batched
    registration and cohort bulk load — split per owning shard, one
    message per shard touched.
    """

    def __init__(self, name: str, transport: Transport,
                 shard_map: ShardMap,
                 retry: Optional[RetryPolicy] = None,
                 request_timeout: Optional[float] = None):
        super().__init__(
            name, transport,
            directory_name=shard_map.shard_names[0],
            retry=retry, request_timeout=request_timeout,
        )
        self.shard_map = shard_map

    def _call(self, op: str, payload):
        """Route one key-addressed operation via the shard map."""
        spec = REQUEST_TABLE[op]
        if spec.key is None:
            raise ValueError(
                f"directory operation {op!r} spans shard keys; it has a "
                "dedicated split method on the router"
            )
        owners = self.shard_map.owners(*spec.key(payload))
        return (yield from self._failover(spec, payload, owners))

    def _failover(self, spec: RequestSpec, payload,
                  owners: Sequence[str]):
        """Try each owner in placement order until one answers."""
        last_error: Optional[RetryExhaustedError] = None
        for dst in owners:
            try:
                return (yield from self._request(
                    spec.kind, payload, spec.size(payload),
                    spec.operation, dst=dst,
                ))
            except RetryExhaustedError as error:
                last_error = error
        raise last_error

    # -- key-spanning verbs: split per owning shard --------------------------------

    def register_batch(self, records):
        """Sec. VI batching, one message per owning shard.

        Each shard's sub-batch carries its own CID accumulation (the
        integrity check is per message); the merged ack is accepted only
        if every shard accepted its part.
        """
        from .offload import accumulate_cids  # local import: avoid cycle

        groups: Dict[Tuple[str, ...], list] = {}
        for record in records:
            owners = self.shard_map.owners(
                record["address"].partition_id,
                record["address"].iteration,
            )
            groups.setdefault(owners, []).append(record)
        spec = REQUEST_TABLE["register_batch"]
        accepted = True
        for owners, group_records in groups.items():
            payload = {
                "records": list(group_records),
                "accumulation": accumulate_cids(
                    [record["cid"] for record in group_records]
                ),
            }
            ack = yield from self._failover(spec, payload, owners)
            accepted &= bool(ack.get("accepted"))
        return {"accepted": accepted}

    def _split_cohort(self, iteration: int, members: int,
                      num_partitions: int) -> Dict[Tuple[str, ...], int]:
        """Cohort load per owner group: ``members`` units per partition."""
        per_owner: Dict[Tuple[str, ...], int] = {}
        for partition_id in range(num_partitions):
            owners = self.shard_map.owners(partition_id, iteration)
            per_owner[owners] = per_owner.get(owners, 0) + members
        return per_owner

    def register_cohort(self, iteration: int, members: int,
                        num_partitions: int, cohort: str):
        spec = REQUEST_TABLE["register_cohort"]
        ack = None
        for owners, count in self._split_cohort(
                iteration, members, num_partitions).items():
            payload = {"count": count, "cohort": cohort}
            ack = yield from self._failover(spec, payload, owners)
        return ack

    def lookup_cohort(self, iteration: int, members: int,
                      num_partitions: int, cohort: str):
        spec = REQUEST_TABLE["lookup_cohort"]
        reply = None
        for owners, count in self._split_cohort(
                iteration, members, num_partitions).items():
            payload = {"count": count, "cohort": cohort}
            reply = yield from self._failover(spec, payload, owners)
        return reply
