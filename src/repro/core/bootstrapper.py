"""The bootstrapper: task owner, assignment builder, schedule announcer.

"A bootstrapper is the initiator of a federated learning task … assumed to
have good network connectivity" (Sec. II).  In this protocol it addition-
ally runs the directory service; here it also computes the static
*assignment*: which aggregators own which partition (the sets ``A_i``),
which trainers report to which aggregator (the sets ``T_ij``), and which
IPFS provider nodes serve each aggregator (the sets ``P_ij``,
Sec. III-E).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..net import Transport
from ..sim import Simulator
from .config import ProtocolConfig
from .schedule import IterationSchedule

__all__ = ["Assignment", "build_assignment", "Bootstrapper",
           "optimal_provider_count"]

SCHEDULE_WIRE_SIZE = 96
KIND_SCHEDULE = "boot.schedule"


def optimal_provider_count(num_trainers: int,
                           aggregator_bandwidth: float = 1.0,
                           node_bandwidth: float = 1.0) -> int:
    """The paper's analytic optimum |P_ij| = sqrt(b·|T_ij|/d).

    With equal bandwidths this is sqrt(|T_ij|) — e.g. 4 providers for the
    16-trainer Fig. 1 experiment.
    """
    if num_trainers < 1:
        raise ValueError("num_trainers must be >= 1")
    if aggregator_bandwidth <= 0 or node_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")
    optimum = math.sqrt(
        aggregator_bandwidth * num_trainers / node_bandwidth
    )
    return max(1, round(optimum))


@dataclass
class Assignment:
    """The static role/topology assignment of one FL task."""

    #: partition -> ordered aggregator names (the set A_i).
    aggregators_for: Dict[int, List[str]] = field(default_factory=dict)
    #: aggregator -> its partition.
    partition_of: Dict[str, int] = field(default_factory=dict)
    #: (partition, aggregator) -> trainer names (the set T_ij).
    trainers_of: Dict[Tuple[int, str], List[str]] = field(default_factory=dict)
    #: (trainer, partition) -> its aggregator (A_t[i] in Algorithm 1).
    aggregator_of: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: aggregator -> its IPFS provider nodes (the set P_ij).
    providers_of: Dict[str, List[str]] = field(default_factory=dict)
    #: aggregator -> the node it uploads partial/global updates to
    #: (spread round-robin over all nodes to avoid hot spots).
    update_node_of: Dict[str, str] = field(default_factory=dict)
    #: (trainer, partition) -> the IPFS node it must upload to.
    upload_node: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: All storage nodes in the deployment (fallback upload targets).
    storage_nodes: List[str] = field(default_factory=list)

    @property
    def num_partitions(self) -> int:
        return len(self.aggregators_for)

    def peers_of(self, aggregator: str) -> List[str]:
        """The other aggregators responsible for the same partition."""
        partition = self.partition_of[aggregator]
        return [name for name in self.aggregators_for[partition]
                if name != aggregator]


def build_assignment(
    config: ProtocolConfig,
    trainer_names: Sequence[str],
    aggregator_names: Sequence[str],
    ipfs_names: Sequence[str],
) -> Assignment:
    """Construct the task assignment.

    Aggregators are dealt round-robin over partitions (each aggregator is
    responsible for exactly one partition, matching the paper's experi-
    ments); each partition's trainer set is split evenly across its |A_i|
    aggregators; provider sets are assigned contiguously over the IPFS
    node list, wrapping as needed.
    """
    required = config.num_partitions * config.aggregators_per_partition
    if len(aggregator_names) != required:
        raise ValueError(
            f"need exactly {required} aggregators "
            f"({config.num_partitions} partitions x "
            f"{config.aggregators_per_partition}), got {len(aggregator_names)}"
        )
    if not trainer_names:
        raise ValueError("need at least one trainer")
    if not ipfs_names:
        raise ValueError("need at least one IPFS node")

    rng = random.Random(config.seed)
    assignment = Assignment()
    assignment.storage_nodes = list(ipfs_names)

    # A_i: deal aggregators over partitions.
    for index, name in enumerate(aggregator_names):
        partition = index % config.num_partitions
        assignment.aggregators_for.setdefault(partition, []).append(name)
        assignment.partition_of[name] = partition

    # T_ij: for every partition, split all trainers across its aggregators.
    for partition in range(config.num_partitions):
        owners = assignment.aggregators_for[partition]
        shuffled = list(trainer_names)
        rng.shuffle(shuffled)
        for position, trainer in enumerate(shuffled):
            owner = owners[position % len(owners)]
            assignment.trainers_of.setdefault(
                (partition, owner), []
            ).append(trainer)
            assignment.aggregator_of[(trainer, partition)] = owner
        for owner in owners:
            assignment.trainers_of.setdefault((partition, owner), [])

    # P_ij: provider nodes per aggregator.
    node_cursor = 0
    for index, name in enumerate(aggregator_names):
        assignment.update_node_of[name] = ipfs_names[index % len(ipfs_names)]
    for name in aggregator_names:
        partition = assignment.partition_of[name]
        trainer_count = len(assignment.trainers_of[(partition, name)])
        count = config.providers_per_aggregator or optimal_provider_count(
            max(1, trainer_count)
        )
        count = min(count, len(ipfs_names))
        providers = [
            ipfs_names[(node_cursor + offset) % len(ipfs_names)]
            for offset in range(count)
        ]
        node_cursor += count
        assignment.providers_of[name] = providers

    # Upload targets: with merge-and-download, a trainer "is required to
    # upload its gradients to a node from P_ij"; otherwise it uses a fixed
    # nearby node.
    for partition in range(config.num_partitions):
        for owner in assignment.aggregators_for[partition]:
            for position, trainer in enumerate(
                assignment.trainers_of[(partition, owner)]
            ):
                if config.merge_and_download:
                    providers = assignment.providers_of[owner]
                    node = providers[position % len(providers)]
                else:
                    trainer_index = list(trainer_names).index(trainer)
                    node = ipfs_names[trainer_index % len(ipfs_names)]
                assignment.upload_node[(trainer, partition)] = node

    return assignment


class Bootstrapper:
    """Announces per-iteration schedules to all participants."""

    def __init__(self, sim: Simulator, transport: Transport,
                 name: str = "directory"):
        # The bootstrapper shares the directory's well-connected host.
        self.sim = sim
        self.name = name
        self.endpoint = transport.endpoint(name)

    def announce(self, schedule: IterationSchedule,
                 participants: Sequence[str]):
        """Send the schedule to every participant; returns when delivered."""
        deliveries = [
            self.endpoint.send(
                participant, KIND_SCHEDULE, payload=schedule,
                size=SCHEDULE_WIRE_SIZE,
            )
            for participant in participants
        ]
        return self.sim.all_of(deliveries)
