"""Session orchestration: wiring the whole deployment and running rounds.

:class:`FLSession` builds the emulated network, the IPFS nodes, the
directory service and all participants from a :class:`ProtocolConfig`,
then drives training iterations and collects the telemetry the paper's
figures report.

The deployment shape is described by three composable profiles — a
:class:`~repro.net.NetworkProfile`, an optional
:class:`~repro.faults.FaultPlan` and a
:class:`~repro.core.dirshard.DirectoryProfile`::

    session = FLSession(config, model_factory, datasets,
                        network=NetworkProfile(bandwidth_mbps=20.0),
                        faults=FaultPlan.of(...),
                        directory=DirectoryProfile(shards=4))

The nine legacy network keyword arguments (``num_ipfs_nodes``,
``bandwidth_mbps``, ...) still work through a deprecation shim.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..faults import FaultInjector, FaultPlan, RetryExhaustedError, \
    RetryPolicy
from ..ipfs import DHT, IPFSNode, KademliaDHT, PubSub, ReplicationCluster
from ..ml import Dataset, Model
from ..net import NetworkProfile, Testbed, add_directory_shards, \
    build_testbed
from ..obs import TelemetryCollector
from ..obs.events import IterationFinished, IterationStarted, \
    ParticipantDegraded
from ..sim import Interrupt, Simulator
from .adversary import AggregatorBehavior
from .aggregator import Aggregator
from .bootstrapper import Assignment, Bootstrapper, build_assignment
from .cohort import CohortCoordinator, CohortPlan
from .config import ProtocolConfig
from .directory import DirectoryService
from .dirshard import DirectoryProfile, ShardMap, ShardRouter, \
    ShardedDirectory
from .partition import ModelPartitioner
from .schedule import IterationSchedule
from .telemetry import IterationMetrics, SessionMetrics
from .trainer import Trainer
from .verification import PartitionCommitter

__all__ = ["FLSession"]


class FLSession:
    """A complete decentralized FL deployment in one object."""

    def __init__(
        self,
        config: ProtocolConfig,
        model_factory: Callable[[], Model],
        datasets: Sequence[Dataset],
        network: Optional[NetworkProfile] = None,
        faults: Optional[FaultPlan] = None,
        directory: Optional[DirectoryProfile] = None,
        behaviors: Optional[Dict[str, AggregatorBehavior]] = None,
        sim: Optional[Simulator] = None,
        cohort: Optional[CohortPlan] = None,
        **legacy,
    ):
        """
        Parameters
        ----------
        config:
            Protocol parameters (partitions, |A_i|, deadlines, verifiability,
            merge-and-download, ...).
        model_factory:
            Builds one model instance; every trainer starts from a clone of
            the same template, as all IPLS participants share the initial
            model.
        datasets:
            One local shard per trainer; their count fixes the number of
            trainers.
        network:
            The infrastructure profile (topology, bandwidths, DHT mode,
            replication, retry/timeout policy).  Defaults to
            ``NetworkProfile()`` — the historical testbed.
        faults:
            Optional deterministic fault schedule, executed by a
            :class:`~repro.faults.FaultInjector` alongside the protocol.
            When set, the profile's retry policy and directory request
            timeout default on (so outages degrade rather than wedge).
        directory:
            How the directory service is deployed
            (:class:`~repro.core.dirshard.DirectoryProfile`).  The
            default — and any profile with ``shards=1`` — is the classic
            single well-known server, byte-identical to pre-profile
            sessions; ``shards >= 2`` runs one shard per key range on
            its own host, with participants routing through a
            :class:`~repro.core.dirshard.ShardRouter`.
        behaviors:
            Optional per-aggregator behaviours keyed by aggregator name
            ("aggregator-0", ...); unnamed aggregators are honest.
        cohort:
            Optional :class:`~repro.core.cohort.CohortPlan` scaling the
            deployment beyond the exactly-simulated trainers: the
            datasets define the exact sample, and the plan's remaining
            ``population`` is modeled statistically per cohort (directory
            and link load applied in aggregate, no protocol state).  A
            plan whose population equals ``len(datasets)`` is exact mode
            and builds no cohort machinery at all.
        **legacy:
            The nine pre-profile network keyword arguments
            (``num_ipfs_nodes``, ``bandwidth_mbps``, ...), accepted with
            a :class:`DeprecationWarning`.
        """
        if not datasets:
            raise ValueError("need at least one trainer dataset")
        if legacy:
            unknown = set(legacy) - set(NetworkProfile.LEGACY_FIELDS)
            if unknown:
                raise TypeError(
                    "FLSession got unexpected keyword argument(s): "
                    + ", ".join(sorted(unknown))
                )
            if network is not None:
                raise TypeError(
                    "pass network=NetworkProfile(...) or the legacy "
                    "network keyword arguments, not both"
                )
            if "directory_processing_delay" in legacy:
                # The directory knobs moved to their own profile.
                warnings.warn(
                    "FLSession's directory_processing_delay keyword is "
                    "deprecated; pass directory=DirectoryProfile("
                    "processing_delay=...) instead",
                    DeprecationWarning, stacklevel=2,
                )
            warnings.warn(
                "FLSession's individual network keyword arguments are "
                "deprecated; pass network=NetworkProfile(...) instead",
                DeprecationWarning, stacklevel=2,
            )
            network = NetworkProfile(**legacy)
        profile = network if network is not None else NetworkProfile()
        if faults:
            # A chaos run must degrade, not wedge: default the robustness
            # knobs on unless the profile pins them explicitly.
            if profile.directory_request_timeout is None:
                profile = replace(profile, directory_request_timeout=15.0)
            if profile.retry is None:
                profile = replace(profile, retry=RetryPolicy())
        #: The resolved infrastructure profile this session runs on.
        self.network_profile: NetworkProfile = profile
        #: The fault schedule (None or an empty plan means honest infra).
        self.faults: Optional[FaultPlan] = faults if faults else None
        self.config = config
        num_trainers = len(datasets)
        num_aggregators = (
            config.num_partitions * config.aggregators_per_partition
        )
        self.testbed: Testbed = build_testbed(
            sim=sim,
            num_trainers=num_trainers,
            num_aggregators=num_aggregators,
            num_ipfs_nodes=profile.num_ipfs_nodes,
            bandwidth_mbps=profile.bandwidth_mbps,
            aggregator_bandwidth_mbps=profile.aggregator_bandwidth_mbps,
            trainer_bandwidths_mbps=profile.trainer_bandwidths_mbps,
            latency=profile.latency,
        )
        self.sim = self.testbed.sim
        if profile.dht_mode == "kademlia":
            self.dht = KademliaDHT(self.sim, network=self.testbed.network,
                                   lookup_delay=profile.dht_lookup_delay,
                                   seed=config.seed)
        else:
            self.dht = DHT(self.sim, lookup_delay=profile.dht_lookup_delay,
                           seed=config.seed)
        self.pubsub = PubSub(self.testbed.transport)
        self.nodes: List[IPFSNode] = [
            IPFSNode(self.sim, self.testbed.transport, self.dht, name,
                     chunk_size=config.chunk_size)
            for name in self.testbed.ipfs_names
        ]
        if profile.dht_mode == "kademlia":
            for name in self.testbed.ipfs_names:
                self.dht.join(name)
        self.cluster = None
        if profile.replication_factor is not None:
            self.cluster = ReplicationCluster(
                self.sim, self.nodes,
                replication_factor=profile.replication_factor,
            )

        # -- model segmentation ------------------------------------------------
        self._template = model_factory()
        self.partitioner = ModelPartitioner(
            self._template.num_params(), config.num_partitions
        )
        self.committers: Dict[int, PartitionCommitter] = {}
        if config.verifiable:
            by_length: Dict[int, PartitionCommitter] = {}
            for partition_id in range(config.num_partitions):
                length = self.partitioner.partition_size(partition_id)
                if length not in by_length:
                    by_length[length] = PartitionCommitter(
                        length, curve=config.curve,
                        fractional_bits=config.fractional_bits,
                    )
                self.committers[partition_id] = by_length[length]

        # -- assignment and directory ---------------------------------------------
        self.assignment: Assignment = build_assignment(
            config,
            trainer_names=self.testbed.trainer_names,
            aggregator_names=self.testbed.aggregator_names,
            ipfs_names=self.testbed.ipfs_names,
        )
        #: The resolved directory deployment profile.
        self.directory_profile: DirectoryProfile = (
            directory if directory is not None else DirectoryProfile()
        )
        dir_profile = self.directory_profile
        directory_delay = (
            dir_profile.processing_delay
            if dir_profile.processing_delay is not None
            else profile.directory_processing_delay
        )
        #: Key placement when sharded; None on the single-server path.
        self._shard_map: Optional[ShardMap] = None
        if dir_profile.shards <= 1:
            # The classic single well-known server — the exact pre-shard
            # construction path, byte-identical under seeded replay.
            self.directory = DirectoryService(
                self.sim,
                self.testbed.transport,
                self.dht,
                name=self.testbed.directory_name,
                committers=self.committers,
                trainer_assignment=self.assignment.aggregator_of,
                verifiable=config.verifiable
                and config.directory_verification,
                expected_trainers=num_trainers,
                processing_delay=directory_delay,
            )
        else:
            shard_names = add_directory_shards(
                self.testbed.network,
                self.testbed.transport,
                dir_profile.shards,
                bandwidth_mbps=dir_profile.bandwidth_mbps,
            )
            self.directory = ShardedDirectory(
                self.sim,
                self.testbed.transport,
                self.dht,
                shard_names=shard_names,
                committers=self.committers,
                trainer_assignment=self.assignment.aggregator_of,
                verifiable=config.verifiable
                and config.directory_verification,
                expected_trainers=num_trainers,
                processing_delay=directory_delay,
            )
            self._shard_map = ShardMap(
                shard_names,
                replication=dir_profile.replication,
                placement=dir_profile.placement,
            )
        self.bootstrapper = Bootstrapper(
            self.sim, self.testbed.transport,
            name=self.testbed.directory_name,
        )

        #: None on the single-server path (participants then build the
        #: classic :class:`DirectoryClient` themselves — the byte-exact
        #: legacy code path); a ShardRouter factory when sharded.
        self._directory_factory = None
        if self._shard_map is not None:
            shard_map = self._shard_map

            def directory_factory(name, transport, retry=None,
                                  request_timeout=None):
                return ShardRouter(
                    name, transport, shard_map=shard_map,
                    retry=retry, request_timeout=request_timeout,
                )

            self._directory_factory = directory_factory

        # -- participants ----------------------------------------------------------
        behaviors = behaviors or {}
        self.trainers: List[Trainer] = []
        for index, name in enumerate(self.testbed.trainer_names):
            model = self._template.clone()
            self.trainers.append(Trainer(
                name=name,
                sim=self.sim,
                transport=self.testbed.transport,
                dht=self.dht,
                config=config,
                assignment=self.assignment,
                partitioner=self.partitioner,
                model=model,
                dataset=datasets[index],
                committers=self.committers,
                seed=config.seed + index,
                retry=profile.retry,
                directory_request_timeout=profile.directory_request_timeout,
                ipfs_request_timeout=profile.ipfs_request_timeout,
                directory_factory=self._directory_factory,
            ))
        self.aggregators: List[Aggregator] = []
        for name in self.testbed.aggregator_names:
            partition_id = self.assignment.partition_of[name]
            self.aggregators.append(Aggregator(
                name=name,
                sim=self.sim,
                transport=self.testbed.transport,
                dht=self.dht,
                pubsub=self.pubsub,
                config=config,
                assignment=self.assignment,
                partition_len=self.partitioner.partition_size(partition_id),
                committer=self.committers.get(partition_id),
                behavior=behaviors.get(name),
                retry=profile.retry,
                directory_request_timeout=profile.directory_request_timeout,
                ipfs_request_timeout=profile.ipfs_request_timeout,
                directory_factory=self._directory_factory,
            ))

        # -- statistical cohorts (scaling beyond the exact sample) --------------
        #: Exact mode (no plan, or population == sampled trainers) builds
        #: nothing here, keeping the session byte-identical to the
        #: per-trainer code path.
        self.cohort_plan: Optional[CohortPlan] = cohort
        self.cohorts: List[CohortCoordinator] = []
        if cohort is not None:
            from ..net.units import mbps

            member_counts = cohort.member_counts(num_trainers)
            trainer_bw = mbps(profile.bandwidth_mbps)
            bytes_per_trainer = float(sum(
                (self.partitioner.partition_size(pid) + 1) * 8
                for pid in range(config.num_partitions)
            ))
            for index, members in enumerate(member_counts):
                name = f"cohort-{index}"
                self.testbed.network.add_host(
                    name,
                    up_bandwidth=members * trainer_bw,
                    down_bandwidth=members * trainer_bw,
                )
                self.cohorts.append(CohortCoordinator(
                    name=name,
                    sim=self.sim,
                    transport=self.testbed.transport,
                    network=self.testbed.network,
                    config=config,
                    members=members,
                    upload_bytes_per_trainer=bytes_per_trainer,
                    download_bytes_per_trainer=bytes_per_trainer,
                    storage_node=self.testbed.ipfs_names[
                        index % len(self.testbed.ipfs_names)],
                    directory_name=self.testbed.directory_name,
                    seed=cohort.seed + index,
                    directory=(
                        None if self._directory_factory is None
                        # Cohorts carry no retry policy (bulk load either
                        # lands or the cohort degrades), so their routers
                        # are built bare too.
                        else self._directory_factory(
                            name, self.testbed.transport
                        )
                    ),
                ))

        #: Telemetry is an ordinary bus subscriber: the protocol publishes
        #: events and this collector folds them into the paper's metrics.
        #: Close it (``session.telemetry.close()``) for an unobserved run.
        self.telemetry = TelemetryCollector(self.sim.bus)
        self.metrics: SessionMetrics = self.telemetry.session
        self._iteration = 0

        #: participant name -> its supervised process for the current
        #: round (the handle the fault injector interrupts).
        self._round_processes: Dict[str, object] = {}
        self._injector: Optional[FaultInjector] = None
        if self.faults:
            self._injector = FaultInjector(self, self.faults)
            self._injector.start()

    # -- driving rounds ---------------------------------------------------------

    def run_iteration(self) -> Optional[IterationMetrics]:
        """Execute one full training round.

        Returns the round's metrics, assembled by :attr:`telemetry` from
        the events the participants published — or None when telemetry
        has been closed (an unobserved run).
        """
        iteration = self._iteration
        self._iteration += 1
        schedule = IterationSchedule.from_durations(
            iteration, self.sim.now, self.config.t_train, self.config.t_sync
        )
        bus = self.sim.bus
        if bus.wants(IterationStarted):
            bus.publish(IterationStarted(at=self.sim.now,
                                         iteration=iteration,
                                         t_train=schedule.t_train,
                                         t_sync=schedule.t_sync))
        # Arm the directory's gradient-registration cutoff so late
        # registrations can never enter the accumulated commitments.
        self.directory.begin_iteration(iteration, schedule.t_train)

        def driver():
            participants = (
                [t.name for t in self.trainers]
                + [a.name for a in self.aggregators]
                + [c.name for c in self.cohorts]
            )
            yield self.bootstrapper.announce(schedule, participants)
            self._round_processes = {}
            processes = []
            for role, members in (("trainer", self.trainers),
                                  ("aggregator", self.aggregators)):
                for participant in members:
                    process = self._spawn_participant(
                        participant, role, schedule
                    )
                    if process is not None:
                        processes.append(process)
            for coordinator in self.cohorts:
                processes.append(self.sim.process(
                    coordinator.run_iteration(schedule),
                    name=f"{coordinator.name}:i{iteration}",
                ))
            if processes:
                yield self.sim.all_of(processes)

        driver_proc = self.sim.process(driver(), name=f"round:{iteration}")
        self.sim.run_until(driver_proc)
        if not driver_proc.ok:
            raise driver_proc.value
        if bus.wants(IterationFinished):
            bus.publish(IterationFinished(at=self.sim.now,
                                          iteration=iteration))
        if self.metrics.iterations and \
                self.metrics.iterations[-1].iteration == iteration:
            return self.metrics.iterations[-1]
        return None

    def run(self, rounds: int) -> SessionMetrics:
        """Run ``rounds`` iterations back to back."""
        for _ in range(rounds):
            self.run_iteration()
        return self.metrics

    # -- supervision (fault tolerance) -----------------------------------------

    def _spawn_participant(self, participant, role: str,
                           schedule: IterationSchedule):
        """Spawn one participant's supervised round process.

        Participants inside a crash window are not spawned at all (they
        late-join from the round after their fault heals); the round
        records them as degraded.
        """
        if self._injector is not None \
                and self._injector.is_down(participant.name) is not None:
            self._degrade(schedule.iteration, participant.name, role,
                          "offline (fault window)")
            return None
        process = self.sim.process(
            self._supervised(participant, role, schedule),
            name=f"{participant.name}:i{schedule.iteration}",
        )
        self._round_processes[participant.name] = process
        return process

    def _supervised(self, participant, role: str,
                    schedule: IterationSchedule):
        """Run one participant round, absorbing injected failures.

        A fault-injected crash (:class:`Interrupt`) or an exhausted
        retry budget ends the participant's round, interrupts its
        orphaned child processes, and records the participant as
        degraded — the round itself carries on for everyone else.
        """
        completed_before = getattr(participant, "completed_iterations",
                                   None)
        try:
            yield from participant.run_iteration(schedule)
        except Interrupt:
            self._interrupt_children(participant)
            self._degrade(schedule.iteration, participant.name, role,
                          "crashed (fault injection)")
            return
        except RetryExhaustedError as exc:
            self._interrupt_children(participant)
            self._degrade(schedule.iteration, participant.name, role,
                          f"retries exhausted ({exc.operation})")
            return
        if (self.faults is not None and role == "trainer"
                and participant.completed_iterations == completed_before):
            # Under churn, a trainer that silently aborted its round
            # (deadline missed, storage unreachable) is degradation the
            # accounting must show.
            self._degrade(schedule.iteration, participant.name, role,
                          "round not completed")

    def _interrupt_children(self, participant) -> None:
        for child in getattr(participant, "active_children", ()):
            if child.is_alive:
                child.interrupt("parent degraded")

    def _degrade(self, iteration: int, name: str, role: str,
                 reason: str) -> None:
        bus = self.sim.bus
        if bus.wants(ParticipantDegraded):
            bus.publish(ParticipantDegraded(
                at=self.sim.now, iteration=iteration, participant=name,
                role=role, reason=reason,
            ))

    # -- identity -----------------------------------------------------------------

    def fingerprint(self) -> Dict[str, object]:
        """A stable scenario description for run manifests.

        Covers the protocol config plus the deployment shape (role
        counts and the distinct link capacities), so two manifests
        compare apples-to-apples only when their digests match.
        """
        from ..obs.manifest import config_fingerprint

        capacities = sorted({
            (host.up_bandwidth, host.down_bandwidth)
            for host in self.testbed.network.hosts()
        })
        extra: Dict[str, object] = {}
        if self._shard_map is not None:
            # Sharded mode only: a shards=1 profile must fingerprint
            # identically to a session built with no profile at all.
            extra["directory_shards"] = self.directory_profile.shards
            extra["directory_replication"] = \
                self.directory_profile.replication
            extra["directory_placement"] = self.directory_profile.placement
        if self.cohorts:
            # Statistical mode only: an exact-mode session (sample = 100%)
            # must fingerprint identically to a plain per-trainer run.
            extra["cohort_population"] = self.cohort_plan.population
            extra["cohorts"] = len(self.cohorts)
            extra["cohort_seed"] = self.cohort_plan.seed
        if self.sim.bus.sampling is not None:
            # A sampled event stream yields different telemetry: never
            # diff it against an unsampled (or differently-sampled) run.
            extra["event_sampling"] = self.sim.bus.sampling.describe()
        return config_fingerprint(
            self.config,
            trainers=len(self.trainers),
            aggregators=len(self.aggregators),
            ipfs_nodes=len(self.nodes),
            link_capacities=capacities,
            **extra,
        )

    # -- storage management --------------------------------------------------------

    def collect_garbage(self, keep_iterations: int = 1) -> float:
        """Reclaim storage from finished iterations.

        The paper: "in our protocol both gradients and updates [are] only
        needed for a short period of time".  Unpins every object from
        iterations older than the last ``keep_iterations`` on all nodes,
        withdraws their DHT records, and runs each node's GC.  Returns
        the number of bytes reclaimed network-wide.
        """
        cutoff = self._iteration - keep_iterations
        for entry in self.directory.entries_before(cutoff):
            for node in self.nodes:
                node.unpin_object(entry.cid)
        reclaimed = 0.0
        for node in self.nodes:
            before = node.store.total_bytes
            for cid in node.store.collect_garbage():
                self.dht.unprovide(cid, node.name)
            reclaimed += before - node.store.total_bytes
        return reclaimed

    @property
    def storage_bytes(self) -> float:
        """Bytes currently resident across all storage nodes."""
        return float(sum(node.store.total_bytes for node in self.nodes))

    # -- results ------------------------------------------------------------------

    def model_of(self, index: int = 0) -> Model:
        """The current model of trainer ``index``."""
        return self.trainers[index].model

    def consensus_params(self) -> np.ndarray:
        """The shared model parameters, asserting all trainers agree."""
        reference = self.trainers[0].model.get_params()
        for trainer in self.trainers[1:]:
            if not np.allclose(trainer.model.get_params(), reference,
                               atol=1e-12):
                raise AssertionError(
                    f"trainer {trainer.name} diverged from trainer 0"
                )
        return reference
