"""Model segmentation and the gradient-partition wire format.

IPLS "segment[s] the parameters vector of the machine learning model into
smaller partitions, which are then separately aggregated by different
participants".  A :class:`ModelPartitioner` maps a flat vector to
near-equal contiguous slices and back.

The wire format of one uploaded partition is a float64 array of the
partition's values with one extra trailing element: the averaging counter
the trainers initialize to 1 (Algorithm 1 line 14) and aggregators sum
along with the data, so that downloaders can divide by it (line 21).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "ModelPartitioner",
    "encode_partition",
    "decode_partition",
    "sum_encoded_partitions",
]


class ModelPartitioner:
    """Splits a ``num_params`` vector into ``num_partitions`` slices."""

    def __init__(self, num_params: int, num_partitions: int):
        if num_params < 1:
            raise ValueError("num_params must be >= 1")
        if not 1 <= num_partitions <= num_params:
            raise ValueError(
                "num_partitions must be between 1 and num_params"
            )
        self.num_params = num_params
        self.num_partitions = num_partitions
        base, extra = divmod(num_params, num_partitions)
        self._bounds: List[Tuple[int, int]] = []
        start = 0
        for index in range(num_partitions):
            length = base + (1 if index < extra else 0)
            self._bounds.append((start, start + length))
            start += length

    def bounds(self, partition_id: int) -> Tuple[int, int]:
        """[start, end) slice of partition ``partition_id``."""
        return self._bounds[partition_id]

    def partition_size(self, partition_id: int) -> int:
        start, end = self._bounds[partition_id]
        return end - start

    def split(self, vector: np.ndarray) -> List[np.ndarray]:
        """Slice a flat vector into its partitions (views copied)."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self.num_params:
            raise ValueError(
                f"expected {self.num_params} values, got {vector.shape[0]}"
            )
        return [vector[start:end].copy() for start, end in self._bounds]

    def join(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate partitions back into the flat vector."""
        if len(parts) != self.num_partitions:
            raise ValueError(
                f"expected {self.num_partitions} parts, got {len(parts)}"
            )
        for index, part in enumerate(parts):
            if part.shape[0] != self.partition_size(index):
                raise ValueError(
                    f"partition {index} has wrong length {part.shape[0]}"
                )
        return np.concatenate([np.asarray(p, dtype=np.float64)
                               for p in parts])


def encode_partition(values: np.ndarray, counter: float = 1.0) -> bytes:
    """Wire-encode one partition: ``values || counter`` as float64."""
    array = np.asarray(values, dtype=np.float64).ravel()
    return np.concatenate([array, [float(counter)]]).tobytes()


def decode_partition(blob: bytes) -> Tuple[np.ndarray, float]:
    """Inverse of :func:`encode_partition`; returns (values, counter)."""
    if len(blob) % 8 != 0 or len(blob) < 16:
        raise ValueError("partition blob must hold >= 2 float64 values")
    array = np.frombuffer(blob, dtype=np.float64)
    return array[:-1].copy(), float(array[-1])


def sum_encoded_partitions(blobs: Sequence[bytes]) -> bytes:
    """Element-wise sum of encoded partitions (counters add up too).

    This is the aggregator's summation and also exactly what the
    merge-and-download provider computes (the ``sum-f64`` merger).
    """
    if not blobs:
        raise ValueError("nothing to sum")
    arrays = [np.frombuffer(blob, dtype=np.float64) for blob in blobs]
    length = arrays[0].shape[0]
    for array in arrays:
        if array.shape[0] != length:
            raise ValueError("partition length mismatch")
    return np.sum(arrays, axis=0).tobytes()
