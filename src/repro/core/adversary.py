"""Aggregator behaviours: honest and malicious (Sec. III-A).

"We consider malicious aggregators that can either *drop* or *alter* the
gradients received by trainers."  A behaviour hooks the two places an
aggregator handles data: selecting which received gradients enter its sum,
and producing the bytes it uploads.  Verifiable aggregation must detect
every one of these.
"""

from __future__ import annotations

from typing import Dict

from .partition import decode_partition, encode_partition

__all__ = [
    "AggregatorBehavior",
    "HonestBehavior",
    "DropGradientsBehavior",
    "AlterUpdateBehavior",
    "LazyBehavior",
    "ReplayUpdateBehavior",
]


class AggregatorBehavior:
    """Strategy interface; the default is honest."""

    #: Human-readable tag used in telemetry.
    name = "honest"

    def select_gradients(self, blobs: Dict[str, bytes]) -> Dict[str, bytes]:
        """Choose which received gradient blobs enter the aggregation."""
        return blobs

    def tamper_update(self, blob: bytes) -> bytes:
        """Transform the aggregate before uploading it."""
        return blob


class HonestBehavior(AggregatorBehavior):
    """Follows the protocol."""


class DropGradientsBehavior(AggregatorBehavior):
    """Silently omits a fraction of trainers' gradients.

    The incompleteness attack: "deny downloading updates from some clients
    to save bandwidth and power".
    """

    name = "drop"

    def __init__(self, keep_fraction: float = 0.5):
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        self.keep_fraction = keep_fraction

    def select_gradients(self, blobs: Dict[str, bytes]) -> Dict[str, bytes]:
        keep = max(1, int(len(blobs) * self.keep_fraction)) if blobs else 0
        kept_keys = sorted(blobs)[:keep]
        return {key: blobs[key] for key in kept_keys}


class AlterUpdateBehavior(AggregatorBehavior):
    """Perturbs the aggregate (model-poisoning attack)."""

    name = "alter"

    def __init__(self, offset: float = 1.0):
        self.offset = offset

    def tamper_update(self, blob: bytes) -> bytes:
        values, counter = decode_partition(blob)
        tampered = values + self.offset
        return encode_partition(tampered, counter)


class ReplayUpdateBehavior(AggregatorBehavior):
    """Replays the previous round's aggregate instead of computing a new
    one — the cheapest possible "lazy server" that still looks active.

    Verifiable aggregation catches it because each round's accumulated
    commitment binds *that round's* gradients: a stale pre-image fails
    the product check.
    """

    name = "replay"

    def __init__(self):
        self._previous: bytes = b""

    def tamper_update(self, blob: bytes) -> bytes:
        replayed = self._previous or blob  # first round: nothing to replay
        self._previous = blob
        return replayed


class LazyBehavior(AggregatorBehavior):
    """Aggregates only the first few gradients to "reduce costs by
    performing less accurate computations"."""

    name = "lazy"

    def __init__(self, max_gradients: int = 1):
        if max_gradients < 1:
            raise ValueError("max_gradients must be >= 1")
        self.max_gradients = max_gradients

    def select_gradients(self, blobs: Dict[str, bytes]) -> Dict[str, bytes]:
        kept_keys = sorted(blobs)[: self.max_gradients]
        return {key: blobs[key] for key in kept_keys}
