"""The aggregator role (Algorithm 1, ``AGGREGATOR`` + Sec. IV-B sync).

Per iteration an aggregator responsible for partition ``i``:

1. polls the directory for its trainers' gradient CIDs and downloads them
   — either individually, or via *merge-and-download* requests that make
   each provider node pre-aggregate the gradients it stores (Sec. III-E),
2. sums them into its partial update,
3. if it shares the partition with peers (|A_i| > 1): uploads the partial,
   announces its CID over pub/sub, collects and (in verifiable mode)
   checks the peers' partials against the directory's per-aggregator
   accumulated commitments, taking over a silent peer's trainers after a
   grace period,
4. uploads the globally updated partition; the directory keeps the first
   (verified) registration.

Malicious behaviours plug in via :class:`~repro.core.adversary.
AggregatorBehavior` and tamper with steps 2 and 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..crypto import Commitment
from ..faults.retry import RetryExhaustedError, RetryPolicy
from ..ipfs import DHT, IPFSClient, IPFSError, PubSub
from ..net import Transport
from ..obs.events import (
    BytesReceived,
    GradientsAggregated,
    PartialUpdateRegistered,
    SyncPhaseEnded,
    SyncPhaseStarted,
    TakeoverPerformed,
    UpdateRegistered,
    VerificationFailed,
)
from ..sim import Interrupt, Simulator
from .addressing import Address, GRADIENT, PARTIAL_UPDATE, UPDATE
from .adversary import AggregatorBehavior, HonestBehavior
from .bootstrapper import Assignment
from .config import ProtocolConfig
from .directory import DirectoryClient
from .partition import decode_partition, encode_partition, \
    sum_encoded_partitions
from .schedule import IterationSchedule
from .verification import CommitmentCostModel, PartitionCommitter

__all__ = ["Aggregator", "sync_topic"]

CID_WIRE_SIZE = 64


def sync_topic(partition_id: int, iteration: int) -> str:
    """The pub/sub topic aggregators of one partition synchronize on."""
    return f"ipls/sync/p{partition_id}/i{iteration}"


class Aggregator:
    """One aggregator participant."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        transport: Transport,
        dht: DHT,
        pubsub: PubSub,
        config: ProtocolConfig,
        assignment: Assignment,
        partition_len: int = 0,
        committer: Optional[PartitionCommitter] = None,
        behavior: Optional[AggregatorBehavior] = None,
        retry: Optional[RetryPolicy] = None,
        directory_request_timeout: Optional[float] = None,
        ipfs_request_timeout: float = 120.0,
        directory_factory=None,
    ):
        self.name = name
        self.sim = sim
        self.config = config
        self.assignment = assignment
        self.pubsub = pubsub
        self.partition_len = partition_len
        self.committer = committer
        self.behavior = behavior or HonestBehavior()
        self.partition_id = assignment.partition_of[name]
        self.trainers = list(
            assignment.trainers_of[(self.partition_id, name)]
        )
        self.ipfs = IPFSClient(name, transport, dht,
                               request_timeout=ipfs_request_timeout,
                               chunk_size=config.chunk_size,
                               retry=retry)
        #: Directory access behind the abstract protocol (see
        #: :class:`repro.core.directory.Directory`).
        if directory_factory is None:
            self.directory = DirectoryClient(
                name, transport, retry=retry,
                request_timeout=directory_request_timeout,
            )
        else:
            self.directory = directory_factory(
                name, transport, retry=retry,
                request_timeout=directory_request_timeout,
            )
        self.cost_model = CommitmentCostModel(config.commit_seconds_per_param)
        self.dht = dht
        #: Child processes of the current round (download fan-out).
        self.active_children: List = []
        self._child_errors: List[Exception] = []

    def _spawn(self, generator, name: str):
        """Spawn a guarded child process (see ``Trainer._spawn``)."""
        process = self.sim.process(self._guard(generator), name=name)
        self.active_children.append(process)
        return process

    def _guard(self, generator):
        try:
            yield from generator
        except Interrupt:
            pass
        except RetryExhaustedError as exc:
            self._child_errors.append(exc)

    @property
    def _upload_node(self) -> str:
        return self.assignment.update_node_of[self.name]

    def _put_with_fallback(self, blob: bytes):
        """Store ``blob`` on the assigned node, falling back to any live
        node if it is unreachable.  Returns the CID or None."""
        candidates = [self._upload_node] + [
            node for node in self.assignment.storage_nodes
            if node != self._upload_node
        ]
        for node in candidates:
            try:
                cid = yield from self.ipfs.put(blob, node=node)
                return cid
            except IPFSError:
                continue
        return None

    # -- gradient collection ---------------------------------------------------------

    def _collect_gradients(self, schedule: IterationSchedule):
        """Download this aggregator's trainers' gradients.

        Returns ``(blobs, rows)``: trainer -> encoded partition, and the
        directory rows (with commitments) that produced them.
        """
        pending: Set[str] = set(self.trainers)
        rows_by_trainer: Dict[str, dict] = {}
        blobs: Dict[str, bytes] = {}
        download_procs = []

        def download(row):
            try:
                blob = yield from self.ipfs.get(row["cid"])
            except IPFSError:
                return
            blobs[row["uploader_id"]] = blob

        while pending and self.sim.now < schedule.t_sync:
            results = yield from self.directory.lookup(
                self.partition_id, schedule.iteration, GRADIENT,
                aggregator_id=self.name,
            )
            new_rows = [row for row in results
                        if row["uploader_id"] in pending]
            for row in new_rows:
                pending.discard(row["uploader_id"])
                rows_by_trainer[row["uploader_id"]] = row
                if not self.config.merge_and_download:
                    download_procs.append(self._spawn(
                        download(row),
                        name=f"{self.name}:dl:{row['uploader_id']}",
                    ))
            if not pending:
                break
            if self.sim.now >= schedule.t_train:
                # Late trainers have aborted; stop waiting for them.
                break
            yield self.sim.timeout(min(
                self.config.poll_interval,
                max(self.config.poll_interval / 10,
                    schedule.remaining_sync(self.sim.now)),
            ))

        if self.config.merge_and_download:
            merged = yield from self._merge_download(
                list(rows_by_trainer.values())
            )
            return merged, rows_by_trainer

        if download_procs:
            yield self.sim.all_of(download_procs)
        if self._child_errors:
            raise self._child_errors[0]
        return blobs, rows_by_trainer

    def _merge_download(self, rows: List[dict]):
        """Issue one merge-and-download per provider node holding data.

        Falls back to individual downloads for a group whose merged result
        fails the commitment-product check (malicious/corrupt provider).
        """
        groups: Dict[str, List[dict]] = {}
        for row in rows:
            providers = yield from self.dht.find_providers(
                row["cid"], querier=self.name
            )
            if not providers:
                continue
            groups.setdefault(providers[0], []).append(row)

        results: Dict[str, bytes] = {}

        def fetch_group(node, group):
            cids = [row["cid"] for row in group]
            try:
                merged, _count = yield from self.ipfs.merge_and_download(
                    cids, node=node
                )
            except IPFSError:
                merged = None
            if merged is not None and self._merged_is_valid(merged, group):
                results[node] = merged
                return
            # Fallback: fetch and sum each gradient individually.
            blobs = []
            for row in group:
                try:
                    blob = yield from self.ipfs.get(row["cid"])
                except IPFSError:
                    continue
                blobs.append(blob)
            if blobs:
                results[node] = sum_encoded_partitions(blobs)

        procs = [
            self._spawn(fetch_group(node, group),
                        name=f"{self.name}:merge:{node}")
            for node, group in groups.items()
        ]
        if procs:
            yield self.sim.all_of(procs)
        if self._child_errors:
            raise self._child_errors[0]
        # Keyed by provider node, so select_gradients (the adversary hook)
        # still sees per-source entries.
        return dict(results)

    def _merged_is_valid(self, merged: bytes, group: List[dict]) -> bool:
        """Sec. IV: the merged blob must open the product of the group's
        commitments."""
        if not self.config.verifiable or self.committer is None:
            return True
        commitments = [row["commitment"] for row in group]
        if any(commitment is None for commitment in commitments):
            return False
        expected = Commitment.product(commitments, self.committer.curve)
        return self.committer.verify_blob(merged, expected)

    # -- synchronization (|A_i| > 1) ----------------------------------------------------

    def _verify_peer_partial(self, peer: str, blob: bytes,
                             iteration: int):
        """Check a peer's partial against its accumulated commitment."""
        if not self.config.verifiable or self.committer is None:
            return True
        expected, count = yield from self.directory.accumulated(
            self.partition_id, iteration, aggregator_id=peer
        )
        if expected is None or count == 0:
            return False
        delay = self.cost_model.verify_delay(self.committer.partition_len + 1)
        if delay > 0:
            yield self.sim.timeout(delay)
        return self.committer.verify_blob(blob, expected)

    def _takeover(self, peer: str, schedule: IterationSchedule):
        """Download a silent peer's trainers' gradients on its behalf."""
        results = yield from self.directory.lookup(
            self.partition_id, schedule.iteration, GRADIENT,
            aggregator_id=peer,
        )
        blobs = []
        for row in results:
            try:
                blob = yield from self.ipfs.get(row["cid"])
            except IPFSError:
                continue
            blobs.append(blob)
        if not blobs:
            return None
        bus = self.sim.bus
        if bus.wants(TakeoverPerformed):
            bus.publish(TakeoverPerformed(
                at=self.sim.now, iteration=schedule.iteration,
                aggregator=self.name, peer=peer,
            ))
        return sum_encoded_partitions(blobs)

    # -- the per-iteration process --------------------------------------------------------

    def run_iteration(self, schedule: IterationSchedule):
        """Process generator executing one round for this aggregator.

        Reports outcomes (aggregation/sync timing, bytes moved,
        takeovers, rejections) as :mod:`repro.obs` events on ``sim.bus``.
        """
        bus = self.sim.bus
        self.active_children = []
        self._child_errors = []
        peers = self.assignment.peers_of(self.name)
        subscription = None
        if peers:
            subscription = self.pubsub.subscribe(
                sync_topic(self.partition_id, schedule.iteration), self.name
            )
        bytes_start = self.ipfs.bytes_downloaded
        collect_started = self.sim.now

        blobs, _rows = yield from self._collect_gradients(schedule)
        if bus.wants(GradientsAggregated):
            bus.publish(GradientsAggregated(
                at=self.sim.now, iteration=schedule.iteration,
                aggregator=self.name, partition_id=self.partition_id,
                started_at=collect_started,
            ))

        blobs = self.behavior.select_gradients(blobs)
        if blobs:
            partial_blob = sum_encoded_partitions(list(blobs.values()))
        elif self.partition_len > 0:
            partial_blob = encode_partition(
                np.zeros(self.partition_len), 0.0
            )
        else:
            partial_blob = None

        contributions: Dict[str, bytes] = {}
        if partial_blob is not None:
            contributions[self.name] = partial_blob

        try:
            if peers:
                yield from self._sync_phase(
                    schedule, partial_blob, peers, subscription,
                    contributions,
                )
            if not contributions:
                return
            if peers:
                # "Only the first aggregator who achieves the true globally
                # updated partition writes back to the directory": skip the
                # upload when a peer already registered this partition.
                existing = yield from self.directory.lookup(
                    self.partition_id, schedule.iteration, UPDATE
                )
                if existing:
                    return
            publish_started = self.sim.now
            global_blob = sum_encoded_partitions(
                list(contributions.values())
            )
            _, counter = decode_partition(global_blob)
            if counter <= 0:
                return  # nothing aggregated (deadline passed with no data)
            global_blob = self.behavior.tamper_update(global_blob)
            cid = yield from self._put_with_fallback(global_blob)
            if cid is None:
                return
            ack = yield from self.directory.register(
                Address(uploader_id=self.name,
                        partition_id=self.partition_id,
                        iteration=schedule.iteration, kind=UPDATE),
                cid,
            )
            if ack.get("accepted") and bus.wants(UpdateRegistered):
                bus.publish(UpdateRegistered(
                    at=self.sim.now, iteration=schedule.iteration,
                    aggregator=self.name, partition_id=self.partition_id,
                    started_at=publish_started,
                ))
        finally:
            if subscription is not None:
                subscription.cancel()
            if bus.wants(BytesReceived):
                bus.publish(BytesReceived(
                    at=self.sim.now, iteration=schedule.iteration,
                    participant=self.name,
                    amount=self.ipfs.bytes_downloaded - bytes_start,
                ))

    def _sync_phase(self, schedule, partial_blob, peers,
                    subscription, contributions):
        bus = self.sim.bus
        sync_start = self.sim.now
        if bus.wants(SyncPhaseStarted):
            bus.publish(SyncPhaseStarted(
                at=sync_start, iteration=schedule.iteration,
                aggregator=self.name, partition_id=self.partition_id,
            ))
        if partial_blob is not None:
            announced = self.behavior.tamper_update(partial_blob)
            cid = yield from self._put_with_fallback(announced)
            if cid is not None:
                yield from self.directory.register(
                    Address(uploader_id=self.name,
                            partition_id=self.partition_id,
                            iteration=schedule.iteration,
                            kind=PARTIAL_UPDATE),
                    cid,
                )
                if bus.wants(PartialUpdateRegistered):
                    bus.publish(PartialUpdateRegistered(
                        at=self.sim.now, iteration=schedule.iteration,
                        aggregator=self.name,
                        partition_id=self.partition_id,
                    ))
                self.pubsub.publish(
                    sync_topic(self.partition_id, schedule.iteration),
                    self.name,
                    payload={"aggregator": self.name, "cid": cid},
                    size=CID_WIRE_SIZE,
                )

        pending: Set[str] = set(peers)
        takeover_at = max(schedule.t_train, self.sim.now) \
            + self.config.takeover_grace
        # One persistent queue getter: replaced only after it fires, so an
        # abandoned getter never swallows a peer's announcement.
        message_event = subscription.get()
        while pending and self.sim.now < schedule.t_sync:
            deadline = min(takeover_at, schedule.t_sync)
            wait = max(0.0, deadline - self.sim.now)
            timeout_event = self.sim.timeout(wait)
            outcome = yield self.sim.any_of([message_event, timeout_event])
            if message_event in outcome:
                payload = outcome[message_event].payload
                message_event = subscription.get()
                peer = payload["aggregator"]
                if peer not in pending:
                    continue
                try:
                    blob = yield from self.ipfs.get(payload["cid"])
                except IPFSError:
                    continue
                valid = yield from self._verify_peer_partial(
                    peer, blob, schedule.iteration
                )
                if valid:
                    pending.discard(peer)
                    contributions[peer] = blob
                elif bus.wants(VerificationFailed):
                    bus.publish(VerificationFailed(
                        at=self.sim.now, iteration=schedule.iteration,
                        label=(f"partial_update/p{self.partition_id}"
                               f"/i{schedule.iteration}/{peer}"),
                        scope="partial_update",
                        partition_id=self.partition_id,
                        aggregator=peer,
                        reason="partial update does not open the peer's "
                               "accumulated commitment",
                    ))
            elif self.sim.now >= takeover_at:
                # Grace expired: cover the silent peers' trainer sets.
                for peer in sorted(pending):
                    blob = yield from self._takeover(peer, schedule)
                    if blob is not None:
                        contributions[peer] = blob
                    pending.discard(peer)
        if bus.wants(SyncPhaseEnded):
            bus.publish(SyncPhaseEnded(
                at=self.sim.now, iteration=schedule.iteration,
                aggregator=self.name, duration=self.sim.now - sync_start,
                partition_id=self.partition_id,
            ))
