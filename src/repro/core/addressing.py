"""Addressing metadata for the directory service.

"Every piece of information uploaded to the decentralized storage network
is associated with some 'addressing' meta-information … the tuple
``addr = (uploader_id, partition_id, iter, type)``" (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Address", "GRADIENT", "PARTIAL_UPDATE", "UPDATE"]

GRADIENT = "gradient"
PARTIAL_UPDATE = "partial_update"
UPDATE = "update"

_KINDS = frozenset({GRADIENT, PARTIAL_UPDATE, UPDATE})


@dataclass(frozen=True)
class Address:
    """The directory key for one uploaded object."""

    uploader_id: str
    partition_id: int
    iteration: int
    kind: str

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {sorted(_KINDS)}, got {self.kind!r}"
            )
        if self.partition_id < 0:
            raise ValueError("partition_id must be non-negative")
        if self.iteration < 0:
            raise ValueError("iteration must be non-negative")

    def __str__(self) -> str:
        return (
            f"{self.kind}/p{self.partition_id}/i{self.iteration}"
            f"/{self.uploader_id}"
        )
