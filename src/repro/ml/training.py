"""Local training: the trainer-side learning step of each FL iteration.

Each round a trainer computes an update on its local shard.  Two styles
are supported, both producing a flat float64 vector to be partitioned,
uploaded and aggregated:

- :func:`compute_gradient` — one full-batch gradient (FedSGD style); the
  averaged aggregate equals the centralized gradient exactly, which the
  convergence-equivalence experiment exploits.
- :func:`local_update` — E epochs of minibatch SGD, returning the
  parameter delta (FedAvg style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .data import Dataset
from .models import Model

__all__ = ["TrainConfig", "compute_gradient", "local_update", "sgd_epoch"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for a local training pass."""

    learning_rate: float = 0.1
    epochs: int = 1
    batch_size: int = 32

    def __post_init__(self):
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


def compute_gradient(model: Model, dataset: Dataset) -> np.ndarray:
    """The full-batch gradient of the model's loss on ``dataset``."""
    _, gradient = model.loss_and_gradient(dataset.X, dataset.y)
    return gradient


def sgd_epoch(model: Model, dataset: Dataset, learning_rate: float,
              batch_size: int, rng: np.random.Generator) -> float:
    """One shuffled minibatch-SGD epoch in place; returns the mean loss."""
    order = rng.permutation(len(dataset))
    losses = []
    for start in range(0, len(order), batch_size):
        batch = order[start:start + batch_size]
        loss, gradient = model.loss_and_gradient(
            dataset.X[batch], dataset.y[batch]
        )
        model.set_params(model.get_params() - learning_rate * gradient)
        losses.append(loss)
    return float(np.mean(losses))


def local_update(model: Model, dataset: Dataset, config: TrainConfig,
                 seed: Optional[int] = 0) -> np.ndarray:
    """FedAvg-style client step: train locally, return the parameter delta.

    The caller's model is left untouched; training happens on a clone.
    The returned vector is ``trained_params - original_params``, so a
    server applying the *average* of client deltas performs exactly
    FedAvg.
    """
    rng = np.random.default_rng(seed)
    worker = model.clone()
    original = model.get_params()
    for _ in range(config.epochs):
        sgd_epoch(worker, dataset, config.learning_rate,
                  config.batch_size, rng)
    return worker.get_params() - original
