"""Datasets and federated partitioners.

Synthetic classification/regression data (no external downloads), plus the
three standard ways of splitting a dataset across FL trainers:

- IID — uniform random shards,
- Dirichlet non-IID — per-client class mixtures drawn from Dir(alpha),
  the standard benchmark for heterogeneous federated data,
- shard — sort-by-label pathological split (each client sees few classes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = [
    "Dataset",
    "make_classification",
    "make_regression",
    "split_iid",
    "split_dirichlet",
    "split_shards",
    "train_test_split",
]


@dataclass
class Dataset:
    """Features plus labels (classification: int labels; regression: floats)."""

    X: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("X and y must have the same number of rows")

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def num_features(self) -> int:
        return self.X.shape[1]

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(self.X[indices], self.y[indices])


def make_classification(
    num_samples: int = 1000,
    num_features: int = 10,
    num_classes: int = 2,
    class_separation: float = 2.0,
    seed: Optional[int] = 0,
) -> Dataset:
    """Gaussian-blob classification data with controllable difficulty."""
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=class_separation,
                         size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    features = centers[labels] + rng.normal(
        size=(num_samples, num_features)
    )
    return Dataset(features, labels)


def make_regression(
    num_samples: int = 1000,
    num_features: int = 10,
    noise: float = 0.1,
    seed: Optional[int] = 0,
) -> Dataset:
    """Linear-teacher regression data."""
    rng = np.random.default_rng(seed)
    teacher = rng.normal(size=num_features)
    features = rng.normal(size=(num_samples, num_features))
    targets = features @ teacher + rng.normal(
        scale=noise, size=num_samples
    )
    return Dataset(features, targets)


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     seed: Optional[int] = 0):
    """Shuffle and split into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    cut = int(len(dataset) * (1.0 - test_fraction))
    return dataset.subset(order[:cut]), dataset.subset(order[cut:])


def split_iid(dataset: Dataset, num_clients: int,
              seed: Optional[int] = 0) -> List[Dataset]:
    """Uniform random partition into ``num_clients`` near-equal shards."""
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    if len(dataset) < num_clients:
        raise ValueError("fewer samples than clients")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    return [dataset.subset(chunk)
            for chunk in np.array_split(order, num_clients)]


def split_dirichlet(dataset: Dataset, num_clients: int, alpha: float = 0.5,
                    seed: Optional[int] = 0,
                    min_samples: int = 1) -> List[Dataset]:
    """Non-IID partition: class proportions per client ~ Dir(alpha).

    Small ``alpha`` concentrates each class on few clients (highly
    heterogeneous); large ``alpha`` approaches IID.
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    labels = dataset.y.astype(int)
    classes = np.unique(labels)
    for _ in range(100):  # retry until every client has min_samples
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for cls in classes:
            cls_indices = np.flatnonzero(labels == cls)
            rng.shuffle(cls_indices)
            proportions = rng.dirichlet([alpha] * num_clients)
            counts = np.floor(proportions * len(cls_indices)).astype(int)
            counts[-1] = len(cls_indices) - counts[:-1].sum()
            start = 0
            for client, count in enumerate(counts):
                client_indices[client].extend(
                    cls_indices[start:start + count]
                )
                start += count
        if all(len(idx) >= min_samples for idx in client_indices):
            break
    else:
        raise RuntimeError(
            "could not satisfy min_samples; lower it or raise alpha"
        )
    return [dataset.subset(np.array(sorted(idx), dtype=int))
            for idx in client_indices]


def split_shards(dataset: Dataset, num_clients: int,
                 shards_per_client: int = 2,
                 seed: Optional[int] = 0) -> List[Dataset]:
    """Pathological non-IID split: sort by label, deal out contiguous shards."""
    if num_clients < 1 or shards_per_client < 1:
        raise ValueError("num_clients and shards_per_client must be >= 1")
    total_shards = num_clients * shards_per_client
    if len(dataset) < total_shards:
        raise ValueError("fewer samples than shards")
    rng = np.random.default_rng(seed)
    order = np.argsort(dataset.y, kind="stable")
    shards = np.array_split(order, total_shards)
    shard_ids = rng.permutation(total_shards)
    clients = []
    for client in range(num_clients):
        chosen = shard_ids[
            client * shards_per_client:(client + 1) * shards_per_client
        ]
        indices = np.concatenate([shards[s] for s in chosen])
        clients.append(dataset.subset(indices))
    return clients
