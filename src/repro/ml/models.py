"""Models trained federatedly: numpy implementations with a flat-vector API.

The protocol layer treats a model as one flat float64 parameter vector that
it segments into partitions (Sec. II: "segment the parameters vector of
the machine learning model into smaller partitions").  Every model here
exposes:

- ``num_params`` and ``get_params()``/``set_params()`` over a flat vector,
- ``loss_and_gradient(X, y)`` returning scalar loss + flat gradient,
- ``predict(X)``.

All gradients are exact analytic derivatives (verified against numerical
differentiation in the tests).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["Model", "LinearRegression", "LogisticRegression",
           "MLPClassifier", "DeepMLPClassifier", "SyntheticModel"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels.astype(int)] = 1.0
    return encoded


class Model:
    """Base class: flat-parameter access and SGD-ready gradients."""

    def num_params(self) -> int:
        raise NotImplementedError

    def get_params(self) -> np.ndarray:
        raise NotImplementedError

    def set_params(self, flat: np.ndarray) -> None:
        raise NotImplementedError

    def loss_and_gradient(
        self, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def clone(self) -> "Model":
        """A structurally identical model with copied parameters."""
        copy = self.__class__(**self._construction_args())
        copy.set_params(self.get_params())
        return copy

    def _construction_args(self) -> dict:
        raise NotImplementedError

    def _check_flat(self, flat: np.ndarray) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64).ravel()
        if flat.shape[0] != self.num_params():
            raise ValueError(
                f"expected {self.num_params()} parameters, got {flat.shape[0]}"
            )
        return flat


class DeepMLPClassifier(Model):
    """An MLP of arbitrary depth with ReLU hidden layers.

    Generalizes :class:`MLPClassifier` to ``hidden_layers`` of any shape,
    reaching the parameter counts of the paper's "medium-sized models"
    discussion when needed.  Gradients come from a standard backprop loop
    (verified against numerical differentiation in the tests).
    """

    def __init__(self, num_features: int, hidden_layers: Tuple[int, ...],
                 num_classes: int = 2, l2: float = 0.0,
                 seed: Optional[int] = 0):
        if num_features < 1 or num_classes < 2:
            raise ValueError("invalid architecture")
        if not hidden_layers or any(h < 1 for h in hidden_layers):
            raise ValueError("hidden_layers must be non-empty positive")
        self.num_features = num_features
        self.hidden_layers = tuple(hidden_layers)
        self.num_classes = num_classes
        self.l2 = l2
        rng = np.random.default_rng(seed)
        sizes = [num_features, *hidden_layers, num_classes]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He init for ReLU
            self.weights.append(
                rng.normal(scale=scale, size=(fan_in, fan_out))
            )
            self.biases.append(np.zeros(fan_out))

    def _construction_args(self) -> dict:
        return {
            "num_features": self.num_features,
            "hidden_layers": self.hidden_layers,
            "num_classes": self.num_classes,
            "l2": self.l2,
            "seed": 0,
        }

    def num_params(self) -> int:
        return sum(w.size + b.size
                   for w, b in zip(self.weights, self.biases))

    def get_params(self) -> np.ndarray:
        pieces = []
        for w, b in zip(self.weights, self.biases):
            pieces.append(w.ravel())
            pieces.append(b)
        return np.concatenate(pieces)

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        offset = 0
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            self.weights[index] = flat[offset:offset + w.size] \
                .reshape(w.shape).copy()
            offset += w.size
            self.biases[index] = flat[offset:offset + b.size].copy()
            offset += b.size

    def _forward(self, X: np.ndarray):
        """Returns (activations per layer incl. input, output probs)."""
        activations = [X]
        current = X
        for index in range(len(self.weights) - 1):
            current = np.maximum(
                0.0, current @ self.weights[index] + self.biases[index]
            )
            activations.append(current)
        logits = current @ self.weights[-1] + self.biases[-1]
        return activations, _softmax(logits)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._forward(X)[1]

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def loss_and_gradient(self, X, y):
        count = X.shape[0]
        activations, probabilities = self._forward(X)
        targets = _one_hot(y, self.num_classes)
        eps = 1e-12
        loss = -float(
            np.sum(targets * np.log(probabilities + eps))
        ) / count + 0.5 * self.l2 * sum(
            float(np.sum(w ** 2)) for w in self.weights
        )
        grads_w: List[np.ndarray] = [None] * len(self.weights)
        grads_b: List[np.ndarray] = [None] * len(self.biases)
        delta = (probabilities - targets) / count
        for index in range(len(self.weights) - 1, -1, -1):
            grads_w[index] = (
                activations[index].T @ delta + self.l2 * self.weights[index]
            )
            grads_b[index] = delta.sum(axis=0)
            if index > 0:
                delta = (delta @ self.weights[index].T) \
                    * (activations[index] > 0)
        pieces = []
        for gw, gb in zip(grads_w, grads_b):
            pieces.append(gw.ravel())
            pieces.append(gb)
        return loss, np.concatenate(pieces)


class SyntheticModel(Model):
    """A parameter vector with trivial learning dynamics.

    Used by the delay benchmarks, which sweep *model size* (the paper's
    1.3 MB / 1.1 MB partitions and Fig. 3's parameter counts): only the
    byte volume of the parameter vector matters there, so gradients are
    identically zero and training is free.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self._params = np.zeros(size)

    def _construction_args(self) -> dict:
        return {"size": self.size}

    def num_params(self) -> int:
        return self.size

    def get_params(self) -> np.ndarray:
        return self._params.copy()

    def set_params(self, flat: np.ndarray) -> None:
        self._params = self._check_flat(flat).copy()

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.zeros(X.shape[0])

    def loss_and_gradient(self, X, y):
        # Derive a cheap gradient that differs per trainer (from the data)
        # AND per element — otherwise IPFS content addressing would
        # deduplicate identical gradient partitions and distort the delay
        # and storage measurements.
        seed_value = float(np.asarray(X).ravel()[0]) if np.asarray(X).size \
            else 0.0
        return 0.0, (seed_value * 1e-6
                     + np.arange(self.size, dtype=np.float64) * 1e-9)


class LinearRegression(Model):
    """Least-squares regression with L2 loss (plus optional ridge term)."""

    def __init__(self, num_features: int, l2: float = 0.0,
                 seed: Optional[int] = 0):
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        self.num_features = num_features
        self.l2 = l2
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(scale=0.01, size=num_features)
        self.bias = 0.0

    def _construction_args(self) -> dict:
        return {"num_features": self.num_features, "l2": self.l2, "seed": 0}

    def num_params(self) -> int:
        return self.num_features + 1

    def get_params(self) -> np.ndarray:
        return np.concatenate([self.weights, [self.bias]])

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        self.weights = flat[:-1].copy()
        self.bias = float(flat[-1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.weights + self.bias

    def loss_and_gradient(self, X, y):
        residual = self.predict(X) - y
        count = X.shape[0]
        loss = 0.5 * float(residual @ residual) / count \
            + 0.5 * self.l2 * float(self.weights @ self.weights)
        grad_w = X.T @ residual / count + self.l2 * self.weights
        grad_b = float(residual.sum()) / count
        return loss, np.concatenate([grad_w, [grad_b]])


class LogisticRegression(Model):
    """Multinomial (softmax) logistic regression with cross-entropy loss."""

    def __init__(self, num_features: int, num_classes: int = 2,
                 l2: float = 0.0, seed: Optional[int] = 0):
        if num_features < 1 or num_classes < 2:
            raise ValueError("need >=1 feature and >=2 classes")
        self.num_features = num_features
        self.num_classes = num_classes
        self.l2 = l2
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(
            scale=0.01, size=(num_features, num_classes)
        )
        self.bias = np.zeros(num_classes)

    def _construction_args(self) -> dict:
        return {
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "l2": self.l2,
            "seed": 0,
        }

    def num_params(self) -> int:
        return self.num_features * self.num_classes + self.num_classes

    def get_params(self) -> np.ndarray:
        return np.concatenate([self.weights.ravel(), self.bias])

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        split = self.num_features * self.num_classes
        self.weights = flat[:split].reshape(
            self.num_features, self.num_classes
        ).copy()
        self.bias = flat[split:].copy()

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _softmax(X @ self.weights + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def loss_and_gradient(self, X, y):
        count = X.shape[0]
        probabilities = self.predict_proba(X)
        targets = _one_hot(y, self.num_classes)
        eps = 1e-12
        loss = -float(
            np.sum(targets * np.log(probabilities + eps))
        ) / count + 0.5 * self.l2 * float(np.sum(self.weights ** 2))
        delta = (probabilities - targets) / count
        grad_w = X.T @ delta + self.l2 * self.weights
        grad_b = delta.sum(axis=0)
        return loss, np.concatenate([grad_w.ravel(), grad_b])


class MLPClassifier(Model):
    """One-hidden-layer tanh MLP with a softmax output layer.

    Large enough to give multi-million-parameter vectors when needed (the
    paper's Fig. 3 sweeps model size), small enough to train quickly in
    tests.
    """

    def __init__(self, num_features: int, hidden: int = 32,
                 num_classes: int = 2, l2: float = 0.0,
                 seed: Optional[int] = 0):
        if num_features < 1 or hidden < 1 or num_classes < 2:
            raise ValueError("invalid architecture")
        self.num_features = num_features
        self.hidden = hidden
        self.num_classes = num_classes
        self.l2 = l2
        rng = np.random.default_rng(seed)
        scale1 = 1.0 / np.sqrt(num_features)
        scale2 = 1.0 / np.sqrt(hidden)
        self.w1 = rng.normal(scale=scale1, size=(num_features, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(scale=scale2, size=(hidden, num_classes))
        self.b2 = np.zeros(num_classes)

    def _construction_args(self) -> dict:
        return {
            "num_features": self.num_features,
            "hidden": self.hidden,
            "num_classes": self.num_classes,
            "l2": self.l2,
            "seed": 0,
        }

    def num_params(self) -> int:
        return (self.num_features * self.hidden + self.hidden
                + self.hidden * self.num_classes + self.num_classes)

    def get_params(self) -> np.ndarray:
        return np.concatenate([
            self.w1.ravel(), self.b1, self.w2.ravel(), self.b2,
        ])

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        sizes = [
            self.num_features * self.hidden,
            self.hidden,
            self.hidden * self.num_classes,
            self.num_classes,
        ]
        offsets = np.cumsum([0] + sizes)
        self.w1 = flat[offsets[0]:offsets[1]].reshape(
            self.num_features, self.hidden).copy()
        self.b1 = flat[offsets[1]:offsets[2]].copy()
        self.w2 = flat[offsets[2]:offsets[3]].reshape(
            self.hidden, self.num_classes).copy()
        self.b2 = flat[offsets[3]:offsets[4]].copy()

    def _forward(self, X: np.ndarray):
        hidden_pre = X @ self.w1 + self.b1
        hidden_act = np.tanh(hidden_pre)
        logits = hidden_act @ self.w2 + self.b2
        return hidden_act, _softmax(logits)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._forward(X)[1]

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def loss_and_gradient(self, X, y):
        count = X.shape[0]
        hidden_act, probabilities = self._forward(X)
        targets = _one_hot(y, self.num_classes)
        eps = 1e-12
        loss = -float(
            np.sum(targets * np.log(probabilities + eps))
        ) / count + 0.5 * self.l2 * (
            float(np.sum(self.w1 ** 2)) + float(np.sum(self.w2 ** 2))
        )
        delta_out = (probabilities - targets) / count
        grad_w2 = hidden_act.T @ delta_out + self.l2 * self.w2
        grad_b2 = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ self.w2.T) * (1.0 - hidden_act ** 2)
        grad_w1 = X.T @ delta_hidden + self.l2 * self.w1
        grad_b1 = delta_hidden.sum(axis=0)
        return loss, np.concatenate([
            grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2,
        ])
