"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

from .data import Dataset
from .models import Model

__all__ = ["accuracy", "mean_loss", "model_distance"]


def accuracy(model: Model, dataset: Dataset) -> float:
    """Fraction of correctly classified samples."""
    predictions = model.predict(dataset.X)
    return float(np.mean(predictions == dataset.y))


def mean_loss(model: Model, dataset: Dataset) -> float:
    """The model's loss on ``dataset``."""
    loss, _ = model.loss_and_gradient(dataset.X, dataset.y)
    return loss


def model_distance(first: Model, second: Model) -> float:
    """L2 distance between two models' parameter vectors.

    Used by the convergence-equivalence experiment: the decentralized
    protocol must track centralized FedAvg to numerical precision.
    """
    return float(np.linalg.norm(first.get_params() - second.get_params()))
