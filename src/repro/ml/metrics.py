"""Evaluation metrics."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .data import Dataset
from .models import Model

__all__ = ["accuracy", "evaluate_model", "mean_loss", "model_distance"]


def accuracy(model: Model, dataset: Dataset) -> float:
    """Fraction of correctly classified samples."""
    predictions = model.predict(dataset.X)
    return float(np.mean(predictions == dataset.y))


def mean_loss(model: Model, dataset: Dataset) -> float:
    """The model's loss on ``dataset``."""
    loss, _ = model.loss_and_gradient(dataset.X, dataset.y)
    return loss


def evaluate_model(
    model: Model, dataset: Dataset
) -> Tuple[float, Optional[float]]:
    """``(loss, accuracy)`` of ``model`` on ``dataset``.

    Accuracy is ``None`` for non-classifiers (models without a
    ``num_classes`` attribute, e.g. :class:`LinearRegression` or the
    scale-benchmark :class:`SyntheticModel`), where "fraction of exact
    label matches" is meaningless.  Pure computation: no RNG, no
    parameter mutation — safe to call from instrumentation paths.
    """
    loss = mean_loss(model, dataset)
    acc = accuracy(model, dataset) if hasattr(model, "num_classes") else None
    return loss, acc


def model_distance(first: Model, second: Model) -> float:
    """L2 distance between two models' parameter vectors.

    Used by the convergence-equivalence experiment: the decentralized
    protocol must track centralized FedAvg to numerical precision.
    """
    return float(np.linalg.norm(first.get_params() - second.get_params()))
