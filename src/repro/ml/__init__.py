"""ML substrate: models, data, local training, and reference FedAvg.

Public surface:

- models: :class:`LinearRegression`, :class:`LogisticRegression`,
  :class:`MLPClassifier` (flat-parameter-vector API).
- data: :func:`make_classification`, :func:`make_regression`,
  federated partitioners :func:`split_iid` / :func:`split_dirichlet` /
  :func:`split_shards`.
- training: :class:`TrainConfig`, :func:`compute_gradient`,
  :func:`local_update`.
- reference algorithms: :func:`run_fedavg`, :func:`run_fedsgd`.
- metrics: :func:`accuracy`, :func:`mean_loss`, :func:`model_distance`,
  :func:`evaluate_model`.
"""

from .data import (
    Dataset,
    make_classification,
    make_regression,
    split_dirichlet,
    split_iid,
    split_shards,
    train_test_split,
)
from .fedavg import FedAvgResult, fedavg_aggregate, run_fedavg, run_fedsgd
from .metrics import accuracy, evaluate_model, mean_loss, model_distance
from .models import (
    DeepMLPClassifier,
    LinearRegression,
    LogisticRegression,
    MLPClassifier,
    Model,
    SyntheticModel,
)
from .training import TrainConfig, compute_gradient, local_update, sgd_epoch

__all__ = [
    "Dataset",
    "DeepMLPClassifier",
    "FedAvgResult",
    "LinearRegression",
    "LogisticRegression",
    "MLPClassifier",
    "Model",
    "SyntheticModel",
    "TrainConfig",
    "accuracy",
    "compute_gradient",
    "evaluate_model",
    "fedavg_aggregate",
    "local_update",
    "make_classification",
    "make_regression",
    "mean_loss",
    "model_distance",
    "run_fedavg",
    "run_fedsgd",
    "sgd_epoch",
    "split_dirichlet",
    "split_iid",
    "split_shards",
    "train_test_split",
]
