"""Reference federated averaging, free of any networking.

This is the mathematical specification the decentralized protocol must
match: the paper argues its "model's convergence rate and final accuracy
will be exactly the same as that of traditional FL" because partition-wise
summation-and-averaging commutes with whole-vector averaging.  The
convergence-equivalence benchmark compares the protocol's model trajectory
against :func:`run_fedavg` round by round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .data import Dataset
from .metrics import accuracy, mean_loss
from .models import Model
from .training import TrainConfig, compute_gradient, local_update

__all__ = ["FedAvgResult", "fedavg_aggregate", "run_fedavg", "run_fedsgd"]


@dataclass
class FedAvgResult:
    """Trajectory of a federated run."""

    params_per_round: List[np.ndarray] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)


def fedavg_aggregate(updates: Sequence[np.ndarray]) -> np.ndarray:
    """Plain (unweighted) average of client update vectors.

    Matches Algorithm 1's scheme: the aggregator sums gradient partitions
    with an appended counter of 1 per trainer, and trainers divide by that
    counter — i.e. an unweighted mean.
    """
    if not updates:
        raise ValueError("no updates to aggregate")
    return np.mean(np.stack(updates), axis=0)


def run_fedavg(
    model: Model,
    client_datasets: Sequence[Dataset],
    rounds: int,
    config: Optional[TrainConfig] = None,
    test_set: Optional[Dataset] = None,
    seed: int = 0,
) -> FedAvgResult:
    """Centralized-reference FedAvg on local copies (no network)."""
    config = config or TrainConfig()
    result = FedAvgResult()
    for round_index in range(rounds):
        updates = [
            local_update(model, dataset, config,
                         seed=seed + 1000 * round_index + client)
            for client, dataset in enumerate(client_datasets)
        ]
        model.set_params(model.get_params() + fedavg_aggregate(updates))
        result.params_per_round.append(model.get_params())
        result.train_loss.append(float(np.mean([
            mean_loss(model, dataset) for dataset in client_datasets
        ])))
        if test_set is not None:
            result.test_accuracy.append(accuracy(model, test_set))
    return result


def run_fedsgd(
    model: Model,
    client_datasets: Sequence[Dataset],
    rounds: int,
    learning_rate: float = 0.1,
    test_set: Optional[Dataset] = None,
) -> FedAvgResult:
    """FedSGD: one full-batch gradient per client per round, averaged."""
    result = FedAvgResult()
    for _ in range(rounds):
        gradients = [
            compute_gradient(model, dataset) for dataset in client_datasets
        ]
        step = fedavg_aggregate(gradients)
        model.set_params(model.get_params() - learning_rate * step)
        result.params_per_round.append(model.get_params())
        result.train_loss.append(float(np.mean([
            mean_loss(model, dataset) for dataset in client_datasets
        ])))
        if test_set is not None:
            result.test_accuracy.append(accuracy(model, test_set))
    return result
