"""Composable network/infrastructure profile for sessions.

:class:`NetworkProfile` bundles what used to be nine loose
``FLSession.__init__`` keyword arguments — the shape and quality of the
emulated infrastructure — into one reusable, comparable value::

    from repro import FLSession, NetworkProfile

    profile = NetworkProfile(num_ipfs_nodes=8, bandwidth_mbps=10.0)
    session = FLSession(config, model_factory, datasets, network=profile)

It also owns the robustness knobs the fault-injection subsystem relies
on: the shared :class:`~repro.faults.RetryPolicy` and the request
timeouts that bound how long actors wait on a directory that a chaos
plan has browned out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

from ..faults.retry import RetryPolicy

__all__ = ["NetworkProfile"]


@dataclass(frozen=True)
class NetworkProfile:
    """The infrastructure half of a session: topology, bandwidth, DHT,
    directory behaviour, replication, and retry/timeout policy.

    All defaults match the historical ``FLSession.__init__`` defaults,
    so ``NetworkProfile()`` reproduces the legacy testbed exactly.
    """

    #: Storage nodes in the deployment.
    num_ipfs_nodes: int = 8
    #: Uniform host bandwidth (Mbps), the paper's 10/20 Mbps testbeds.
    bandwidth_mbps: float = 10.0
    #: Override for aggregator hosts (None = same as ``bandwidth_mbps``).
    aggregator_bandwidth_mbps: Optional[float] = None
    #: Per-trainer overrides (None = uniform).
    trainer_bandwidths_mbps: Optional[Tuple[float, ...]] = None
    #: One-way propagation delay (seconds) per transfer.
    latency: float = 0.0
    #: Provider-record resolution latency of the table-model DHT.
    dht_lookup_delay: float = 0.02
    #: "table" (flat provider table) or "kademlia" (routed lookups).
    dht_mode: str = "table"
    #: Serialized directory server work per request (seconds).
    directory_processing_delay: float = 0.0
    #: Rendezvous replication factor (None = no replication cluster).
    replication_factor: Optional[int] = None

    # -- robustness (faults & churn) ------------------------------------------
    #: Shared retry policy for directory requests and block fetches.
    #: None means single attempt — the legacy behaviour, which keeps
    #: honest-run timings bit-identical; sessions running a fault plan
    #: default this to ``RetryPolicy()``.
    retry: Optional[RetryPolicy] = None
    #: Timeout (seconds) for one directory request attempt.  None means
    #: wait forever — the legacy behaviour, appropriate only on honest
    #: infrastructure; sessions running a fault plan default this to
    #: 15 s so a brown-out or outage cannot wedge an actor.
    directory_request_timeout: Optional[float] = None
    #: Timeout (seconds) for one IPFS request attempt.
    ipfs_request_timeout: float = 120.0

    def __post_init__(self):
        if self.num_ipfs_nodes < 1:
            raise ValueError("num_ipfs_nodes must be >= 1")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if self.aggregator_bandwidth_mbps is not None \
                and self.aggregator_bandwidth_mbps <= 0:
            raise ValueError("aggregator_bandwidth_mbps must be positive")
        if self.trainer_bandwidths_mbps is not None:
            object.__setattr__(self, "trainer_bandwidths_mbps",
                               tuple(self.trainer_bandwidths_mbps))
            if any(b <= 0 for b in self.trainer_bandwidths_mbps):
                raise ValueError("trainer bandwidths must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.dht_lookup_delay < 0:
            raise ValueError("dht_lookup_delay must be non-negative")
        if self.dht_mode not in ("table", "kademlia"):
            raise ValueError("dht_mode must be 'table' or 'kademlia'")
        if self.directory_processing_delay < 0:
            raise ValueError("directory_processing_delay must be "
                             "non-negative")
        if self.replication_factor is not None \
                and self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.directory_request_timeout is not None \
                and self.directory_request_timeout <= 0:
            raise ValueError("directory_request_timeout must be positive")
        if self.ipfs_request_timeout <= 0:
            raise ValueError("ipfs_request_timeout must be positive")

    #: The nine field names that used to be FLSession kwargs; the
    #: session's ``**legacy`` shim accepts exactly these.
    LEGACY_FIELDS = (
        "num_ipfs_nodes",
        "bandwidth_mbps",
        "aggregator_bandwidth_mbps",
        "trainer_bandwidths_mbps",
        "latency",
        "dht_lookup_delay",
        "dht_mode",
        "directory_processing_delay",
        "replication_factor",
    )

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))
