"""Flow-level network emulator (mininet substitute).

Public surface:

- :class:`Network` / :class:`Host` — hosts with up/down link capacities,
  byte transfers under max-min fair sharing.
- :class:`Transport` / :class:`Endpoint` / :class:`Message` — mailbox-based
  message passing with request/response correlation.
- :func:`build_testbed` — the paper's uniform-bandwidth deployments.
- unit helpers: :func:`mbps`, :func:`megabytes`, ...
"""

from .bandwidth import Flow, FlowScheduler, Link, TransferAbortedError, \
    max_min_rates
from .network import Host, Network
from .profile import NetworkProfile
from .topology import Testbed, add_directory_shards, build_testbed, \
    uniform_network
from .trace import TransferRecord, TransferTrace
from .transport import Endpoint, Message, Transport
from .units import gbps, kib, kilobytes, mbps, megabytes, mib

__all__ = [
    "Endpoint",
    "Flow",
    "FlowScheduler",
    "Host",
    "Link",
    "Message",
    "Network",
    "NetworkProfile",
    "Testbed",
    "TransferAbortedError",
    "TransferRecord",
    "TransferTrace",
    "Transport",
    "add_directory_shards",
    "build_testbed",
    "gbps",
    "kib",
    "kilobytes",
    "max_min_rates",
    "mbps",
    "megabytes",
    "mib",
    "uniform_network",
]
