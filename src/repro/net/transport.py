"""Message transport on top of the flow-level network.

Gives every host a mailbox and a request/response discipline.  Participants
and IPFS nodes in the protocol stack exchange :class:`Message` objects whose
``size`` charges the network and whose ``payload`` carries simulation-side
Python objects (no serialization needed inside the simulator).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..sim import Event, FilterStore, Simulator
from .bandwidth import TransferAbortedError
from .network import Network

__all__ = ["Message", "Transport", "Endpoint"]


@dataclass
class Message:
    """A message in flight between two endpoints."""

    src: str
    dst: str
    kind: str
    payload: Any = None
    #: Bytes charged to the network for this message.
    size: float = 0.0
    #: Correlates a response with its request.
    request_id: Optional[int] = None
    #: Simulated time the message was delivered (set by the transport).
    delivered_at: float = field(default=0.0, compare=False)


class Endpoint:
    """A host's mailbox plus convenience send/receive methods."""

    def __init__(self, transport: "Transport", name: str):
        self.transport = transport
        self.name = name
        self.inbox = FilterStore(transport.sim)

    def send(self, dst: str, kind: str, payload: Any = None,
             size: float = 0.0) -> Event:
        """Send a one-way message; the event fires when it is delivered."""
        return self.transport.send(
            Message(src=self.name, dst=dst, kind=kind, payload=payload,
                    size=size)
        )

    def receive(self, kind: Optional[str] = None) -> Event:
        """Wait for the next message (optionally of a given kind)."""
        if kind is None:
            return self.inbox.get()
        return self.inbox.get(lambda message: message.kind == kind)

    def request(self, dst: str, kind: str, payload: Any = None,
                size: float = 0.0):
        """Send a request and wait for the matching response.

        This is a process generator: ``response = yield from ep.request(...)``.
        """
        request_id = self.transport.next_request_id()
        self.transport.send(
            Message(src=self.name, dst=dst, kind=kind, payload=payload,
                    size=size, request_id=request_id)
        )
        response = yield self.inbox.get(
            lambda message: message.request_id == request_id
        )
        return response

    def respond(self, request: Message, kind: str, payload: Any = None,
                size: float = 0.0) -> Event:
        """Answer ``request``, echoing its correlation id."""
        return self.transport.send(
            Message(src=self.name, dst=request.src, kind=kind,
                    payload=payload, size=size,
                    request_id=request.request_id)
        )


class Transport:
    """Delivers messages between named endpoints over a :class:`Network`."""

    def __init__(self, network: Network):
        self.network = network
        self.sim: Simulator = network.sim
        self._endpoints: Dict[str, Endpoint] = {}
        self._request_ids = itertools.count(1)
        #: Telemetry: messages delivered, keyed by kind.
        self.delivered_by_kind: Dict[str, int] = {}
        #: Telemetry: messages lost to aborted transfers.
        self.dropped = 0

    def endpoint(self, name: str) -> Endpoint:
        """Create (or fetch) the endpoint for host ``name``.

        The host must already exist on the network.
        """
        if name not in self.network:
            raise KeyError(f"no such host on the network: {name!r}")
        if name not in self._endpoints:
            self._endpoints[name] = Endpoint(self, name)
        return self._endpoints[name]

    def next_request_id(self) -> int:
        return next(self._request_ids)

    def send(self, message: Message) -> Event:
        """Queue ``message`` for delivery; the event fires at delivery."""
        if message.dst not in self._endpoints:
            raise KeyError(f"no endpoint registered for {message.dst!r}")
        delivered = self.sim.event()
        self.sim.process(
            self._deliver(message, delivered),
            name=f"msg:{message.kind}:{message.src}->{message.dst}",
        )
        return delivered

    def _deliver(self, message: Message, delivered: Event):
        try:
            yield self.network.transfer(
                message.src, message.dst, message.size
            )
        except TransferAbortedError:
            # A dead link ate the message.  Message loss, not an error:
            # the sender's delivery event simply never fires, and
            # request/response callers recover via timeout + retry.
            self.dropped += 1
            return
        message.delivered_at = self.sim.now
        self.delivered_by_kind[message.kind] = (
            self.delivered_by_kind.get(message.kind, 0) + 1
        )
        yield self._endpoints[message.dst].inbox.put(message)
        delivered.succeed(message)
