"""Unit helpers for bandwidth and data sizes.

All internal quantities are bytes and bytes/second; these helpers convert
from the units the paper reports (Mbps link speeds, MB partition sizes).
"""

from __future__ import annotations

__all__ = ["mbps", "gbps", "kib", "mib", "megabytes", "kilobytes"]

BITS_PER_BYTE = 8


def mbps(value: float) -> float:
    """Megabits/second -> bytes/second (decimal mega, as in networking)."""
    return value * 1_000_000 / BITS_PER_BYTE


def gbps(value: float) -> float:
    """Gigabits/second -> bytes/second."""
    return value * 1_000_000_000 / BITS_PER_BYTE


def kilobytes(value: float) -> float:
    """Decimal kilobytes -> bytes."""
    return value * 1_000


def megabytes(value: float) -> float:
    """Decimal megabytes -> bytes (the paper's 1.3MB partitions)."""
    return value * 1_000_000


def kib(value: float) -> float:
    """Binary kibibytes -> bytes."""
    return value * 1024


def mib(value: float) -> float:
    """Binary mebibytes -> bytes."""
    return value * 1024 * 1024
