"""Transfer tracing: a flow-level packet capture for the emulated network.

Attach a :class:`TransferTrace` to a :class:`~repro.net.network.Network`
and every transfer is recorded with its start/finish times, endpoints and
byte count — the raw material for timeline analysis of protocol runs
(who congested which link when), analogous to reading a pcap of the
paper's mininet experiments.

.. deprecated:: the monkey-patching implementation
    :class:`TransferTrace` is now a thin subscriber over the network's
    event bus (``network.sim.bus``) listening for
    :class:`~repro.obs.events.TransferCompleted`.  The old version
    wrapped ``network.transfer`` in place, which meant two concurrent
    traces detached in creation order would restore a stale method and
    silently keep recording.  Subscriptions compose: any number of
    traces may attach and detach in any order.  New code can subscribe
    to :mod:`repro.obs` events directly; this class remains for its
    analysis helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.events import TransferCompleted
from .network import Network

__all__ = ["TransferRecord", "TransferTrace"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer."""

    src: str
    dst: str
    size: float
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        """Average bytes/second (inf for instantaneous transfers)."""
        if self.duration <= 0:
            return float("inf")
        return self.size / self.duration


class TransferTrace:
    """Records every transfer made through the observed network."""

    def __init__(self, network: Network):
        self.network = network
        self.records: List[TransferRecord] = []
        self._subscription = network.sim.bus.subscribe(
            self._on_completed, TransferCompleted
        )

    def detach(self) -> None:
        """Stop tracing.  Safe to call more than once; traces attached to
        the same network are independent and may detach in any order."""
        self._subscription.cancel()

    def _on_completed(self, event: TransferCompleted) -> None:
        self.records.append(TransferRecord(
            src=event.src, dst=event.dst, size=event.size,
            started_at=event.started_at,
            finished_at=event.at,
        ))

    # -- analysis helpers ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def total_bytes(self) -> float:
        return sum(record.size for record in self.records)

    def bytes_by_pair(self) -> Dict[Tuple[str, str], float]:
        """Traffic matrix: (src, dst) -> bytes."""
        matrix: Dict[Tuple[str, str], float] = {}
        for record in self.records:
            key = (record.src, record.dst)
            matrix[key] = matrix.get(key, 0.0) + record.size
        return matrix

    def bytes_by_host(self) -> Dict[str, Dict[str, float]]:
        """Per-host ingress/egress: host -> {'in': bytes, 'out': bytes}."""
        totals: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            totals.setdefault(record.src, {"in": 0.0, "out": 0.0})
            totals.setdefault(record.dst, {"in": 0.0, "out": 0.0})
            totals[record.src]["out"] += record.size
            totals[record.dst]["in"] += record.size
        return totals

    def busiest_host(self) -> Optional[str]:
        """The host moving the most bytes (in + out)."""
        totals = self.bytes_by_host()
        if not totals:
            return None
        return max(totals, key=lambda host: (
            totals[host]["in"] + totals[host]["out"]
        ))

    def filter(self, predicate: Callable[[TransferRecord], bool]
               ) -> List[TransferRecord]:
        """Records satisfying ``predicate``."""
        return [record for record in self.records if predicate(record)]

    def window(self, start: float, end: float) -> List[TransferRecord]:
        """Transfers overlapping the time window [start, end]."""
        return [
            record for record in self.records
            if record.finished_at >= start and record.started_at <= end
        ]
