"""Topology builders matching the paper's experimental setups.

The paper's mininet experiments use uniform per-host bandwidth (all
participants at 10 Mbps for Fig. 1, 20 Mbps for Fig. 2).  These helpers
build such networks in one call and name hosts by role, mirroring the
trainer/aggregator/IPFS-node/directory split of the protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim import Simulator
from .network import Network
from .transport import Transport
from .units import mbps

__all__ = ["Testbed", "add_directory_shards", "build_testbed",
           "uniform_network"]


@dataclass
class Testbed:
    """A ready-to-use emulated deployment for one FL task."""

    sim: Simulator
    network: Network
    transport: Transport
    trainer_names: List[str] = field(default_factory=list)
    aggregator_names: List[str] = field(default_factory=list)
    ipfs_names: List[str] = field(default_factory=list)
    directory_name: str = "directory"


def uniform_network(sim: Simulator, names: List[str], bandwidth: float,
                    latency: float = 0.0) -> Network:
    """A network where every host has the same symmetric bandwidth."""
    network = Network(sim, default_latency=latency)
    for name in names:
        network.add_host(name, up_bandwidth=bandwidth,
                         down_bandwidth=bandwidth)
    return network


def add_directory_shards(
    network: Network,
    transport: Transport,
    count: int,
    bandwidth_mbps: Optional[float] = None,
    name_prefix: str = "directory-shard",
) -> List[str]:
    """Add ``count`` directory-shard hosts to an existing testbed.

    Each shard gets its own host and endpoint (``directory-shard-0``,
    ...) so the network model prices per-shard load and queueing; like
    the single well-known server, shard links default to unconstrained
    (directory traffic is metadata-only) unless ``bandwidth_mbps`` pins
    them.  Returns the shard host names in placement order.
    """
    if count < 1:
        raise ValueError("need at least one directory shard")
    bandwidth = (
        math.inf if bandwidth_mbps is None else mbps(bandwidth_mbps)
    )
    names = []
    for index in range(count):
        name = f"{name_prefix}-{index}"
        network.add_host(name, up_bandwidth=bandwidth,
                         down_bandwidth=bandwidth)
        transport.endpoint(name)
        names.append(name)
    return names


def build_testbed(
    sim: Optional[Simulator] = None,
    num_trainers: int = 16,
    num_aggregators: int = 1,
    num_ipfs_nodes: int = 8,
    bandwidth_mbps: float = 10.0,
    aggregator_bandwidth_mbps: Optional[float] = None,
    trainer_bandwidths_mbps: Optional[Sequence[float]] = None,
    directory_bandwidth_mbps: Optional[float] = None,
    latency: float = 0.0,
) -> Testbed:
    """Build the paper-style deployment.

    All trainers and IPFS nodes get the same symmetric ``bandwidth_mbps``
    link; aggregators too, unless ``aggregator_bandwidth_mbps`` overrides
    them (the asymmetric case of the Sec. III-E analysis, where the
    optimum provider count scales with sqrt(b/d)).  The directory
    service, run by the well-connected bootstrapper, gets
    ``directory_bandwidth_mbps`` (defaults to unconstrained, as directory
    traffic is metadata-only).
    """
    if num_trainers < 1 or num_aggregators < 1 or num_ipfs_nodes < 1:
        raise ValueError("need at least one of each participant kind")
    sim = sim or Simulator()
    bandwidth = mbps(bandwidth_mbps)
    aggregator_bandwidth = (
        bandwidth if aggregator_bandwidth_mbps is None
        else mbps(aggregator_bandwidth_mbps)
    )
    network = Network(sim, default_latency=latency)

    trainer_names = [f"trainer-{i}" for i in range(num_trainers)]
    aggregator_names = [f"aggregator-{i}" for i in range(num_aggregators)]
    ipfs_names = [f"ipfs-{i}" for i in range(num_ipfs_nodes)]

    if trainer_bandwidths_mbps is not None \
            and len(trainer_bandwidths_mbps) != num_trainers:
        raise ValueError(
            "trainer_bandwidths_mbps must list one value per trainer"
        )
    for index, name in enumerate(trainer_names):
        trainer_bandwidth = (
            bandwidth if trainer_bandwidths_mbps is None
            else mbps(trainer_bandwidths_mbps[index])
        )
        network.add_host(name, up_bandwidth=trainer_bandwidth,
                         down_bandwidth=trainer_bandwidth)
    for name in ipfs_names:
        network.add_host(name, up_bandwidth=bandwidth,
                         down_bandwidth=bandwidth)
    for name in aggregator_names:
        network.add_host(name, up_bandwidth=aggregator_bandwidth,
                         down_bandwidth=aggregator_bandwidth)

    directory_bandwidth = (
        math.inf if directory_bandwidth_mbps is None
        else mbps(directory_bandwidth_mbps)
    )
    network.add_host("directory", up_bandwidth=directory_bandwidth,
                     down_bandwidth=directory_bandwidth)

    transport = Transport(network)
    for name in trainer_names + aggregator_names + ipfs_names + ["directory"]:
        transport.endpoint(name)

    return Testbed(
        sim=sim,
        network=network,
        transport=transport,
        trainer_names=trainer_names,
        aggregator_names=aggregator_names,
        ipfs_names=ipfs_names,
        directory_name="directory",
    )
