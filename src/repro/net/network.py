"""Hosts and the emulated network.

A :class:`Network` owns a set of named :class:`Host` objects, each with an
uplink and a downlink capacity, and moves byte payloads between them through
the max-min fair :class:`~repro.net.bandwidth.FlowScheduler`.  Propagation
latency is charged once per transfer before bytes start flowing.

This replaces the paper's mininet testbed: the experiments there configure
per-host bandwidths (10 or 20 Mbps) and measure transfer and queueing
delays, which is exactly the fidelity this model provides.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Optional, Set

from ..obs.events import TransferAborted, TransferCompleted, TransferStarted
from ..sim import Event, Simulator
from .bandwidth import FlowScheduler, Link, TransferAbortedError

__all__ = ["Host", "Network"]


class Host:
    """A network endpoint with dedicated uplink/downlink capacities."""

    def __init__(self, name: str, up_bandwidth: float, down_bandwidth: float):
        self.name = name
        self.uplink = Link(f"{name}/up", up_bandwidth)
        self.downlink = Link(f"{name}/down", down_bandwidth)
        #: Telemetry counters (bytes).
        self.bytes_sent = 0.0
        self.bytes_received = 0.0

    @property
    def up_bandwidth(self) -> float:
        """Uplink capacity in bytes/second."""
        return self.uplink.capacity

    @property
    def down_bandwidth(self) -> float:
        """Downlink capacity in bytes/second."""
        return self.downlink.capacity

    def __repr__(self) -> str:
        return f"<Host {self.name}>"


class Network:
    """The emulated network: a set of hosts plus a shared flow scheduler."""

    def __init__(self, sim: Simulator, default_latency: float = 0.0,
                 latency_fn: Optional[Callable[[str, str], float]] = None):
        """
        Parameters
        ----------
        sim:
            The simulation kernel.
        default_latency:
            One-way propagation delay (seconds) applied to every transfer
            unless ``latency_fn`` overrides it.
        latency_fn:
            Optional ``(src_name, dst_name) -> seconds`` override.
        """
        if default_latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.default_latency = default_latency
        self._latency_fn = latency_fn
        self._hosts: Dict[str, Host] = {}
        self._scheduler = FlowScheduler(sim)
        #: Hosts whose links are currently down (fault injection).
        self._offline: Set[str] = set()

    # -- host management ------------------------------------------------------

    def add_host(self, name: str, up_bandwidth: float = math.inf,
                 down_bandwidth: Optional[float] = None) -> Host:
        """Register a host.  ``down_bandwidth`` defaults to ``up_bandwidth``."""
        if name in self._hosts:
            raise ValueError(f"host {name!r} already exists")
        if down_bandwidth is None:
            down_bandwidth = up_bandwidth
        host = Host(name, up_bandwidth, down_bandwidth)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self._hosts[name]

    def hosts(self) -> Iterable[Host]:
        """All registered hosts."""
        return self._hosts.values()

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    # -- fault surface (link state mutation) -----------------------------------

    def host_online(self, name: str) -> bool:
        """Whether ``name``'s links are currently up."""
        if name not in self._hosts:
            raise KeyError(f"no such host: {name!r}")
        return name not in self._offline

    def set_host_online(self, name: str, online: bool,
                        reason: str = "link down") -> None:
        """Bring a host's links up or down.

        Taking a host down aborts every in-flight flow crossing its
        uplink or downlink (their waiters see
        :class:`~repro.net.bandwidth.TransferAbortedError`) and refuses
        new transfers to/from it until it is brought back up.  Local
        loopback transfers (``src == dst``) keep working.
        """
        host = self._hosts[name]
        if online:
            self._offline.discard(name)
            return
        if name in self._offline:
            return
        self._offline.add(name)
        self._scheduler.abort_flows((host.uplink, host.downlink), reason)

    def set_host_bandwidth(self, name: str,
                           up_bandwidth: Optional[float] = None,
                           down_bandwidth: Optional[float] = None) -> None:
        """Change a host's link capacities mid-run (bytes/second).

        In-flight flows keep the bytes already delivered and share the
        new capacities from now on.
        """
        host = self._hosts[name]
        for capacity in (up_bandwidth, down_bandwidth):
            if capacity is not None and capacity <= 0:
                raise ValueError("link capacity must be positive")
        changed = []
        if up_bandwidth is not None:
            host.uplink.capacity = float(up_bandwidth)
            changed.append(host.uplink)
        if down_bandwidth is not None:
            host.downlink.capacity = float(down_bandwidth)
            changed.append(host.downlink)
        if changed:
            self._scheduler.rates_changed(changed)

    # -- data movement ---------------------------------------------------------

    def latency(self, src: str, dst: str) -> float:
        """One-way propagation delay between two hosts."""
        if src == dst:
            return 0.0
        if self._latency_fn is not None:
            return self._latency_fn(src, dst)
        return self.default_latency

    def transfer(self, src: str, dst: str, size: float) -> Event:
        """Move ``size`` bytes from ``src`` to ``dst``.

        Returns an event firing when the last byte arrives.  Local
        transfers (``src == dst``) complete after zero time.  The transfer
        contends for the source uplink and the destination downlink under
        max-min fairness with all other in-flight transfers.
        """
        source = self._hosts[src]
        destination = self._hosts[dst]
        if size < 0:
            raise ValueError("transfer size must be non-negative")
        source.bytes_sent += size
        destination.bytes_received += size
        done = self.sim.event()
        bus = self.sim.bus
        wants_started = bus.wants(TransferStarted)
        wants_completed = bus.wants(TransferCompleted)
        if (wants_started or wants_completed) and not bus.admits(
                TransferCompleted, src, dst, self.sim.now):
            # One deterministic admission decision covers the pair, so a
            # sampled stream never shows a start without its completion.
            wants_started = wants_completed = False
        if wants_started:
            bus.publish(TransferStarted(
                at=self.sim.now, src=src, dst=dst, size=size,
            ))
        if wants_completed:
            started = self.sim.now

            def flow_event(event):
                if not event._ok:
                    return  # aborted; TransferAborted already published
                bus.publish(TransferCompleted(
                    at=self.sim.now, src=src, dst=dst, size=size,
                    started_at=started,
                ))

            done._add_callback(flow_event)
        if src == dst:
            done.succeed(size)
            return done
        self.sim.process(
            self._transfer_proc(source, destination, size, done),
            name=f"xfer:{src}->{dst}",
        )
        return done

    def _transfer_proc(self, source: Host, destination: Host, size: float,
                       done: Event):
        try:
            if source.name in self._offline \
                    or destination.name in self._offline:
                raise TransferAbortedError(
                    "host offline", source.name, destination.name, size
                )
            delay = self.latency(source.name, destination.name)
            if delay > 0:
                yield self.sim.timeout(delay)
            if source.name in self._offline \
                    or destination.name in self._offline:
                raise TransferAbortedError(
                    "host offline", source.name, destination.name, size
                )
            flow_done = self._scheduler.start_flow(
                (source.uplink, destination.downlink), size
            )
            yield flow_done
        except TransferAbortedError as exc:
            bus = self.sim.bus
            if bus.wants(TransferAborted):
                bus.publish(TransferAborted(
                    at=self.sim.now, src=source.name, dst=destination.name,
                    size=size, reason=exc.reason,
                ))
            done.fail(TransferAbortedError(
                exc.reason, source.name, destination.name, size
            ))
            return
        done.succeed(size)

    # -- telemetry --------------------------------------------------------------

    @property
    def bytes_delivered(self) -> float:
        """Total bytes delivered network-wide since construction."""
        return self._scheduler.bytes_delivered

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently moving bytes."""
        return self._scheduler.active_flows

    @property
    def stale_wakeups(self) -> int:
        """Superseded scheduler wakeups that fired anyway (should stay 0
        while kernel timeout cancellation works)."""
        return self._scheduler.stale_wakeups

    @property
    def cancelled_wakeups(self) -> int:
        """Superseded scheduler wakeups removed from the kernel heap."""
        return self._scheduler.cancelled_wakeups

    def link_utilization(self) -> Dict[str, float]:
        """Instantaneous utilization of every link carrying traffic,
        keyed by link name (``host/up``, ``host/down``)."""
        return {
            link.name: utilization
            for link, utilization in
            self._scheduler.link_utilization().items()
        }
