"""Flow-level bandwidth sharing with max-min fairness.

This module models the first-order network effects the paper's mininet
testbed exhibits: a host's NIC capacity is shared among its concurrent
transfers, so a single IPFS provider serving sixteen trainers is a
bottleneck, while spreading uploads over four providers is not.

The model is *flow-level*: a transfer is a fluid flow with a remaining byte
count, and the set of concurrent flows receives a max-min fair allocation
subject to each host's uplink and downlink capacities (progressive-filling
algorithm).  Whenever a flow starts or finishes, every flow's progress is
advanced and rates are recomputed; the next completion is scheduled by a
cancellable kernel timeout, so superseded wakeups are removed from the heap
instead of polluting it.

Scaling
-------
Rate recomputation is *incremental*: a flow arrival or departure can only
change the allocation inside the connected component of the flow-link
bipartite graph it touches (max-min progressive filling decomposes across
components — rounds in one component never read or write another's residual
capacity).  The scheduler therefore keeps a link -> flows index, finds the
affected component by BFS from the changed links, and re-runs allocation on
that component only.  Component flows are allocated in ``flow_id`` order —
the same relative order a global recomputation would visit them — so the
incremental rates are bit-identical to the :func:`max_min_rates` oracle run
over all flows (there is a property test for this).  Large components fall
back to :func:`max_min_rates_vectorized`, a numpy formulation of the same
arithmetic; small in-flight sets skip component discovery entirely (the
BFS would cost more than it saves).  See ``docs/SCALING.md``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..sim import Event, Simulator, Timeout

__all__ = ["Link", "Flow", "FlowScheduler", "TransferAbortedError",
           "max_min_rates", "max_min_rates_vectorized"]

#: Flows narrower than this (bytes) are treated as complete, guarding
#: against float round-off never quite reaching zero.
_EPSILON_BYTES = 1e-6

#: Components at least this large are allocated via the numpy path.
#: High enough that unit-test and golden-run topologies always take the
#: scalar oracle, low enough that 10^4-trainer fan-ins vectorize.
_VECTORIZE_THRESHOLD = 192

#: In-flight flow counts at or below this skip component discovery and
#: re-allocate every flow.  At paper-figure scale (dozens of flows) the
#: BFS + sort of component discovery costs more than the allocation it
#: would save; a global allocation assigns identical rates, because the
#: max-min allocation depends only on the flow set (components never
#: interact) and ``_flows`` is kept in flow_id order — the oracle's
#: visit order.
_SMALL_RECOMPUTE_LIMIT = 64


class TransferAbortedError(Exception):
    """A transfer died before its last byte (link outage, host offline).

    Raised into whoever waits on the transfer's completion event; the
    message layer treats it as a lost message (clients recover via
    timeout + retry).
    """

    def __init__(self, reason: str, src: Optional[str] = None,
                 dst: Optional[str] = None, size: Optional[float] = None):
        route = f" {src}->{dst}" if src and dst else ""
        amount = f" ({size:g}B)" if size is not None else ""
        super().__init__(f"transfer{route}{amount} aborted: {reason}")
        self.reason = reason
        self.src = src
        self.dst = dst
        self.size = size


class Link:
    """A unidirectional capacity constraint (one direction of a host NIC)."""

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"link {name!r} capacity must be positive")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.capacity:g} B/s>"


class Flow:
    """A fluid transfer crossing a set of links."""

    __slots__ = ("flow_id", "links", "remaining", "rate", "done", "total")

    def __init__(self, flow_id: int, links: Tuple[Link, ...], size: float,
                 done: Event):
        self.flow_id = flow_id
        self.links = links
        self.total = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.done = done

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.flow_id} {self.remaining:g}/{self.total:g}B"
            f" @{self.rate:g}B/s>"
        )


def max_min_rates(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Compute the max-min fair rate allocation for ``flows``.

    Classic progressive filling: repeatedly find the most-contended link,
    give every unfrozen flow crossing it that link's equal share, freeze
    those flows, subtract their rates from the other links they cross.
    Links with infinite capacity never bottleneck; a flow crossing only
    infinite links gets an infinite rate (delivered instantaneously).

    This is the reference ("oracle") implementation; the scheduler calls
    it per affected component, and the vectorized variant must match it
    bit-for-bit.
    """
    rates: Dict[Flow, float] = {}
    active: Set[Flow] = set(flows)
    residual: Dict[Link, float] = {}
    load: Dict[Link, int] = {}
    for flow in flows:
        for link in flow.links:
            residual.setdefault(link, link.capacity)
            load[link] = load.get(link, 0) + 1

    while active:
        bottleneck: Optional[Link] = None
        bottleneck_share = math.inf
        for link, count in load.items():
            if count <= 0:
                continue
            share = residual[link] / count
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck = link
        if bottleneck is None or math.isinf(bottleneck_share):
            # Every remaining flow crosses only uncontended infinite links.
            for flow in active:
                rates[flow] = math.inf
            break
        frozen = [flow for flow in active if bottleneck in flow.links]
        for flow in frozen:
            rates[flow] = bottleneck_share
            active.remove(flow)
            for link in flow.links:
                # Clamp: across many freeze rounds the subtraction drifts
                # and can leave a residual slightly below zero, handing
                # later flows a negative share.  Capacity can never be
                # negative, so floor at exact 0.0.
                remaining = residual[link] - bottleneck_share
                residual[link] = remaining if remaining > 0.0 else 0.0
                load[link] -= 1
        residual[bottleneck] = 0.0
    return rates


def max_min_rates_vectorized(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Numpy formulation of :func:`max_min_rates`, bit-identical to it.

    Per filling round the O(links) bottleneck scan and the O(flows)
    freeze-mask update run as array operations; only the per-link residual
    subtraction stays scalar, because it must replay the oracle's
    sequential subtract-and-clamp order to preserve float equality.
    Intended for large connected components (wide fan-ins) where the
    Python loop dominates.
    """
    links: List[Link] = []
    link_index: Dict[Link, int] = {}
    # First-seen (flow-major) link order — the oracle's dict insertion
    # order, which its bottleneck scan iterates in.
    flow_link_ids: List[List[int]] = []
    for flow in flows:
        ids = []
        for link in flow.links:
            idx = link_index.get(link)
            if idx is None:
                idx = link_index[link] = len(links)
                links.append(link)
            ids.append(idx)
        flow_link_ids.append(ids)
    num_flows = len(flows)
    num_links = len(links)
    if num_links == 0:
        return {flow: math.inf for flow in flows}

    # Per-link adjacency (flow indices, with multiplicity) instead of a
    # dense incidence matrix: flows cross ~2 links, so dense (F x L) would
    # be quadratic in memory.
    link_flows: List[List[int]] = [[] for _ in range(num_links)]
    for flow_idx, ids in enumerate(flow_link_ids):
        for link_id in ids:
            link_flows[link_id].append(flow_idx)

    residual = np.array([link.capacity for link in links], dtype=float)
    load = np.zeros(num_links, dtype=np.int64)
    for link_id, members in enumerate(link_flows):
        load[link_id] = len(members)
    active = np.ones(num_flows, dtype=bool)
    rates = np.zeros(num_flows, dtype=float)
    remaining_active = num_flows

    while remaining_active:
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(load > 0, residual / load, math.inf)
        bottleneck = int(np.argmin(share))
        bottleneck_share = float(share[bottleneck])
        if math.isinf(bottleneck_share):
            rates[active] = math.inf
            break
        # Freeze the active flows crossing the bottleneck, in flow order —
        # the oracle's `for flow in frozen` order.
        frozen = [i for i in link_flows[bottleneck] if active[i]]
        seen: Set[int] = set()
        for flow_idx in frozen:
            if flow_idx in seen:
                continue
            seen.add(flow_idx)
            rates[flow_idx] = bottleneck_share
            active[flow_idx] = False
            remaining_active -= 1
            for link_id in flow_link_ids[flow_idx]:
                # Sequential subtract-and-clamp, exactly as the oracle.
                remaining = residual[link_id] - bottleneck_share
                residual[link_id] = remaining if remaining > 0.0 else 0.0
                load[link_id] -= 1
        residual[bottleneck] = 0.0

    return {flow: float(rates[i]) for i, flow in enumerate(flows)}


class FlowScheduler:
    """Drives a set of concurrent flows to completion on the simulator.

    Usage::

        done = scheduler.start_flow((uplink, downlink), size_bytes)
        yield done   # fires when the last byte is delivered
    """

    def __init__(self, sim: Simulator,
                 vectorize_threshold: int = _VECTORIZE_THRESHOLD,
                 small_recompute_limit: int = _SMALL_RECOMPUTE_LIMIT):
        self.sim = sim
        self._flows: List[Flow] = []
        #: Link -> {flow: None} index (dict-as-ordered-set, insertion =
        #: flow_id order).  Covers every link of every in-flight flow,
        #: including infinite-capacity ones (abort_flows looks those up).
        self._link_flows: Dict[Link, Dict[Flow, None]] = {}
        self._next_id = 0
        #: Incremented on every rate change; guards the armed wakeup.
        self._epoch = 0
        self._last_update = sim.now
        self._wakeup: Optional[Timeout] = None
        self.vectorize_threshold = vectorize_threshold
        self.small_recompute_limit = small_recompute_limit
        #: Total bytes delivered since construction (telemetry).
        self.bytes_delivered = 0.0
        #: Superseded wakeups that still fired (telemetry; stays 0 while
        #: kernel cancellation works — observable via repro.obs gauges).
        self.stale_wakeups = 0
        #: Superseded wakeups removed from the kernel heap before firing.
        self.cancelled_wakeups = 0
        #: Flows whose rate was recomputed, cumulative (telemetry: the
        #: incremental scheduler's work; a from-scratch scheduler would
        #: count len(flows) per change).
        self.recomputed_flows = 0

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows."""
        return len(self._flows)

    def link_utilization(self) -> Dict[Link, float]:
        """Instantaneous allocated-rate / capacity per busy link.

        Only links crossed by at least one in-flight flow appear; links
        of infinite capacity report 0.0.  Rates are the current max-min
        allocation, so between scheduler events this is exact.
        """
        allocated: Dict[Link, float] = {}
        for flow in self._flows:
            rate = 0.0 if math.isinf(flow.rate) else flow.rate
            for link in flow.links:
                allocated[link] = allocated.get(link, 0.0) + rate
        return {
            link: (0.0 if math.isinf(link.capacity)
                   else rate / link.capacity)
            for link, rate in allocated.items()
        }

    def start_flow(self, links: Tuple[Link, ...], size: float) -> Event:
        """Begin transferring ``size`` bytes across ``links``.

        Returns an event that fires (with value ``size``) when delivery
        completes.  Zero-sized flows complete immediately.
        """
        if size < 0:
            raise ValueError("flow size must be non-negative")
        done = self.sim.event()
        if size <= _EPSILON_BYTES:
            done.succeed(size)
            return done
        self._advance()
        flow = Flow(self._next_id, tuple(links), size, done)
        self._next_id += 1
        self._flows.append(flow)
        for link in flow.links:
            self._link_flows.setdefault(link, {})[flow] = None
        self._recompute(flow.links)
        return done

    def abort_flows(self, links: Iterable[Link],
                    reason: str = "link down") -> List[Flow]:
        """Fail every in-flight flow crossing any of ``links``.

        Each aborted flow's completion event fails with a
        :class:`TransferAbortedError`; survivors get re-allocated rates.
        Returns the aborted flows.
        """
        self._advance()
        # One pass over the dead links' indexed flows instead of
        # intersecting every in-flight flow's link set.
        doomed: Dict[Flow, None] = {}
        for link in links:
            for flow in self._link_flows.get(link, ()):
                doomed[flow] = None
        if not doomed:
            return []
        aborted = sorted(doomed, key=lambda flow: flow.flow_id)
        seeds: List[Link] = []
        for flow in aborted:
            self._unindex(flow)
            seeds.extend(flow.links)
        doomed_set = set(aborted)
        self._flows = [f for f in self._flows if f not in doomed_set]
        for flow in aborted:
            flow.done.fail(TransferAbortedError(reason))
        self._recompute(seeds)
        return aborted

    def rates_changed(self, links: Optional[Iterable[Link]] = None) -> None:
        """Re-allocate rates after a link capacity mutation.

        ``links`` names the mutated links so only their component is
        recomputed; None recomputes everything (legacy callers).
        Progress up to now is accounted at the old rates; the completion
        wakeup scheduled against them is cancelled and re-armed.
        """
        self._advance()
        self._recompute(tuple(links) if links is not None else None)

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Account progress of all flows up to the current instant."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0:
            return
        for flow in self._flows:
            if math.isinf(flow.rate):
                flow.remaining = 0.0
            else:
                flow.remaining -= flow.rate * elapsed

    def _unindex(self, flow: Flow) -> None:
        for link in flow.links:
            members = self._link_flows.get(link)
            if members is not None:
                members.pop(flow, None)
                if not members:
                    del self._link_flows[link]

    def _component_flows(self,
                         seed_links: Optional[Sequence[Link]]) -> List[Flow]:
        """Flows in the connected component(s) touching ``seed_links``.

        Components are taken over *finite* links only: an infinite-capacity
        link never bottlenecks, so it couples nothing — treating it as a
        non-edge keeps a shared directory host from merging every
        component.  Seed links expand unconditionally (a capacity mutation
        may have just made one infinite).  Returned in flow_id order, the
        relative order a global recomputation would use.
        """
        if seed_links is None:
            return list(self._flows)
        frontier: List[Link] = []
        seen_links: Set[Link] = set()
        for link in seed_links:
            if link not in seen_links and link in self._link_flows:
                seen_links.add(link)
                frontier.append(link)
        component: Set[Flow] = set()
        while frontier:
            link = frontier.pop()
            for flow in self._link_flows[link]:
                if flow in component:
                    continue
                component.add(flow)
                for other in flow.links:
                    if (other not in seen_links
                            and not math.isinf(other.capacity)
                            and other in self._link_flows):
                        seen_links.add(other)
                        frontier.append(other)
        return sorted(component, key=lambda flow: flow.flow_id)

    def _recompute(self, seed_links: Optional[Sequence[Link]]) -> None:
        """Re-allocate the affected component and re-arm the wakeup."""
        self._epoch += 1
        if self._wakeup is not None:
            if self._wakeup.cancel():
                self.cancelled_wakeups += 1
            self._wakeup = None
        if not self._flows:
            return
        if (seed_links is None
                or len(self._flows) <= self.small_recompute_limit):
            # Small in-flight sets: skip component discovery and
            # re-allocate everything — rate-identical (see
            # _SMALL_RECOMPUTE_LIMIT) and cheaper than the BFS.
            component = self._flows
        else:
            component = self._component_flows(seed_links)
        if component:
            profiler = self.sim.profiler
            frame = (profiler.begin("net", "recompute")
                     if profiler is not None else None)
            try:
                if len(component) >= self.vectorize_threshold:
                    rates = max_min_rates_vectorized(component)
                else:
                    rates = max_min_rates(component)
                for flow in component:
                    flow.rate = rates[flow]
            finally:
                if frame is not None:
                    profiler.end(frame)
            self.recomputed_flows += len(component)
        next_finish = math.inf
        for flow in self._flows:
            if flow.rate <= 0:
                continue
            finish = 0.0 if math.isinf(flow.rate) else flow.remaining / flow.rate
            next_finish = min(next_finish, finish)
        if math.isinf(next_finish):
            raise RuntimeError("active flows but no flow can make progress")
        epoch = self._epoch
        wakeup = self.sim.timeout(max(next_finish, 0.0))
        wakeup._add_callback(lambda _event: self._on_wakeup(epoch))
        self._wakeup = wakeup

    def _on_wakeup(self, epoch: int) -> None:
        if epoch != self._epoch:
            # Should be unreachable: superseded wakeups are cancelled on
            # the kernel heap.  Counted, not silent, so heap pollution
            # regressions surface in telemetry.
            self.stale_wakeups += 1
            return
        self._wakeup = None
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPSILON_BYTES]
        if not finished:
            # Sub-resolution guard: at cohort-scale rates (10^8+ B/s) a
            # flow's residual can sit just above the byte epsilon while
            # its finish time is below one float ulp of the clock — the
            # armed wakeup then fires at the *same* timestamp, elapsed
            # rounds to zero and no progress is ever made.  Deliver such
            # flows now; their residual is fluid-model round-off, far
            # below one real byte.
            now = self.sim.now
            for flow in self._flows:
                if flow.rate > 0.0 and now + flow.remaining / flow.rate == now:
                    flow.remaining = 0.0
            finished = [f for f in self._flows
                        if f.remaining <= _EPSILON_BYTES]
        self._flows = [f for f in self._flows if f.remaining > _EPSILON_BYTES]
        seeds: List[Link] = []
        for flow in finished:
            self._unindex(flow)
            seeds.extend(flow.links)
        for flow in finished:
            self.bytes_delivered += flow.total
            flow.done.succeed(flow.total)
        self._recompute(seeds)
