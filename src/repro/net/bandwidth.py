"""Flow-level bandwidth sharing with max-min fairness.

This module models the first-order network effects the paper's mininet
testbed exhibits: a host's NIC capacity is shared among its concurrent
transfers, so a single IPFS provider serving sixteen trainers is a
bottleneck, while spreading uploads over four providers is not.

The model is *flow-level*: a transfer is a fluid flow with a remaining byte
count, and the set of concurrent flows receives a max-min fair allocation
subject to each host's uplink and downlink capacities (progressive-filling
algorithm).  Whenever a flow starts or finishes, every flow's progress is
advanced and rates are recomputed; completions are scheduled by an epoch-
validated timeout, so stale wakeups after a rate change are ignored.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sim import Event, Simulator

__all__ = ["Link", "Flow", "FlowScheduler", "TransferAbortedError",
           "max_min_rates"]

#: Flows narrower than this (bytes) are treated as complete, guarding
#: against float round-off never quite reaching zero.
_EPSILON_BYTES = 1e-6


class TransferAbortedError(Exception):
    """A transfer died before its last byte (link outage, host offline).

    Raised into whoever waits on the transfer's completion event; the
    message layer treats it as a lost message (clients recover via
    timeout + retry).
    """

    def __init__(self, reason: str, src: Optional[str] = None,
                 dst: Optional[str] = None, size: Optional[float] = None):
        route = f" {src}->{dst}" if src and dst else ""
        amount = f" ({size:g}B)" if size is not None else ""
        super().__init__(f"transfer{route}{amount} aborted: {reason}")
        self.reason = reason
        self.src = src
        self.dst = dst
        self.size = size


class Link:
    """A unidirectional capacity constraint (one direction of a host NIC)."""

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"link {name!r} capacity must be positive")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.capacity:g} B/s>"


class Flow:
    """A fluid transfer crossing a set of links."""

    __slots__ = ("flow_id", "links", "remaining", "rate", "done", "total")

    def __init__(self, flow_id: int, links: Tuple[Link, ...], size: float,
                 done: Event):
        self.flow_id = flow_id
        self.links = links
        self.total = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.done = done

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.flow_id} {self.remaining:g}/{self.total:g}B"
            f" @{self.rate:g}B/s>"
        )


def max_min_rates(flows: List[Flow]) -> Dict[Flow, float]:
    """Compute the max-min fair rate allocation for ``flows``.

    Classic progressive filling: repeatedly find the most-contended link,
    give every unfrozen flow crossing it that link's equal share, freeze
    those flows, subtract their rates from the other links they cross.
    Links with infinite capacity never bottleneck; a flow crossing only
    infinite links gets an infinite rate (delivered instantaneously).
    """
    rates: Dict[Flow, float] = {}
    active: Set[Flow] = set(flows)
    residual: Dict[Link, float] = {}
    load: Dict[Link, int] = {}
    for flow in flows:
        for link in flow.links:
            residual.setdefault(link, link.capacity)
            load[link] = load.get(link, 0) + 1

    while active:
        bottleneck: Optional[Link] = None
        bottleneck_share = math.inf
        for link, count in load.items():
            if count <= 0:
                continue
            share = residual[link] / count
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck = link
        if bottleneck is None or math.isinf(bottleneck_share):
            # Every remaining flow crosses only uncontended infinite links.
            for flow in active:
                rates[flow] = math.inf
            break
        frozen = [flow for flow in active if bottleneck in flow.links]
        for flow in frozen:
            rates[flow] = bottleneck_share
            active.remove(flow)
            for link in flow.links:
                residual[link] -= bottleneck_share
                load[link] -= 1
        residual[bottleneck] = 0.0
    return rates


class FlowScheduler:
    """Drives a set of concurrent flows to completion on the simulator.

    Usage::

        done = scheduler.start_flow((uplink, downlink), size_bytes)
        yield done   # fires when the last byte is delivered
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._flows: List[Flow] = []
        self._next_id = 0
        #: Incremented on every rate change; invalidates scheduled wakeups.
        self._epoch = 0
        self._last_update = sim.now
        #: Total bytes delivered since construction (telemetry).
        self.bytes_delivered = 0.0

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows."""
        return len(self._flows)

    def link_utilization(self) -> Dict[Link, float]:
        """Instantaneous allocated-rate / capacity per busy link.

        Only links crossed by at least one in-flight flow appear; links
        of infinite capacity report 0.0.  Rates are the current max-min
        allocation, so between scheduler events this is exact.
        """
        allocated: Dict[Link, float] = {}
        for flow in self._flows:
            rate = 0.0 if math.isinf(flow.rate) else flow.rate
            for link in flow.links:
                allocated[link] = allocated.get(link, 0.0) + rate
        return {
            link: (0.0 if math.isinf(link.capacity)
                   else rate / link.capacity)
            for link, rate in allocated.items()
        }

    def start_flow(self, links: Tuple[Link, ...], size: float) -> Event:
        """Begin transferring ``size`` bytes across ``links``.

        Returns an event that fires (with value ``size``) when delivery
        completes.  Zero-sized flows complete immediately.
        """
        if size < 0:
            raise ValueError("flow size must be non-negative")
        done = self.sim.event()
        if size <= _EPSILON_BYTES:
            done.succeed(size)
            return done
        self._advance()
        flow = Flow(self._next_id, tuple(links), size, done)
        self._next_id += 1
        self._flows.append(flow)
        self._reschedule()
        return done

    def abort_flows(self, links: Iterable[Link],
                    reason: str = "link down") -> List[Flow]:
        """Fail every in-flight flow crossing any of ``links``.

        Each aborted flow's completion event fails with a
        :class:`TransferAbortedError`; survivors get re-allocated rates.
        Returns the aborted flows.
        """
        dead_links = set(links)
        self._advance()
        aborted = [flow for flow in self._flows
                   if dead_links.intersection(flow.links)]
        if not aborted:
            return []
        self._flows = [flow for flow in self._flows
                       if not dead_links.intersection(flow.links)]
        for flow in aborted:
            flow.done.fail(TransferAbortedError(reason))
        self._reschedule()
        return aborted

    def rates_changed(self) -> None:
        """Re-allocate rates after a link capacity mutation.

        Progress up to now is accounted at the old rates; completions
        scheduled against them are invalidated by the epoch bump.
        """
        self._advance()
        self._reschedule()

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Account progress of all flows up to the current instant."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0:
            return
        for flow in self._flows:
            if math.isinf(flow.rate):
                flow.remaining = 0.0
            else:
                flow.remaining -= flow.rate * elapsed

    def _reschedule(self) -> None:
        """Recompute fair rates and schedule the next completion wakeup."""
        self._epoch += 1
        if not self._flows:
            return
        rates = max_min_rates(self._flows)
        next_finish = math.inf
        for flow in self._flows:
            flow.rate = rates[flow]
            if flow.rate <= 0:
                continue
            finish = 0.0 if math.isinf(flow.rate) else flow.remaining / flow.rate
            next_finish = min(next_finish, finish)
        if math.isinf(next_finish):
            raise RuntimeError("active flows but no flow can make progress")
        epoch = self._epoch
        wakeup = self.sim.timeout(max(next_finish, 0.0))
        wakeup._add_callback(lambda _event: self._on_wakeup(epoch))

    def _on_wakeup(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # rates changed since this wakeup was scheduled
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPSILON_BYTES]
        self._flows = [f for f in self._flows if f.remaining > _EPSILON_BYTES]
        for flow in finished:
            self.bytes_delivered += flow.total
            flow.done.succeed(flow.total)
        self._reschedule()
