"""Command-line interface.

Run protocol experiments without writing code::

    python -m repro.cli train --trainers 8 --rounds 3 --verifiable
    python -m repro.cli providers-sweep --trainers 16
    python -m repro.cli commit-cost --sizes 1000 4000

Subcommands
-----------
``train``
    Run federated training on a synthetic classification task and print
    per-round telemetry (delays, bytes, accuracy).
``providers-sweep``
    The Fig. 1 experiment: merge-and-download delays vs provider count.
``commit-cost``
    The Fig. 3 experiment: SHA-256 vs Pedersen commitment cost by size.
``trace``
    Run a session with the event-bus trace exporter attached and write
    every event as one JSON line (see docs/OBSERVABILITY.md), plus a
    counter summary to stderr.
``timeline``
    Run a session, reconstruct per-iteration span trees and write a
    Perfetto / Chrome trace-event JSON timeline (open the file in
    ui.perfetto.dev).
``critical-path``
    Run a session and print each iteration's critical-path
    decomposition and straggler ranking.
``metrics``
    Run a session with the metrics registry and resource sampler
    attached; print the OpenMetrics exposition and (optionally) write a
    JSON run manifest.
``scale``
    Population scaling sweep: run the cohort-modeled scenario at each
    ``--populations`` point, print the wall-clock-per-iteration
    trajectory, optionally write it as a run manifest and diff it
    against a committed baseline (``benchmarks/BENCH_scale.json``)
    with a relative wall-clock threshold (see docs/SCALING.md).
    ``--observe`` attaches the bounded metrics stack and reports its
    peak telemetry memory per point; ``--progress FILE`` streams
    heartbeat JSONL (and a stderr line) while the sweep runs.
``dirshard``
    Directory-sharding sweep: run the cohort-modeled scenario at each
    ``--populations`` x ``--shards`` point and print the sustained
    registrations/sec trajectory (register count over the busiest
    shard's serialized seconds).  Optionally write the manifest and
    diff it against a committed baseline
    (``benchmarks/BENCH_dirshard.json``); per-shard load-share
    counters are always compared warn-only (see docs/SCALING.md).
``status``
    Summarize the heartbeats of a live or finished run from a
    ``--progress`` JSONL file: last iteration, sim clock, event rate
    and telemetry peak per label.  Exits non-zero (with a stderr
    message) when the file is missing, unreadable or holds no
    heartbeats yet, so scripts can poll it; ``--json`` prints the
    latest heartbeat as one machine-readable JSON object under the
    same exit contract.
``profile``
    Run a session under the host-cost profiler and print where the
    *wall* clock went: exclusive time per (subsystem, phase, actor)
    scope, per-subsystem shares and the sim-seconds-per-wall-second
    throughput gauge (see docs/OBSERVABILITY.md).  ``--output`` writes
    the JSON profile artifact, ``--perfetto`` a counter/slice trace
    for ui.perfetto.dev.  With ``--scenario``, ``--record`` appends a
    bench record to a committed trajectory file
    (``benchmarks/BENCH_profile.json``) and ``--baseline`` diffs
    against the trajectory's latest record, exiting non-zero on
    regression (``--warn-only`` in noisy CI).
``compare``
    Diff two run manifests with a relative-change threshold; exits
    non-zero when a metric regressed (use ``--warn-only`` in advisory
    contexts like a new CI baseline).
``explain``
    Differential run diagnosis: given two runs' artifacts (a
    RunManifest and/or HostProfile JSON per side, type sniffed from
    the file), print a ranked attribution of what changed — subsystem
    wall-cost shifts, anomaly kinds that fired in one run only, metric
    regressions and config drift (``--json`` for the machine-readable
    report; see docs/OBSERVABILITY.md).
``audit``
    Run a session with the invariant monitors and flight recorder
    attached; print every invariant violation and sealed incident and
    exit non-zero when any fired (``--warn-only`` to report without
    failing).  ``--inject`` seeds a misbehaving aggregator to prove the
    pipeline catches it.
``incidents``
    Run a seeded-adversary session and write each sealed incident
    bundle (event window, span chain, blame report, Perfetto slice) as
    JSON — the forensics artifact a failed audit would leave behind.
``chaos``
    Run a session under a deterministic fault plan (crashes, link
    outages, directory brown-outs, message loss — see docs/FAULTS.md)
    with the invariant monitors and flight recorder attached; exit
    non-zero when the surviving trainers fail to converge or any
    invariant fired.  Without ``--plan`` it is the honest-infrastructure
    control run (pair with ``--forbid-retry-exhausted`` in CI).
    ``--watch`` attaches the online anomaly watchdog
    (:mod:`repro.obs.anomaly`); ``--expect-anomaly KIND`` fails the run
    unless that kind was classified, ``--forbid-anomalies`` fails it if
    anything fired.

The trace-family subcommands (``trace``/``timeline``/``critical-path``/
``metrics``) share the same session knobs and flush their output even
when the run fails mid-round (the partial timeline is exactly what you
want for debugging that failure).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from .analysis import (
    BenchRecord,
    BenchTrajectory,
    DEFAULT_BENCH_THRESHOLD,
    DEFAULT_DIRSHARD_POPULATIONS,
    DEFAULT_POPULATIONS,
    DEFAULT_SHARD_COUNTS,
    DirshardScenario,
    ScaleScenario,
    diagnose_runs,
    dirshard_manifest,
    format_dirshard_table,
    format_scale_table,
    format_table,
    load_run_artifact,
    optimal_providers,
    run_dirshard_sweep,
    run_scale_sweep,
    scale_manifest,
)
from .core import FLSession, ProtocolConfig
from .core.adversary import (
    AlterUpdateBehavior,
    DropGradientsBehavior,
    LazyBehavior,
    ReplayUpdateBehavior,
)
from .crypto import sha256
from .faults import FaultPlan, RetryPolicy
from .obs import (
    AnomalyWatchdog,
    CountersRegistry,
    CriticalPathAnalyzer,
    FlightRecorder,
    HostProfiler,
    InvariantMonitors,
    JsonlTraceExporter,
    MetricsRegistry,
    PerfettoExporter,
    ResourceSampler,
    RunManifest,
    SYSTEM_WALL_CLOCK,
    SpanCollector,
    compare_manifests,
    format_heartbeat,
    read_progress,
    render_openmetrics,
)
from .core.verification import PartitionCommitter
from .ml import (
    Dataset,
    LogisticRegression,
    SyntheticModel,
    TrainConfig,
    accuracy,
    make_classification,
    split_dirichlet,
    split_iid,
    train_test_split,
)
from .net import NetworkProfile, mbps, megabytes

__all__ = ["main", "build_parser"]

#: ``--inject`` choices: seeded aggregator misbehaviours (fresh
#: instance per run — behaviours keep per-round state).
_INJECTABLE = {
    "drop": lambda: DropGradientsBehavior(keep_fraction=0.5),
    "alter": lambda: AlterUpdateBehavior(offset=1.0),
    "lazy": lambda: LazyBehavior(),
    "replay": lambda: ReplayUpdateBehavior(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Decentralized federated learning over simulated IPFS "
                    "(ICDCS 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser(
        "train", help="run federated training on synthetic data"
    )
    train.add_argument("--trainers", type=int, default=8)
    train.add_argument("--rounds", type=int, default=3)
    train.add_argument("--partitions", type=int, default=4)
    train.add_argument("--aggregators-per-partition", type=int, default=1)
    train.add_argument("--ipfs-nodes", type=int, default=8)
    train.add_argument("--bandwidth-mbps", type=float, default=10.0)
    train.add_argument("--features", type=int, default=16)
    train.add_argument("--samples", type=int, default=1000)
    train.add_argument("--verifiable", action="store_true")
    train.add_argument("--merge-and-download", action="store_true")
    train.add_argument("--providers", type=int, default=0,
                       help="providers per aggregator (0 = sqrt optimum)")
    train.add_argument("--non-iid", action="store_true",
                       help="Dirichlet(0.5) shards instead of IID")
    train.add_argument("--seed", type=int, default=0)

    sweep = subparsers.add_parser(
        "providers-sweep",
        help="Fig. 1: delays vs number of IPFS providers",
    )
    sweep.add_argument("--trainers", type=int, default=16)
    sweep.add_argument("--partition-mb", type=float, default=1.3)
    sweep.add_argument("--bandwidth-mbps", type=float, default=10.0)
    sweep.add_argument("--providers", type=int, nargs="+",
                       default=[1, 2, 4, 8, 16])

    cost = subparsers.add_parser(
        "commit-cost",
        help="Fig. 3: SHA-256 vs Pedersen commitment cost",
    )
    cost.add_argument("--sizes", type=int, nargs="+",
                      default=[1000, 4000])
    cost.add_argument("--curves", nargs="+",
                      default=["secp256k1", "secp256r1"])

    def add_trace_session_args(sub) -> None:
        """Session knobs shared by trace/timeline/critical-path."""
        sub.add_argument("--trainers", type=int, default=4)
        sub.add_argument("--rounds", type=int, default=1)
        sub.add_argument("--partitions", type=int, default=2)
        sub.add_argument("--aggregators-per-partition", type=int, default=1)
        sub.add_argument("--ipfs-nodes", type=int, default=4)
        sub.add_argument("--bandwidth-mbps", type=float, default=10.0)
        sub.add_argument("--params", type=int, default=20_000,
                         help="synthetic model size (flat parameter count)")
        sub.add_argument("--merge-and-download", action="store_true")
        sub.add_argument("--verifiable", action="store_true")
        sub.add_argument("--seed", type=int, default=0)

    trace = subparsers.add_parser(
        "trace",
        help="run a session and export its event timeline as JSONL",
    )
    trace.add_argument("--output", default="-",
                       help="destination file ('-' = stdout)")
    add_trace_session_args(trace)

    timeline = subparsers.add_parser(
        "timeline",
        help="run a session and export a Perfetto span timeline "
             "(open in ui.perfetto.dev)",
    )
    timeline.add_argument("--output", default="-",
                          help="destination file ('-' = stdout)")
    add_trace_session_args(timeline)

    critical = subparsers.add_parser(
        "critical-path",
        help="run a session and print each iteration's critical-path "
             "decomposition and straggler ranking",
    )
    critical.add_argument("--straggler-threshold", type=float, default=0.0,
                          help="slack (sim-seconds) within which a "
                               "participant counts as a straggler")
    add_trace_session_args(critical)

    metrics = subparsers.add_parser(
        "metrics",
        help="run a session and export aggregated metrics "
             "(OpenMetrics text + JSON run manifest)",
    )
    metrics.add_argument("--output", default="-",
                         help="OpenMetrics destination ('-' = stdout)")
    metrics.add_argument("--manifest", default=None,
                         help="also write a JSON run manifest here")
    metrics.add_argument("--sample-interval", type=float, default=0.25,
                         help="resource-sampler period (simulated "
                              "seconds)")
    add_trace_session_args(metrics)

    compare = subparsers.add_parser(
        "compare",
        help="diff two run manifests; non-zero exit on regression",
    )
    compare.add_argument("baseline", help="baseline manifest JSON")
    compare.add_argument("current", help="candidate manifest JSON")
    compare.add_argument("--threshold", type=float, default=0.10,
                         help="relative-change tolerance (0.10 = 10%%)")
    compare.add_argument("--warn-only", action="store_true",
                         help="report regressions but exit 0")

    explain = subparsers.add_parser(
        "explain",
        help="differential run diagnosis: which subsystems, anomalies, "
             "metrics and config keys moved between two runs (each "
             "side a RunManifest or HostProfile JSON, sniffed by "
             "shape)",
    )
    explain.add_argument("base",
                         help="baseline artifact (RunManifest or "
                              "HostProfile JSON)")
    explain.add_argument("current",
                         help="candidate artifact (RunManifest or "
                              "HostProfile JSON)")
    explain.add_argument("--profile-base", default=None,
                         help="baseline HostProfile JSON, when the "
                              "positional is a manifest")
    explain.add_argument("--profile-current", default=None,
                         help="candidate HostProfile JSON, when the "
                              "positional is a manifest")
    explain.add_argument("--threshold", type=float, default=0.10,
                         help="relative-change tolerance for the "
                              "metric diff (0.10 = 10%%)")
    explain.add_argument("--json", action="store_true",
                         help="emit the diagnosis as one JSON object")

    audit = subparsers.add_parser(
        "audit",
        help="run a session under the invariant monitors and flight "
             "recorder; non-zero exit on any violation or incident",
    )
    add_trace_session_args(audit)
    audit.add_argument("--providers", type=int, default=0,
                       help="providers per aggregator with "
                            "--merge-and-download (0 = sqrt optimum)")
    audit.add_argument("--inject", choices=sorted(_INJECTABLE),
                       default=None,
                       help="seed aggregator-0 with a misbehaviour "
                            "(forces --verifiable; 'replay' runs the "
                            "logistic model over real data, since the "
                            "synthetic model's constant gradients make "
                            "a replayed aggregate value-identical)")
    audit.add_argument("--warn-only", action="store_true",
                       help="report violations/incidents but exit 0")
    audit.add_argument("--incidents-dir", default=None,
                       help="also write sealed incident bundles (JSON) "
                            "into this directory")

    incidents = subparsers.add_parser(
        "incidents",
        help="run a seeded-adversary session and write its incident "
             "bundles as JSON",
    )
    add_trace_session_args(incidents)
    incidents.add_argument("--inject", choices=sorted(_INJECTABLE),
                           default="drop",
                           help="the misbehaviour to seed (see audit)")
    incidents.add_argument("--output-dir", default="incidents",
                           help="directory for the bundle JSON files")

    chaos = subparsers.add_parser(
        "chaos",
        help="run a session under a fault plan with the monitors and "
             "flight recorder attached; non-zero exit on "
             "non-convergence or any invariant violation",
    )
    add_trace_session_args(chaos)
    chaos.add_argument("--plan", default=None,
                       help="fault plan file (JSON always; YAML when "
                            "PyYAML is importable); omit for the "
                            "honest-infrastructure control run")
    chaos.add_argument("--request-timeout", type=float, default=5.0,
                       help="per-attempt directory request timeout in "
                            "simulated seconds (default 5.0)")
    chaos.add_argument("--manifest", default=None,
                       help="write a JSON run manifest here (two runs "
                            "of the same seeded plan produce identical "
                            "manifests)")
    chaos.add_argument("--incidents-dir", default=None,
                       help="write sealed incident bundles (JSON) into "
                            "this directory")
    chaos.add_argument("--forbid-retry-exhausted", action="store_true",
                       help="fail if any retry budget was exhausted "
                            "(the CI control-run tripwire: honest "
                            "infrastructure must never exhaust "
                            "retries)")
    chaos.add_argument("--warn-only", action="store_true",
                       help="report problems but exit 0")
    chaos.add_argument("--watch", action="store_true",
                       help="attach the anomaly watchdog (online "
                            "detectors: retry storms, throughput "
                            "collapse, queue runaway, sim stall, "
                            "convergence); anomalies seal incident "
                            "bundles and are summarized at the end")
    chaos.add_argument("--expect-anomaly", action="append",
                       default=None, metavar="KIND",
                       help="fail unless the watchdog classified this "
                            "anomaly kind (repeatable; implies "
                            "--watch) — the CI chaos-detection gate")
    chaos.add_argument("--forbid-anomalies", action="store_true",
                       help="fail if the watchdog classified any "
                            "anomaly (implies --watch) — the control-"
                            "run false-positive tripwire")

    scale = subparsers.add_parser(
        "scale",
        help="population scaling sweep (cohort-modeled trainers); "
             "optionally diff against a committed BENCH_scale.json",
    )
    scale.add_argument("--populations", type=int, nargs="+",
                       default=list(DEFAULT_POPULATIONS),
                       help="total trainer populations to sweep")
    scale.add_argument("--sample", type=int, default=16,
                       help="exactly-simulated trainers per point")
    scale.add_argument("--cohorts", type=int, default=16,
                       help="statistical cohorts for the remainder")
    scale.add_argument("--partitions", type=int, default=4)
    scale.add_argument("--params", type=int, default=40_000)
    scale.add_argument("--ipfs-nodes", type=int, default=8)
    scale.add_argument("--bandwidth-mbps", type=float, default=10.0)
    scale.add_argument("--iterations", type=int, default=1,
                       help="simulated rounds per point")
    scale.add_argument("--repeats", type=int, default=1,
                       help="wall-clock repeats per point (min is kept)")
    scale.add_argument("--seed", type=int, default=7)
    scale.add_argument("--output", default=None,
                       help="write the sweep manifest JSON here")
    scale.add_argument("--baseline", default=None,
                       help="committed manifest to diff against "
                            "(e.g. benchmarks/BENCH_scale.json)")
    scale.add_argument("--threshold", type=float, default=0.20,
                       help="relative regression tolerance vs baseline")
    scale.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0")
    scale.add_argument("--observe", action="store_true",
                       help="attach the bounded metrics stack (registry "
                            "+ resource sampler) to every point and "
                            "report its cost")
    scale.add_argument("--event-sample-rate", type=float, default=1.0,
                       help="deterministic sampling rate for the "
                            "firehose event families (requires "
                            "--observe to have any effect)")
    scale.add_argument("--progress", default=None, metavar="JSONL",
                       help="stream heartbeat records to this JSONL "
                            "file (and stderr) while the sweep runs")

    dirshard = subparsers.add_parser(
        "dirshard",
        help="directory-sharding sweep (registrations/sec vs shard "
             "count); optionally diff against a committed "
             "BENCH_dirshard.json",
    )
    dirshard.add_argument("--populations", type=int, nargs="+",
                          default=list(DEFAULT_DIRSHARD_POPULATIONS),
                          help="total trainer populations to sweep")
    dirshard.add_argument("--shards", type=int, nargs="+",
                          default=list(DEFAULT_SHARD_COUNTS),
                          help="directory shard counts to sweep "
                               "(1 = classic single server)")
    dirshard.add_argument("--replication", type=int, default=1,
                          help="replicas per key range (capped at the "
                               "shard count)")
    dirshard.add_argument("--placement", default="modulo",
                          choices=["modulo", "consistent-hash"],
                          help="shard placement policy (modulo keeps "
                               "load balanced at every shard count; "
                               "see docs/SCALING.md)")
    dirshard.add_argument("--sample", type=int, default=16,
                          help="exactly-simulated trainers per point")
    dirshard.add_argument("--cohorts", type=int, default=16,
                          help="statistical cohorts for the remainder")
    dirshard.add_argument("--partitions", type=int, default=8)
    dirshard.add_argument("--params", type=int, default=40_000)
    dirshard.add_argument("--ipfs-nodes", type=int, default=8)
    dirshard.add_argument("--bandwidth-mbps", type=float, default=10.0)
    dirshard.add_argument("--processing-delay", type=float, default=2e-5,
                          help="directory serialization seconds per "
                               "request unit (the work sharding divides)")
    dirshard.add_argument("--iterations", type=int, default=1,
                          help="simulated rounds per point")
    dirshard.add_argument("--repeats", type=int, default=1,
                          help="wall-clock repeats per point (min is kept)")
    dirshard.add_argument("--seed", type=int, default=7)
    dirshard.add_argument("--output", default=None,
                          help="write the sweep manifest JSON here")
    dirshard.add_argument("--baseline", default=None,
                          help="committed manifest to diff against "
                               "(e.g. benchmarks/BENCH_dirshard.json)")
    dirshard.add_argument("--threshold", type=float, default=0.20,
                          help="relative regression tolerance vs "
                               "baseline (shard shares are always "
                               "warn-only)")
    dirshard.add_argument("--warn-only", action="store_true",
                          help="report regressions but exit 0")

    status = subparsers.add_parser(
        "status",
        help="summarize the heartbeats of a live or finished run "
             "(reads a --progress JSONL file); non-zero exit when the "
             "file is missing or holds no heartbeats yet",
    )
    status.add_argument("progress", help="progress JSONL file to read")
    status.add_argument("--tail", type=int, default=1,
                        help="heartbeats to show per label")
    status.add_argument("--json", action="store_true",
                        help="print the latest heartbeat as one JSON "
                             "object instead of the human summary "
                             "(same non-zero exit when there is "
                             "nothing to report)")

    profile = subparsers.add_parser(
        "profile",
        help="run a session under the host-cost profiler; print the "
             "wall-clock hotspot report and optionally record/gate a "
             "bench trajectory",
    )
    add_trace_session_args(profile)
    profile.add_argument("--providers", type=int, default=0,
                         help="providers per aggregator with "
                              "--merge-and-download (0 = sqrt optimum)")
    profile.add_argument("--population", type=int, default=0,
                         help="total trainer population; > 0 attaches "
                              "a cohort plan so the cohort-modeled "
                              "remainder is profiled too")
    profile.add_argument("--cohorts", type=int, default=16,
                         help="statistical cohorts with --population")
    profile.add_argument("--observe", action="store_true",
                         help="attach the metrics registry so the "
                              "per-subscriber telemetry cost shows up "
                              "in the obs subsystem")
    profile.add_argument("--top", type=int, default=12,
                         help="scopes to list in the hotspot table")
    profile.add_argument("--output", default=None,
                         help="write the JSON profile artifact here")
    profile.add_argument("--perfetto", default=None,
                         help="write a Perfetto counter/slice trace "
                              "here (open in ui.perfetto.dev)")
    profile.add_argument("--scenario", default=None,
                         help="bench scenario name keying --record / "
                              "--baseline")
    profile.add_argument("--baseline", default=None,
                         help="bench trajectory JSON to diff against "
                              "(e.g. benchmarks/BENCH_profile.json); "
                              "requires --scenario")
    profile.add_argument("--record", default=None,
                         help="append this run's bench record to the "
                              "trajectory JSON here; requires "
                              "--scenario")
    profile.add_argument("--threshold", type=float,
                         default=DEFAULT_BENCH_THRESHOLD,
                         help="relative regression tolerance vs the "
                              "baseline record")
    profile.add_argument("--warn-only", action="store_true",
                         help="report regressions but exit 0")

    reproduce = subparsers.add_parser(
        "reproduce",
        help="run the paper-figure benchmarks (writes tables under "
             "benchmarks/results/)",
    )
    reproduce.add_argument(
        "--figures", nargs="+", default=["fig1", "fig2", "fig3"],
        choices=["fig1", "fig2", "fig3", "all"],
    )
    return parser


# -- train -----------------------------------------------------------------------


def _run_train(args) -> int:
    data = make_classification(
        num_samples=args.samples, num_features=args.features,
        class_separation=2.5, seed=args.seed,
    )
    train_set, test_set = train_test_split(data, seed=args.seed)
    if args.non_iid:
        shards = split_dirichlet(train_set, args.trainers, alpha=0.5,
                                 seed=args.seed)
    else:
        shards = split_iid(train_set, args.trainers, seed=args.seed)

    config = ProtocolConfig(
        num_partitions=args.partitions,
        aggregators_per_partition=args.aggregators_per_partition,
        t_train=600.0,
        t_sync=1200.0,
        verifiable=args.verifiable,
        merge_and_download=args.merge_and_download,
        providers_per_aggregator=args.providers,
        seed=args.seed,
    )
    config.train = TrainConfig(epochs=2, learning_rate=0.5, batch_size=32)
    session = FLSession(
        config,
        model_factory=lambda: LogisticRegression(
            num_features=args.features, num_classes=2, seed=0),
        datasets=shards,
        network=NetworkProfile(num_ipfs_nodes=args.ipfs_nodes,
                               bandwidth_mbps=args.bandwidth_mbps),
    )
    print(f"{args.trainers} trainers, {args.partitions} partitions x "
          f"{args.aggregators_per_partition} aggregators, "
          f"{args.ipfs_nodes} IPFS nodes @ {args.bandwidth_mbps} Mbps"
          + (", verifiable" if args.verifiable else "")
          + (", merge-and-download" if args.merge_and_download else ""))
    rows = []
    for round_index in range(args.rounds):
        metrics = session.run_iteration()
        rows.append([
            round_index,
            metrics.duration,
            metrics.aggregation_delay,
            metrics.mean_upload_delay,
            len(metrics.trainers_completed),
            accuracy(session.model_of(0), test_set),
        ])
    print(format_table(
        ["round", "duration (s)", "agg delay (s)", "upload (s)",
         "completed", "accuracy"],
        rows,
    ))
    session.consensus_params()
    print("all trainers hold the identical global model")
    return 0


# -- providers-sweep ---------------------------------------------------------------


def _run_providers_sweep(args) -> int:
    partition_params = int(megabytes(args.partition_mb) / 8)
    shards = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(args.trainers)
    ]
    rows = []
    for providers in args.providers:
        config = ProtocolConfig(
            num_partitions=1,
            t_train=3600.0,
            t_sync=7200.0,
            merge_and_download=True,
            providers_per_aggregator=providers,
            update_mode="gradient",
            poll_interval=0.25,
        )
        session = FLSession(
            config,
            model_factory=lambda: SyntheticModel(partition_params),
            datasets=shards,
            network=NetworkProfile(num_ipfs_nodes=max(args.providers),
                                   bandwidth_mbps=args.bandwidth_mbps),
        )
        metrics = session.run_iteration()
        rows.append([
            providers,
            metrics.mean_upload_delay,
            metrics.aggregation_delay,
            metrics.end_to_end_delay,
        ])
    print(format_table(
        ["providers", "upload (s)", "aggregation (s)", "end-to-end (s)"],
        rows,
        title=f"{args.trainers} trainers, {args.partition_mb} MB "
              f"partition, {args.bandwidth_mbps} Mbps",
    ))
    bandwidth = mbps(args.bandwidth_mbps)
    p_star = optimal_providers(args.trainers, node_bandwidth=bandwidth,
                               aggregator_bandwidth=bandwidth)
    print(f"\nanalytic optimum sqrt(b*T/d) = {p_star:.1f} providers")
    return 0


# -- commit-cost ---------------------------------------------------------------------


def _run_commit_cost(args, clock=None) -> int:
    if clock is None:
        clock = SYSTEM_WALL_CLOCK
    rng = np.random.default_rng(0)
    rows = []
    for size in args.sizes:
        vector = rng.normal(size=size)
        started = clock.seconds()
        sha256(vector.tobytes())
        hash_seconds = clock.seconds() - started
        row = [size, hash_seconds]
        for curve in args.curves:
            committer = PartitionCommitter(partition_len=size, curve=curve)
            started = clock.seconds()
            committer.encode_and_commit(vector)
            row.append(clock.seconds() - started)
        rows.append(row)
    print(format_table(
        ["params", "sha256 (s)"] + [f"{curve} (s)" for curve in args.curves],
        rows,
        title="commitment cost by model size",
    ))
    return 0


# -- trace / timeline / critical-path ----------------------------------------------


def _build_trace_session(args, behaviors=None, model_factory=None,
                         datasets=None, faults=None,
                         cohort=None) -> FLSession:
    """The shared session the trace-family subcommands run.

    ``behaviors``/``model_factory``/``datasets`` let the audit-family
    subcommands seed adversaries or swap in a real model; the
    trace-family callers use the synthetic defaults.  ``faults`` is the
    chaos subcommand's :class:`~repro.faults.FaultPlan`; chaos also
    defines ``args.request_timeout``, which bounds directory requests
    and turns on the shared retry policy even for its control run.
    ``cohort`` is the profile subcommand's
    :class:`~repro.core.CohortPlan` for population-scale runs.
    """
    config = ProtocolConfig(
        num_partitions=args.partitions,
        aggregators_per_partition=args.aggregators_per_partition,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
        verifiable=args.verifiable,
        merge_and_download=args.merge_and_download,
        providers_per_aggregator=getattr(args, "providers", 0),
        seed=args.seed,
    )
    if datasets is None:
        datasets = [
            Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
            for index in range(args.trainers)
        ]
    if model_factory is None:
        model_factory = lambda: SyntheticModel(args.params)  # noqa: E731
    request_timeout = getattr(args, "request_timeout", None)
    profile = NetworkProfile(
        num_ipfs_nodes=args.ipfs_nodes,
        bandwidth_mbps=args.bandwidth_mbps,
        directory_request_timeout=request_timeout,
        retry=RetryPolicy() if request_timeout is not None else None,
    )
    return FLSession(
        config,
        model_factory=model_factory,
        datasets=datasets,
        network=profile,
        faults=faults,
        behaviors=behaviors,
        cohort=cohort,
    )


def _run_rounds(session: FLSession, rounds: int) -> Optional[BaseException]:
    """Run ``rounds`` iterations, capturing (not raising) a failure so
    callers can flush whatever the run produced before reporting it."""
    try:
        session.run(rounds=rounds)
    except Exception as exc:
        return exc
    return None


def _report_failure(failure: Optional[BaseException]) -> int:
    if failure is None:
        return 0
    print(f"run failed: {failure!r} (partial output kept)",
          file=sys.stderr)
    return 1


def _run_trace(args) -> int:
    session = _build_trace_session(args)
    counters = CountersRegistry(session.sim.bus)
    destination = sys.stdout if args.output == "-" else args.output
    # The context manager closes/flushes the exporter even when the run
    # dies mid-round, so the timeline file stays valid JSONL.
    with JsonlTraceExporter(session.sim.bus, destination) as exporter:
        failure = _run_rounds(session, args.rounds)
        events_written = exporter.events_written
    print(f"{events_written} events"
          + ("" if args.output == "-" else f" -> {args.output}"),
          file=sys.stderr)
    for name, value in counters.snapshot().items():
        print(f"{name:44s} {value:g}", file=sys.stderr)
    return _report_failure(failure)


def _run_timeline(args) -> int:
    session = _build_trace_session(args)
    collector = SpanCollector(session.sim.bus)
    try:
        failure = _run_rounds(session, args.rounds)
    finally:
        collector.close()
    exporter = PerfettoExporter(
        collector.trees[iteration] for iteration in sorted(collector.trees)
    )
    if args.output == "-":
        exporter.write(sys.stdout)
        sys.stdout.write("\n")
    else:
        exporter.write(args.output)
    print(f"{len(collector.trees)} iteration(s)"
          + ("" if args.output == "-"
             else f" -> {args.output} (open in ui.perfetto.dev)"),
          file=sys.stderr)
    return _report_failure(failure)


def _run_critical_path(args) -> int:
    session = _build_trace_session(args)
    collector = SpanCollector(session.sim.bus)
    try:
        failure = _run_rounds(session, args.rounds)
    finally:
        collector.close()
    analyzer = CriticalPathAnalyzer(collector)
    for iteration in analyzer.iterations():
        path = analyzer.analyze(iteration)
        if path is None:
            print(f"iteration {iteration}: no critical path "
                  "(no aggregation completed)")
            continue
        print(path.format())
        report = analyzer.straggler_report(
            iteration, threshold=args.straggler_threshold
        )
        if report is not None and report.entries:
            print(report.format())
        print()
    return _report_failure(failure)


def _run_metrics(args) -> int:
    session = _build_trace_session(args)
    registry = MetricsRegistry(session.sim.bus)
    sampler = ResourceSampler.for_session(
        session, registry, interval=args.sample_interval
    )
    try:
        failure = _run_rounds(session, args.rounds)
    finally:
        sampler.stop()
        registry.close()
    exposition = render_openmetrics(registry)
    if args.output == "-":
        sys.stdout.write(exposition)
    else:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(exposition)
    if args.manifest is not None:
        manifest = RunManifest.collect(registry, session.fingerprint())
        manifest.write(args.manifest)
    observed = sum(h.count for h in registry.histograms().values())
    print(f"{observed} observations across "
          f"{sum(1 for h in registry.histograms().values() if h.count)} "
          f"histograms, {sampler.samples_taken} resource samples"
          + ("" if args.output == "-" else f" -> {args.output}")
          + ("" if args.manifest is None
             else f", manifest -> {args.manifest}"),
          file=sys.stderr)
    return _report_failure(failure)


# -- audit / incidents -------------------------------------------------------------


def _audit_session(args):
    """Build the (session, rounds) pair for audit-family subcommands,
    applying the ``--inject`` adjustments."""
    behaviors = None
    model_factory = None
    datasets = None
    rounds = args.rounds
    if args.inject is not None:
        behaviors = {"aggregator-0": _INJECTABLE[args.inject]()}
        if not args.verifiable:
            args.verifiable = True  # detection needs commitments
            print("--inject forces --verifiable", file=sys.stderr)
        if args.inject == "replay":
            # A replayed aggregate is only distinguishable when the
            # gradients change between rounds; the synthetic model's
            # are constant, so run the logistic model on real data.
            data = make_classification(
                num_samples=200, num_features=8,
                class_separation=3.0, seed=args.seed,
            )
            datasets = split_iid(data, args.trainers, seed=args.seed)
            model_factory = lambda: LogisticRegression(  # noqa: E731
                num_features=8, num_classes=2, seed=0)
            if rounds < 2:
                rounds = 2  # round 0 has nothing to replay
                print("--inject replay needs 2 rounds; running 2",
                      file=sys.stderr)
    session = _build_trace_session(
        args, behaviors=behaviors, model_factory=model_factory,
        datasets=datasets,
    )
    return session, rounds


def _write_bundles(incidents, directory: str) -> List[str]:
    import os
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index, bundle in enumerate(incidents):
        name = (f"incident-{index:02d}-i{bundle.iteration}"
                f"-{bundle.kind}.json")
        path = os.path.join(directory, name)
        bundle.write(path)
        paths.append(path)
    return paths


def _run_audit(args) -> int:
    session, rounds = _audit_session(args)
    # The recorder subscribes first so its ring already holds the
    # triggering event when a monitor's InvariantViolated arrives.
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    failure = _run_rounds(session, rounds)
    violations = monitors.finalize()  # runs end-of-run leak checks too
    recorder.close()
    for violation in violations:
        print(f"VIOLATION [{violation.invariant}] {violation.subject}: "
              f"{violation.detail}")
    for bundle in recorder.incidents:
        print(bundle.summary())
    if recorder.suppressed:
        print(f"({recorder.suppressed} further incident(s) suppressed)")
    if args.incidents_dir and recorder.incidents:
        for path in _write_bundles(recorder.incidents, args.incidents_dir):
            print(f"bundle -> {path}", file=sys.stderr)
    clean = not violations and not recorder.incidents
    print("audit clean" if clean else
          f"audit FAILED: {len(violations)} violation(s), "
          f"{len(recorder.incidents)} incident(s)")
    status = _report_failure(failure)
    if status:
        return status
    if not clean and not args.warn_only:
        return 1
    return 0


def _run_incidents(args) -> int:
    session, rounds = _audit_session(args)
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    failure = _run_rounds(session, rounds)
    monitors.finalize()
    recorder.close()
    if not recorder.incidents:
        print("no incidents sealed (nothing misbehaved?)")
        return _report_failure(failure)
    for bundle in recorder.incidents:
        print(bundle.summary())
    for path in _write_bundles(recorder.incidents, args.output_dir):
        print(f"bundle -> {path}")
    return _report_failure(failure)


# -- chaos ---------------------------------------------------------------------------


def _run_chaos(args) -> int:
    plan = FaultPlan.load(args.plan) if args.plan else FaultPlan()
    session = _build_trace_session(args, faults=plan)
    # Subscription order matters: the recorder first, so its ring
    # already holds a watchdog anomaly when the seal check runs.
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    counters = CountersRegistry(session.sim.bus)
    registry = MetricsRegistry(session.sim.bus) if args.manifest else None
    watch = bool(args.watch or args.expect_anomaly
                 or args.forbid_anomalies)
    watchdog = AnomalyWatchdog.for_session(session) if watch else None
    failure = _run_rounds(session, args.rounds)
    if watchdog is not None:
        watchdog.finalize()
    if failure is None:
        # Evict every finished round's objects first, so the end-of-run
        # leak check only flags storage the protocol truly abandoned
        # (a crashed trainer's orphaned upload is reclaimed by GC, not
        # a leak).
        session.collect_garbage(keep_iterations=0)
    violations = monitors.finalize()
    recorder.close()
    if registry is not None:
        registry.close()
        manifest = RunManifest.collect(registry, session.fingerprint())
        manifest.write(args.manifest)
        print(f"manifest -> {args.manifest}", file=sys.stderr)
    snapshot = counters.snapshot()

    problems: List[str] = []
    final = (session.metrics.iterations[-1]
             if session.metrics.iterations else None)
    survivors = list(final.trainers_completed) if final is not None else []
    if not survivors:
        problems.append("no trainer completed the final round")
    else:
        by_name = {trainer.name: trainer for trainer in session.trainers}
        reference = by_name[survivors[0]].model.get_params()
        diverged = [
            name for name in survivors[1:]
            if not np.allclose(by_name[name].model.get_params(),
                               reference, atol=1e-9)
        ]
        if diverged:
            problems.append("surviving trainers diverged: "
                            + ", ".join(diverged))
    retries_exhausted = int(snapshot.get("protocol.retries_exhausted", 0))
    if args.forbid_retry_exhausted and retries_exhausted:
        problems.append(f"{retries_exhausted} retry budget(s) exhausted "
                        "on a run that forbids it")
    if violations:
        problems.append(f"{len(violations)} invariant violation(s)")
    if watchdog is not None:
        observed_kinds = watchdog.kinds()
        missing = [kind for kind in (args.expect_anomaly or ())
                   if kind not in observed_kinds]
        if missing:
            problems.append("expected anomaly kind(s) not detected: "
                            + ", ".join(missing))
        if args.forbid_anomalies and watchdog.anomalies:
            problems.append(
                f"{len(watchdog.anomalies)} anomaly(ies) classified on "
                "a run that forbids them: "
                + ", ".join(f"{kind}={count}" for kind, count
                            in watchdog.summary().items()))

    for violation in violations:
        print(f"VIOLATION [{violation.invariant}] {violation.subject}: "
              f"{violation.detail}")
    if watchdog is not None:
        for anomaly in watchdog.anomalies:
            evidence = " ".join(
                f"{key}={value}" for key, value in anomaly.evidence)
            print(f"ANOMALY [{anomaly.kind}/{anomaly.severity}] "
                  f"t={anomaly.at:.3f} iter={anomaly.iteration} "
                  f"{anomaly.detector}: {evidence}")
        print("watchdog: no anomalies" if not watchdog.anomalies else
              "watchdog: " + ", ".join(
                  f"{kind}={count}" for kind, count
                  in watchdog.summary().items()))
    for bundle in recorder.incidents:
        print(bundle.summary())
    if args.incidents_dir and recorder.incidents:
        for path in _write_bundles(recorder.incidents, args.incidents_dir):
            print(f"bundle -> {path}", file=sys.stderr)
    print(f"plan: {len(plan)} spec(s) (seed {plan.seed}), "
          f"{int(snapshot.get('faults.injected', 0))} injected, "
          f"{int(snapshot.get('faults.healed', 0))} healed; "
          f"{int(snapshot.get('protocol.participants_degraded', 0))} "
          f"participant-round(s) degraded, "
          f"{int(snapshot.get('net.transfers_aborted', 0))} transfer(s) "
          f"aborted, {retries_exhausted} retry budget(s) exhausted")
    if survivors:
        print(f"{len(survivors)}/{len(session.trainers)} trainers "
              f"completed the final round in consensus"
              if not problems else
              f"{len(survivors)}/{len(session.trainers)} trainers "
              f"completed the final round")
    print("chaos clean" if not problems
          else "chaos FAILED: " + "; ".join(problems))
    status = _report_failure(failure)
    if status:
        return status
    if problems and not args.warn_only:
        return 1
    return 0


def _run_scale(args) -> int:
    scenario = ScaleScenario(
        exact_trainers=args.sample,
        cohorts=args.cohorts,
        num_partitions=args.partitions,
        model_params=args.params,
        num_ipfs_nodes=args.ipfs_nodes,
        bandwidth_mbps=args.bandwidth_mbps,
        iterations=args.iterations,
        seed=args.seed,
        observed=args.observe,
        event_sample_rate=args.event_sample_rate,
    )
    progress_stream = sys.stderr if args.progress else None
    points = run_scale_sweep(args.populations, scenario,
                             repeats=args.repeats,
                             progress_jsonl=args.progress,
                             progress_stream=progress_stream)
    print(format_scale_table(
        points,
        title=f"Scaling in population ({scenario.exact_trainers} exact "
              f"trainers, {scenario.cohorts} cohorts, "
              f"{scenario.bandwidth_mbps:g} Mbps)",
    ))
    manifest = scale_manifest(points, scenario)
    if args.output:
        manifest.write(args.output)
        print(f"manifest written to {args.output}")
    if args.baseline:
        baseline = RunManifest.load(args.baseline)
        diff = compare_manifests(baseline, manifest,
                                 threshold=args.threshold)
        print(diff.format())
        if diff.has_regressions and not args.warn_only:
            return 1
    return 0


def _run_dirshard(args) -> int:
    scenario = DirshardScenario(
        exact_trainers=args.sample,
        cohorts=args.cohorts,
        num_partitions=args.partitions,
        model_params=args.params,
        num_ipfs_nodes=args.ipfs_nodes,
        bandwidth_mbps=args.bandwidth_mbps,
        iterations=args.iterations,
        seed=args.seed,
        replication=args.replication,
        placement=args.placement,
        processing_delay=args.processing_delay,
    )
    points = run_dirshard_sweep(args.populations, args.shards,
                                scenario=scenario, repeats=args.repeats)
    print(format_dirshard_table(
        points,
        title=f"Directory sharding ({scenario.placement} placement, "
              f"replication {scenario.replication}, "
              f"{scenario.processing_delay:g}s/unit serialization)",
    ))
    manifest = dirshard_manifest(points, scenario)
    if args.output:
        manifest.write(args.output)
        print(f"manifest written to {args.output}")
    if args.baseline:
        baseline = RunManifest.load(args.baseline)
        # Two counter families never gate: load shares (they move
        # whenever the shard list or placement changes, which the
        # fingerprint already guards) and regs_per_sec (higher is
        # *better* there, while the manifest diff treats growth as the
        # regression direction — max_busy_seconds, its exact inverse
        # dividend, carries the throughput gate instead).
        keys = set(manifest.counters) | set(baseline.counters)
        diff = compare_manifests(
            baseline, manifest, threshold=args.threshold,
            thresholds={k: float("inf") for k in keys
                        if ".share." in k or k.endswith(".regs_per_sec")},
        )
        print(diff.format())
        if diff.has_regressions and not args.warn_only:
            return 1
    return 0


def _run_profile(args) -> int:
    from .core import CohortPlan

    cohort = None
    if args.population > 0:
        cohort = CohortPlan(population=args.population,
                            cohorts=args.cohorts, seed=args.seed)
    session = _build_trace_session(args, cohort=cohort)
    registry = MetricsRegistry(session.sim.bus) if args.observe else None
    profiler = HostProfiler()
    profiler.attach(session)
    try:
        failure = _run_rounds(session, args.rounds)
    finally:
        profiler.uninstall()
        if registry is not None:
            registry.close()
    profile = profiler.profile(fingerprint=session.fingerprint())
    print(profile.format(top=args.top))
    if args.output:
        profile.write(args.output)
        print(f"profile -> {args.output}", file=sys.stderr)
    if args.perfetto:
        exporter = PerfettoExporter()
        exporter.add_profile(profile, label=args.scenario or "profile")
        exporter.write(args.perfetto)
        print(f"perfetto trace -> {args.perfetto} "
              "(open in ui.perfetto.dev)", file=sys.stderr)
    status = _report_failure(failure)
    if status:
        return status
    if (args.baseline or args.record) and not args.scenario:
        print("--baseline/--record require --scenario", file=sys.stderr)
        return 2
    if args.scenario:
        record = BenchRecord.from_profile(
            profile, scenario=args.scenario, iterations=args.rounds,
        )
        if args.baseline:
            trajectory = BenchTrajectory.load(args.baseline)
            diff = trajectory.compare(record, threshold=args.threshold)
            if diff is None:
                print(f"no committed record for scenario "
                      f"{args.scenario!r} in {args.baseline}; "
                      "nothing to compare")
            else:
                print(diff.format())
                if diff.has_regressions and not args.warn_only:
                    return 1
        if args.record:
            trajectory = BenchTrajectory.load(args.record)
            trajectory.append(record)
            trajectory.save(args.record)
            print(f"bench record ({args.scenario}) -> {args.record}",
                  file=sys.stderr)
    return 0


def _run_status(args) -> int:
    try:
        records = read_progress(args.progress)
    except FileNotFoundError:
        print(f"status: progress file not found: {args.progress}",
              file=sys.stderr)
        return 1
    except OSError as error:
        print(f"status: cannot read progress file: {error}",
              file=sys.stderr)
        return 1
    if not records:
        print(f"status: no heartbeats in {args.progress} (yet)",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(records[-1], sort_keys=True))
        return 0
    by_label = {}
    for record in records:
        by_label.setdefault(record.get("label") or "run", []).append(record)
    tail = max(args.tail, 1)
    for label, beats in by_label.items():
        for record in beats[-tail:]:
            print(format_heartbeat(record))
    latest = records[-1]
    peak = latest.get("peak_telemetry_bytes")
    summary = (f"{len(records)} heartbeat(s), {len(by_label)} label(s); "
               f"latest: iteration {latest.get('iteration', -1)} at "
               f"sim t={latest.get('sim_seconds', 0.0):.1f}s, "
               f"{latest.get('events', 0)} events")
    if peak is not None:
        summary += f", telemetry peak {peak / 1024.0:.1f} KiB"
    print(summary)
    return 0


def _run_compare(args) -> int:
    baseline = RunManifest.load(args.baseline)
    current = RunManifest.load(args.current)
    diff = compare_manifests(baseline, current, threshold=args.threshold)
    print(diff.format())
    if diff.has_regressions and not args.warn_only:
        return 1
    return 0


def _run_explain(args) -> int:
    artifacts = {"manifest": {}, "profile": {}}
    try:
        for side, path in (("base", args.base),
                           ("current", args.current)):
            kind, artifact = load_run_artifact(path)
            artifacts[kind][side] = artifact
        for side, path in (("base", args.profile_base),
                           ("current", args.profile_current)):
            if not path:
                continue
            kind, artifact = load_run_artifact(path)
            if kind != "profile":
                raise ValueError(f"{path}: expected a HostProfile")
            artifacts["profile"][side] = artifact
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"explain: {error}", file=sys.stderr)
        return 1
    try:
        report = diagnose_runs(
            base_manifest=artifacts["manifest"].get("base"),
            current_manifest=artifacts["manifest"].get("current"),
            base_profile=artifacts["profile"].get("base"),
            current_profile=artifacts["profile"].get("current"),
            threshold=args.threshold,
        )
    except ValueError as error:
        print(f"explain: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        print(report.format())
    return 0


def _run_reproduce(args) -> int:
    import pytest as pytest_module
    targets = {
        "fig1": "test_fig1_providers.py",
        "fig2": "test_fig2_aggregators.py",
        "fig3": "test_fig3_commitments.py",
    }
    figures = args.figures
    if "all" in figures:
        selection = None  # the whole benchmarks directory
    else:
        selection = [targets[figure] for figure in figures]
    import os
    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))),
        "benchmarks",
    )
    if not os.path.isdir(bench_dir):
        print("benchmarks/ directory not found next to the package; "
              "run from a source checkout")
        return 1
    paths = ([bench_dir] if selection is None
             else [os.path.join(bench_dir, name) for name in selection])
    return pytest_module.main(paths + ["--benchmark-only", "-q"])


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return _run_train(args)
    if args.command == "providers-sweep":
        return _run_providers_sweep(args)
    if args.command == "commit-cost":
        return _run_commit_cost(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "timeline":
        return _run_timeline(args)
    if args.command == "critical-path":
        return _run_critical_path(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "scale":
        return _run_scale(args)
    if args.command == "dirshard":
        return _run_dirshard(args)
    if args.command == "status":
        return _run_status(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "audit":
        return _run_audit(args)
    if args.command == "incidents":
        return _run_incidents(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "reproduce":
        return _run_reproduce(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
