"""repro — reproduction of "Towards Efficient Decentralized Federated
Learning" (Pappas et al., ICDCS 2022).

A decentralized federated-learning system where participants communicate
*indirectly* through a (simulated) IPFS storage network, with verifiable
aggregation via homomorphic Pedersen vector commitments and the
merge-and-download provider-side pre-aggregation optimization.

The primary entry points live right here::

    from repro import (FLSession, ProtocolConfig, NetworkProfile,
                       FaultPlan, DirectoryProfile)

Subpackages
-----------
- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.net` — flow-level network emulator (mininet substitute).
- :mod:`repro.ipfs` — simulated IPFS: CIDs, DHT, nodes, pub/sub,
  replication, merge-and-download.
- :mod:`repro.crypto` — secp256k1/secp256r1, multi-exponentiation,
  Pedersen vector commitments (from scratch).
- :mod:`repro.ml` — models, federated datasets, local training, FedAvg.
- :mod:`repro.core` — the protocol: directory service, trainers,
  aggregators, bootstrapper, verification, adversaries, sessions.
- :mod:`repro.faults` — deterministic fault injection and churn.
- :mod:`repro.obs` — typed event bus, telemetry, counters, monitors,
  flight recorder, run manifests.
- :mod:`repro.baselines` — IPLS-direct, centralized FL, blockchain FL.
- :mod:`repro.analysis` — analytic delay/provider models and result tables.

Quickstart
----------
>>> from repro import FLSession, NetworkProfile, ProtocolConfig
>>> from repro.ml import LogisticRegression, make_classification, split_iid
>>> data = make_classification(num_samples=320, num_features=10)
>>> shards = split_iid(data, 4)
>>> session = FLSession(
...     ProtocolConfig(num_partitions=2, t_train=300, t_sync=900),
...     model_factory=lambda: LogisticRegression(num_features=10),
...     datasets=shards,
...     network=NetworkProfile(bandwidth_mbps=10.0),
... )
>>> _ = session.run(rounds=1)
"""

from .core import (
    Directory,
    DirectoryProfile,
    FLSession,
    ProtocolConfig,
    ShardRouter,
    ShardedDirectory,
)
from .core.telemetry import IterationMetrics, SessionMetrics
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryExhaustedError,
    RetryPolicy,
)
from .net import NetworkProfile
from .obs import (
    CountersRegistry,
    EventBus,
    FlightRecorder,
    InvariantMonitors,
    MetricsRegistry,
    RunManifest,
    TelemetryCollector,
)

__version__ = "1.0.0"

__all__ = [
    "CountersRegistry",
    "Directory",
    "DirectoryProfile",
    "EventBus",
    "FLSession",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FlightRecorder",
    "InvariantMonitors",
    "IterationMetrics",
    "MetricsRegistry",
    "NetworkProfile",
    "ProtocolConfig",
    "RetryExhaustedError",
    "RetryPolicy",
    "RunManifest",
    "SessionMetrics",
    "ShardRouter",
    "ShardedDirectory",
    "TelemetryCollector",
    "__version__",
]
