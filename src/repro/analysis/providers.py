"""Analytic models from Sec. III-E: merge-and-download provider trade-off.

The paper models the time for aggregator ``A_ij`` to obtain all its data as

    tau = Partition_Size * ( |T_ij| / (d * |P_ij|)  +  |P_ij| / b )

where ``d`` is the IPFS nodes' bandwidth and ``b`` the aggregator's.
Setting d(tau)/dP = 0 gives the optimum ``|P_ij|* = sqrt(b * |T_ij| / d)``.
These closed forms are compared against the simulator in the
``test_provider_model`` benchmark.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = [
    "aggregation_time_model",
    "optimal_providers",
    "sweep_provider_model",
]


def aggregation_time_model(
    num_trainers: int,
    partition_bytes: float,
    providers: int,
    node_bandwidth: float,
    aggregator_bandwidth: float,
) -> float:
    """The paper's tau(P): ingest time at providers + drain time at the
    aggregator, in seconds."""
    if providers < 1:
        raise ValueError("providers must be >= 1")
    if num_trainers < 1:
        raise ValueError("num_trainers must be >= 1")
    if partition_bytes < 0:
        raise ValueError("partition_bytes must be non-negative")
    if node_bandwidth <= 0 or aggregator_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")
    ingest = num_trainers / (node_bandwidth * providers)
    drain = providers / aggregator_bandwidth
    return partition_bytes * (ingest + drain)


def optimal_providers(
    num_trainers: int,
    node_bandwidth: float = 1.0,
    aggregator_bandwidth: float = 1.0,
) -> float:
    """The real-valued optimum sqrt(b * T / d); round for a node count."""
    if num_trainers < 1:
        raise ValueError("num_trainers must be >= 1")
    if node_bandwidth <= 0 or aggregator_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")
    return math.sqrt(
        aggregator_bandwidth * num_trainers / node_bandwidth
    )


def sweep_provider_model(
    num_trainers: int,
    partition_bytes: float,
    provider_counts: List[int],
    node_bandwidth: float,
    aggregator_bandwidth: float,
) -> List[Tuple[int, float]]:
    """(providers, predicted tau) pairs for a sweep, as in Fig. 1."""
    return [
        (count, aggregation_time_model(
            num_trainers, partition_bytes, count,
            node_bandwidth, aggregator_bandwidth,
        ))
        for count in provider_counts
    ]
