"""Host-cost bench trajectory: how hot-path cost evolves PR over PR.

``benchmarks/BENCH_scale.json`` pins one *snapshot* of scaling cost;
this module records a *trajectory*.  Each ``python -m repro.cli
profile --scenario NAME --record benchmarks/BENCH_profile.json`` run
appends a :class:`BenchRecord` — wall-clock per iteration, the
sim-seconds-per-wall-second throughput gauge, and the profiler's
per-subsystem hotspot shares — under its scenario, so speedups and
regressions in the scale-and-speed arc stay visible across commits.

The compare gate reuses the PR-3 :func:`~repro.obs.manifest.compare_manifests`
threshold machinery: a record flattens to a
:class:`~repro.obs.manifest.RunManifest` whose counters are all
higher-is-worse (``bench.wall_per_iteration``, ``bench.wall_per_sim``
— the *inverse* of the throughput gauge, so a slowdown is a positive
relative change — and ``bench.share.<subsystem>``), fingerprinted by
the scenario name so only like scenarios ever diff.  Hotspot shares
are noisy fractions, so they get a looser dedicated threshold and
sub-1% subsystems are dropped from the gate (they remain in the
record itself).

``python -m repro.cli profile --baseline benchmarks/BENCH_profile.json``
diffs the current run against the scenario's latest committed record
(warn-only in CI: wall time on shared runners drifts; the trajectory
artifact is the signal).
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "BENCH_VERSION",
    "BenchRecord",
    "BenchTrajectory",
    "DEFAULT_BENCH_THRESHOLD",
    "SHARE_THRESHOLD",
    "MIN_GATED_SHARE",
]

BENCH_VERSION = 1

#: Default relative tolerance for the wall-clock metrics.
DEFAULT_BENCH_THRESHOLD = 0.25

#: Hotspot shares drift with machine noise; only a large relative
#: shift (a subsystem's share of attributed time growing by half) is
#: worth flagging.
SHARE_THRESHOLD = 0.50

#: Subsystems below this share of attributed time are excluded from
#: the gate manifest (relative changes on tiny fractions flap).
MIN_GATED_SHARE = 0.01


@dataclass(frozen=True)
class BenchRecord:
    """One scenario measurement appended to the trajectory."""

    scenario: str
    #: Wall seconds per simulated iteration (higher is worse).
    wall_per_iteration: float
    #: Inverse throughput — wall seconds per simulated second
    #: (higher is worse; the gate form of ``sim_per_wall``).
    wall_per_sim: float
    #: The throughput gauge as humans read it.
    sim_per_wall: float
    #: Profiler subsystem shares of attributed time (sum ~1.0).
    shares: Dict[str, float] = field(default_factory=dict)
    iterations: int = 1
    #: Free-form context (e.g. the git describe of the commit).
    label: str = ""

    @classmethod
    def from_profile(cls, profile, scenario: str, iterations: int = 1,
                     label: str = "") -> "BenchRecord":
        """Distill a :class:`~repro.obs.profiling.HostProfile`."""
        iterations = max(int(iterations), 1)
        wall_per_sim = (profile.wall_seconds / profile.sim_seconds
                        if profile.sim_seconds > 0 else 0.0)
        return cls(
            scenario=scenario,
            wall_per_iteration=profile.wall_seconds / iterations,
            wall_per_sim=wall_per_sim,
            sim_per_wall=profile.sim_per_wall,
            shares=dict(profile.shares()),
            iterations=iterations,
            label=label,
        )

    def to_manifest(self):
        """Flatten to a RunManifest for the ``compare`` machinery.

        All counters are higher-is-worse; the fingerprint covers only
        the scenario name, so records of the same scenario diff
        cleanly regardless of which commit produced them.
        """
        from ..obs.manifest import RunManifest, config_fingerprint

        counters = {
            "bench.wall_per_iteration": self.wall_per_iteration,
            "bench.wall_per_sim": self.wall_per_sim,
        }
        for subsystem, share in sorted(self.shares.items()):
            if share >= MIN_GATED_SHARE:
                counters[f"bench.share.{subsystem}"] = share
        return RunManifest(
            fingerprint=config_fingerprint({"scenario": self.scenario}),
            counters=counters,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "wall_per_iteration": self.wall_per_iteration,
            "wall_per_sim": self.wall_per_sim,
            "sim_per_wall": self.sim_per_wall,
            "shares": dict(sorted(self.shares.items())),
            "iterations": self.iterations,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchRecord":
        return cls(
            scenario=data["scenario"],
            wall_per_iteration=float(data["wall_per_iteration"]),
            wall_per_sim=float(data["wall_per_sim"]),
            sim_per_wall=float(data.get("sim_per_wall", 0.0)),
            shares={str(key): float(value)
                    for key, value in data.get("shares", {}).items()},
            iterations=int(data.get("iterations", 1)),
            label=str(data.get("label", "")),
        )


class BenchTrajectory:
    """The committed per-scenario history (``benchmarks/BENCH_profile.json``)."""

    def __init__(self,
                 scenarios: Optional[Dict[str, List[BenchRecord]]] = None):
        self.scenarios: Dict[str, List[BenchRecord]] = {
            name: list(records)
            for name, records in (scenarios or {}).items()
        }

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "BenchTrajectory":
        """Read a trajectory file; a missing file is an empty trajectory."""
        try:
            with io.open(os.fspath(path), "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return cls()
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchTrajectory":
        version = data.get("version", BENCH_VERSION)
        if version != BENCH_VERSION:
            raise ValueError(f"unsupported bench version {version!r}")
        return cls(scenarios={
            name: [BenchRecord.from_dict(record) for record in records]
            for name, records in data.get("scenarios", {}).items()
        })

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": BENCH_VERSION,
            "scenarios": {
                name: [record.to_dict() for record in records]
                for name, records in sorted(self.scenarios.items())
            },
        }

    def save(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with io.open(os.fspath(path), "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # -- recording / gating ------------------------------------------------

    def append(self, record: BenchRecord) -> None:
        self.scenarios.setdefault(record.scenario, []).append(record)

    def latest(self, scenario: str) -> Optional[BenchRecord]:
        records = self.scenarios.get(scenario)
        return records[-1] if records else None

    def compare(self, record: BenchRecord,
                threshold: float = DEFAULT_BENCH_THRESHOLD,
                thresholds: Optional[Dict[str, float]] = None):
        """Diff ``record`` against its scenario's latest entry.

        Returns the :class:`~repro.obs.manifest.ManifestDiff`, or
        ``None`` when the trajectory holds no record for the scenario
        yet.  Share metrics default to the looser
        :data:`SHARE_THRESHOLD` unless overridden in ``thresholds``.
        """
        from ..obs.manifest import compare_manifests

        baseline = self.latest(record.scenario)
        if baseline is None:
            return None
        base_manifest = baseline.to_manifest()
        current_manifest = record.to_manifest()
        merged = dict(thresholds or {})
        for metric in (set(base_manifest.counters)
                       | set(current_manifest.counters)):
            if metric.startswith("bench.share."):
                merged.setdefault(metric, max(threshold, SHARE_THRESHOLD))
        return compare_manifests(base_manifest, current_manifest,
                                 threshold=threshold, thresholds=merged)
