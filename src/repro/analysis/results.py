"""Result-table rendering for the benchmark harness.

Each benchmark regenerates one of the paper's figures as a text table
(rows = x-axis points, columns = measured series), so runs are comparable
against the published plots without a plotting stack.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["format_table", "format_row", "series_shape"]


def _render(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_row(values: Sequence[Any], widths: Sequence[int]) -> str:
    return "  ".join(
        _render(value).rjust(width) for value, width in zip(values, widths)
    )


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Align a list of rows under headers; returns a printable block."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in rendered_rows))
        if rendered_rows else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(
        header.rjust(width) for header, width in zip(headers, widths)
    ))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)


def series_shape(values: Sequence[float]) -> str:
    """Classify a measured series: 'increasing', 'decreasing', 'u-shaped',
    or 'flat' — the *shape* comparisons the reproduction checks."""
    if len(values) < 2:
        return "flat"
    deltas = [b - a for a, b in zip(values, values[1:])]
    rising = [d > 0 for d in deltas]
    if all(rising):
        return "increasing"
    if not any(rising):
        return "decreasing"
    pivot = rising.index(True)
    if not any(rising[:pivot]) and all(rising[pivot:]):
        return "u-shaped"
    return "mixed"
