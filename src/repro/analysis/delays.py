"""Closed-form delay predictions for the non-merge protocol paths.

Back-of-envelope models used to sanity-check the simulator and to explain
benchmark output:

- An aggregator downloads ``(|T_ij| + |A_i| - 1)`` partitions per
  iteration (Sec. III-E's D formula).
- At bandwidth ``b`` that serializes to ``D / b`` seconds when the
  aggregator's downlink is the bottleneck.
"""

from __future__ import annotations

__all__ = [
    "aggregator_download_bytes",
    "naive_aggregation_time",
    "naive_collection_time",
    "upload_time",
]


def aggregator_download_bytes(
    trainers_per_aggregator: int,
    aggregators_per_partition: int,
    partition_bytes: float,
) -> float:
    """The paper's D = (|T_ij| + |A_i| - 1) * Partition_Size."""
    if trainers_per_aggregator < 0 or aggregators_per_partition < 1:
        raise ValueError("invalid participant counts")
    return (
        (trainers_per_aggregator + aggregators_per_partition - 1)
        * partition_bytes
    )


def naive_aggregation_time(
    trainers_per_aggregator: int,
    partition_bytes: float,
    aggregator_bandwidth: float,
) -> float:
    """Serialized download time of all gradients through one downlink."""
    if aggregator_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return trainers_per_aggregator * partition_bytes / aggregator_bandwidth


def naive_collection_time(
    num_gradients: int,
    gradient_wire_bytes: float,
    aggregator_bandwidth: float,
    request_wire_bytes: float = 0.0,
) -> float:
    """Exact duration of a symmetric naive download wave.

    When an aggregator issues ``num_gradients`` concurrent gets at one
    instant over zero-latency links and its own access link is the
    binding resource throughout (uplink for the requests, downlink for
    the responses — true whenever each storage node serves fewer flows
    than the fan-in), max-min fair sharing finishes all transfers
    simultaneously and the wave degenerates to full serialization:

        T = num_gradients * (request_wire + gradient_wire) / b

    This is :func:`naive_aggregation_time` made wire-exact (framing
    overheads included), suitable for float-tolerance golden tests of
    the simulator's critical path.
    """
    if aggregator_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if num_gradients < 0:
        raise ValueError("num_gradients must be non-negative")
    return (
        num_gradients * (request_wire_bytes + gradient_wire_bytes)
        / aggregator_bandwidth
    )


def upload_time(
    partition_bytes: float,
    num_partitions: int,
    trainer_bandwidth: float,
) -> float:
    """A trainer's serialized upload of all its partitions."""
    if trainer_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return num_partitions * partition_bytes / trainer_bandwidth
