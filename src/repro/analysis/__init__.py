"""Analytic models and result-table utilities.

- :func:`aggregation_time_model` / :func:`optimal_providers` — the
  Sec. III-E merge-and-download trade-off in closed form.
- :func:`aggregator_download_bytes` / :func:`naive_aggregation_time` —
  non-merge delay predictions.
- :func:`format_table` / :func:`series_shape` — benchmark output helpers.
"""

from .delays import (
    aggregator_download_bytes,
    naive_aggregation_time,
    naive_collection_time,
    upload_time,
)
from .providers import (
    aggregation_time_model,
    optimal_providers,
    sweep_provider_model,
)
from .results import format_row, format_table, series_shape
from .stats import Summary, bootstrap_ci, percentile, summarize
from .sweeps import Sweep, SweepResults, grid

__all__ = [
    "aggregation_time_model",
    "aggregator_download_bytes",
    "format_row",
    "format_table",
    "naive_aggregation_time",
    "naive_collection_time",
    "optimal_providers",
    "Summary",
    "Sweep",
    "SweepResults",
    "bootstrap_ci",
    "grid",
    "percentile",
    "summarize",
    "series_shape",
    "sweep_provider_model",
    "upload_time",
]
