"""Analytic models and result-table utilities.

- :func:`aggregation_time_model` / :func:`optimal_providers` — the
  Sec. III-E merge-and-download trade-off in closed form.
- :func:`aggregator_download_bytes` / :func:`naive_aggregation_time` —
  non-merge delay predictions.
- :func:`format_table` / :func:`series_shape` — benchmark output helpers.
- :func:`run_scale_sweep` / :func:`scale_manifest` — the population
  scaling trajectory and its CI regression gate (docs/SCALING.md).
- :func:`run_dirshard_sweep` / :func:`dirshard_manifest` — the
  directory-sharding trajectory (registrations/sec vs shard count) and
  its gate against ``benchmarks/BENCH_dirshard.json``.
- :class:`BenchRecord` / :class:`BenchTrajectory` — the host-cost bench
  trajectory recorded by ``python -m repro.cli profile`` and gated
  against ``benchmarks/BENCH_profile.json``.
- :func:`diagnose_runs` / :class:`DiagnosisReport` — differential run
  diagnosis over manifest + profile pairs
  (``python -m repro.cli explain``).
"""

from .bench import (
    BENCH_VERSION,
    BenchRecord,
    BenchTrajectory,
    DEFAULT_BENCH_THRESHOLD,
)
from .diagnose import (
    Attribution,
    DiagnosisReport,
    SubsystemShift,
    diagnose_runs,
    load_run_artifact,
)
from .delays import (
    aggregator_download_bytes,
    naive_aggregation_time,
    naive_collection_time,
    upload_time,
)
from .providers import (
    aggregation_time_model,
    optimal_providers,
    sweep_provider_model,
)
from .results import format_row, format_table, series_shape
from .scale import (
    DEFAULT_DIRSHARD_POPULATIONS,
    DEFAULT_POPULATIONS,
    DEFAULT_SHARD_COUNTS,
    DirshardPoint,
    DirshardScenario,
    ScalePoint,
    ScaleScenario,
    dirshard_manifest,
    format_dirshard_table,
    format_scale_table,
    run_dirshard_point,
    run_dirshard_sweep,
    run_scale_point,
    run_scale_sweep,
    scale_manifest,
)
from .stats import Summary, bootstrap_ci, percentile, summarize
from .sweeps import Sweep, SweepResults, grid

__all__ = [
    "Attribution",
    "BENCH_VERSION",
    "BenchRecord",
    "BenchTrajectory",
    "DEFAULT_BENCH_THRESHOLD",
    "DEFAULT_DIRSHARD_POPULATIONS",
    "DEFAULT_POPULATIONS",
    "DEFAULT_SHARD_COUNTS",
    "DiagnosisReport",
    "DirshardPoint",
    "DirshardScenario",
    "ScalePoint",
    "ScaleScenario",
    "SubsystemShift",
    "aggregation_time_model",
    "aggregator_download_bytes",
    "format_row",
    "format_scale_table",
    "format_table",
    "naive_aggregation_time",
    "naive_collection_time",
    "optimal_providers",
    "Summary",
    "Sweep",
    "SweepResults",
    "bootstrap_ci",
    "diagnose_runs",
    "dirshard_manifest",
    "format_dirshard_table",
    "grid",
    "load_run_artifact",
    "percentile",
    "run_dirshard_point",
    "run_dirshard_sweep",
    "run_scale_point",
    "run_scale_sweep",
    "scale_manifest",
    "summarize",
    "series_shape",
    "sweep_provider_model",
    "upload_time",
]
