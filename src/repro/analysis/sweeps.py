"""Parameter-sweep utilities for experiments.

A small declarative layer over "run the same experiment for every value
of X and collect a metric", shared by the CLI, benchmarks and notebooks:

>>> sweep = Sweep("providers", [1, 2, 4])
>>> results = sweep.run(lambda providers: providers * 2.0)
>>> results.values()
[2.0, 4.0, 8.0]
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from .results import format_table, series_shape

__all__ = ["Sweep", "SweepResults", "grid"]


@dataclass
class SweepResults:
    """Ordered (parameter value, result) pairs from one sweep."""

    parameter: str
    rows: List[Tuple[Any, Any]] = field(default_factory=list)

    def values(self) -> List[Any]:
        return [result for _, result in self.rows]

    def parameters(self) -> List[Any]:
        return [value for value, _ in self.rows]

    def argmin(self, key: Callable[[Any], float] = lambda r: r) -> Any:
        """Parameter value minimizing ``key(result)``."""
        if not self.rows:
            raise ValueError("empty sweep")
        return min(self.rows, key=lambda row: key(row[1]))[0]

    def argmax(self, key: Callable[[Any], float] = lambda r: r) -> Any:
        if not self.rows:
            raise ValueError("empty sweep")
        return max(self.rows, key=lambda row: key(row[1]))[0]

    def shape(self, key: Callable[[Any], float] = lambda r: r) -> str:
        """'increasing' / 'decreasing' / 'u-shaped' / 'mixed' / 'flat'."""
        return series_shape([key(result) for _, result in self.rows])

    def table(self, result_label: str = "result",
              key: Callable[[Any], Any] = lambda r: r) -> str:
        return format_table(
            [self.parameter, result_label],
            [[value, key(result)] for value, result in self.rows],
        )


class Sweep:
    """One-dimensional parameter sweep."""

    def __init__(self, parameter: str, values: Sequence[Any]):
        if not values:
            raise ValueError("a sweep needs at least one value")
        self.parameter = parameter
        self.values = list(values)

    def run(self, experiment: Callable[[Any], Any]) -> SweepResults:
        """Call ``experiment(value)`` for each value, in order."""
        results = SweepResults(parameter=self.parameter)
        for value in self.values:
            results.rows.append((value, experiment(value)))
        return results


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return [{}]
    names = sorted(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]
