"""Summary statistics for multi-seed experiment series.

Delay experiments in this repo are deterministic given a seed; when a
question involves randomness (gossip topologies, Dirichlet splits,
provider shuffling) the honest answer is a distribution.  This module
provides the small set of estimators the benchmarks need: mean/std,
percentiles, and a seed-deterministic bootstrap confidence interval.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = ["Summary", "summarize", "percentile", "bootstrap_ci"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one measured series."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} "
            f"max={self.maximum:.4g}"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation."""
    if not values:
        raise ValueError("empty series")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    weight = position - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample std, min/median/max of a series."""
    if not values:
        raise ValueError("empty series")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        variance = 0.0
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=float(min(values)),
        median=percentile(values, 50.0),
        maximum=float(max(values)),
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = None,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Seed-deterministic percentile-bootstrap confidence interval.

    Returns ``(low, high)`` for the given statistic (default: the mean).
    """
    if not values:
        raise ValueError("empty series")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if statistic is None:
        statistic = lambda vs: sum(vs) / len(vs)  # noqa: E731
    rng = random.Random(seed)
    estimates: List[float] = []
    count = len(values)
    for _ in range(resamples):
        resample = [values[rng.randrange(count)] for _ in range(count)]
        estimates.append(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    return (
        percentile(estimates, 100.0 * alpha),
        percentile(estimates, 100.0 * (1.0 - alpha)),
    )
